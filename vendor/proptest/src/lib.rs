//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this repo's property tests use —
//! [`proptest!`], [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`],
//! `any::<T>()`, range/tuple/`Just`/`prop_map` strategies,
//! `collection::vec`, `option::of`, and `sample::Index` — on top of a
//! deterministic splitmix64 generator. No shrinking: a failing case
//! reports its case number and the test's fixed seed, which reproduces it
//! exactly. Case count defaults to 128 and can be overridden with the
//! `PROPTEST_CASES` environment variable. Swapping real proptest back in
//! requires no source changes in the test files.

/// Deterministic RNG and test-case plumbing used by the [`proptest!`]
/// expansion.
pub mod test_runner {
    /// Default number of cases per property.
    pub const DEFAULT_CASES: u32 = 128;

    /// Cases per property, honoring `PROPTEST_CASES`.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }

    /// A failed property case (what `prop_assert!` returns).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// splitmix64-based deterministic generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary value.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seed deterministically from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift reduction; bias is negligible for test sizes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform boolean.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe subset of proptest's trait: generation only, no
    /// shrinking. `Box<dyn Strategy<Value = T>>` works (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Equal-weight choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union of the given arms; must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
        (A, B, C, D, E, F, G, H, I);
        (A, B, C, D, E, F, G, H, I, J);
        (A, B, C, D, E, F, G, H, I, J, K);
        (A, B, C, D, E, F, G, H, I, J, K, L);
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 draws toward boundary values, which real
                    // proptest reaches via shrinking.
                    match rng.below(8) {
                        0 => [0 as $t, 1 as $t, <$t>::MAX][rng.below(3) as usize],
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// Strategy generating [`Arbitrary`] values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (50% `Some`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.bool() {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }

    /// `Some` of the inner strategy or `None`, equally likely.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling helpers (`prop::sample::Index`).
pub mod sample {
    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Build from raw entropy.
        pub fn from_raw(raw: u64) -> Self {
            Index { raw }
        }

        /// Project onto `[0, len)`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }
}

/// Everything a property-test file needs, glob-imported.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert a condition inside a [`proptest!`] body, failing the case (not
/// panicking) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left, right, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Equal-weight choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests: each `fn name(arg in STRATEGY, ...) { body }`
/// becomes a `#[test]` running [`test_runner::cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategies = ($($strat,)+);
            let cases = $crate::test_runner::cases();
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..cases {
                // The strategy tuple is itself a Strategy producing the
                // matching value tuple.
                #[allow(unused_mut)]
                let ($($arg,)+) =
                    $crate::strategy::Strategy::gen_value(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {} of {}: {}",
                        stringify!($name), case, cases, e
                    );
                }
            }
        }
    )*};
}
