//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io. This repo only uses serde
//! as `#[derive(Serialize, Deserialize)]` annotations — no code path
//! actually serializes through serde (experiment output is hand-written
//! CSV/JSON; see `sprayer::stats::MiddleboxStats::to_json`). The traits
//! here are empty markers and the re-exported derives expand to marker
//! impls, so the annotations keep compiling and real serde can be swapped
//! back in without source changes once the registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided: the real
/// trait is `Deserialize<'de>`, but marker usage never names it).
pub trait Deserialize {}
