//! Offline stand-in for `crossbeam`.
//!
//! Provides the subset this repo uses: [`queue::SegQueue`] (unbounded
//! MPMC) and [`queue::ArrayQueue`] (bounded MPMC). Both are implemented
//! over `Mutex<VecDeque>` rather than lock-free algorithms: the API and
//! semantics match crossbeam's, so real crossbeam is a drop-in swap once
//! the registry is reachable, and the mutex versions are sound on any
//! core count (this container exposes a single core, where lock-free
//! buys nothing). The Sprayer runtime only ever pushes/pops in small
//! batches, so the critical sections are short.

pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Unbounded MPMC FIFO queue (API of `crossbeam::queue::SegQueue`).
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Append an element at the back.
        pub fn push(&self, value: T) {
            locked(&self.inner).push_back(value);
        }

        /// Remove the element at the front, if any.
        pub fn pop(&self) -> Option<T> {
            locked(&self.inner).pop_front()
        }

        /// True when the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            locked(&self.inner).is_empty()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            locked(&self.inner).len()
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SegQueue {{ len: {} }}", self.len())
        }
    }

    /// Bounded MPMC FIFO queue (API of `crossbeam::queue::ArrayQueue`).
    ///
    /// `push` fails with the rejected element when the queue is at
    /// capacity — the backpressure signal the Sprayer dataplane turns
    /// into accounted `queue_drops`/`ring_drops`.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// An empty queue with room for `capacity` elements.
        ///
        /// # Panics
        /// Panics if `capacity` is zero (as crossbeam does).
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
            }
        }

        /// Append at the back, or return `Err(value)` if full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = locked(&self.inner);
            if q.len() >= self.capacity {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Append at the back, evicting (and returning) the front element
        /// if the queue is full.
        pub fn force_push(&self, value: T) -> Option<T> {
            let mut q = locked(&self.inner);
            let evicted = if q.len() >= self.capacity {
                q.pop_front()
            } else {
                None
            };
            q.push_back(value);
            evicted
        }

        /// Remove the element at the front, if any.
        pub fn pop(&self) -> Option<T> {
            locked(&self.inner).pop_front()
        }

        /// Maximum number of elements the queue can hold.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// True when the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            locked(&self.inner).is_empty()
        }

        /// True when the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() >= self.capacity
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            locked(&self.inner).len()
        }
    }

    impl<T> fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "ArrayQueue {{ len: {}, capacity: {} }}",
                self.len(),
                self.capacity
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::{ArrayQueue, SegQueue};

    #[test]
    fn seg_queue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn array_queue_bounds() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn array_queue_force_push_evicts_front() {
        let q = ArrayQueue::new(1);
        assert_eq!(q.push(7), Ok(()));
        assert_eq!(q.force_push(8), Some(7));
        assert_eq!(q.pop(), Some(8));
    }

    #[test]
    fn array_queue_is_mpmc() {
        let q = std::sync::Arc::new(ArrayQueue::new(64));
        let total = 4 * 500;
        let popped = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        let mut v = t * 1000 + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            let popped = &popped;
            for _ in 0..2 {
                let q = q.clone();
                s.spawn(move || loop {
                    if q.pop().is_some() {
                        popped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    } else if popped.load(std::sync::atomic::Ordering::Relaxed) == total {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(popped.load(std::sync::atomic::Ordering::Relaxed), total);
    }
}
