//! Offline stand-in for `criterion`.
//!
//! Implements the subset used by `sprayer-bench`'s microbenchmarks:
//! `Criterion::benchmark_group`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a plain wall-clock loop (calibrated iteration count,
//! median of a few samples) printed as ns/iter — enough to keep the
//! relative-cost checks meaningful without the statistics machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier (reads and returns `value` through a volatile-ish
/// path the optimizer must not see through).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Drives one benchmark's timed closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Override the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Finish the group (no-op; reporting happens per benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    /// Target time per benchmark, split across samples.
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            target: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Run one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // Calibrate: find an iteration count that takes ~target/samples.
        let mut iters = 1u64;
        let per_sample = self.target / self.sample_size as u32;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= per_sample || iters >= 1 << 24 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (per_sample.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "{id:<40} {median:>12.1} ns/iter ({iters} iters x {} samples)",
            samples.len()
        );
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
