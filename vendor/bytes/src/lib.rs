//! Offline placeholder for `bytes`.
//!
//! No source file in this repository imports `bytes`; `sprayer_net`
//! packets own plain `Vec<u8>` buffers. This empty crate satisfies the
//! manifest dependency without network access.
