//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()`/`read()`/`write()` return guards directly, no `Result`).
//! Poisoning is deliberately ignored: parking_lot has no poisoning, and
//! callers in this repo rely on that. Performance is whatever std
//! provides — adequate for the test-scale workloads in this repo; swap in
//! real parking_lot when the registry is reachable.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's panic-free interface.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free interface.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
