//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and this repository
//! only uses serde for `#[derive(Serialize, Deserialize)]` annotations on
//! public types (no actual serialization happens through serde — the
//! experiment binaries emit CSV/JSON by hand). These derives therefore
//! expand to marker-trait impls, keeping the annotations (and the door to
//! swapping in real serde later) without the dependency.

use proc_macro::TokenStream;

/// Extract the type name following `struct`/`enum` and emit a marker impl.
fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    let mut generics = String::new();
    while let Some(tt) = iter.next() {
        let s = tt.to_string();
        if s == "struct" || s == "enum" || s == "union" {
            if let Some(ident) = iter.next() {
                name = Some(ident.to_string());
                // Capture a simple generic parameter list `<T, U>` if present.
                if let Some(next) = iter.peek() {
                    if next.to_string() == "<" {
                        let mut depth = 0;
                        for tt in iter.by_ref() {
                            let t = tt.to_string();
                            generics.push_str(&t);
                            if t == "<" {
                                depth += 1;
                            } else if t == ">" {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            break;
        }
    }
    match name {
        // Generic types would need bound handling; no annotated type in this
        // repo is generic, so skip the marker impl entirely for them.
        Some(name) if generics.is_empty() => {
            let imp = format!("impl {trait_path} for {name} {{}}");
            imp.parse().unwrap_or_else(|_| TokenStream::new())
        }
        _ => TokenStream::new(),
    }
}

/// No-op `Serialize` derive: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "serde::Serialize")
}

/// No-op `Deserialize` derive: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "serde::Deserialize")
}
