//! Offline placeholder for `rand`.
//!
//! No source file in this repository imports `rand`; all randomness flows
//! through `sprayer_sim::SimRng`, which is deterministic by design (the
//! experiments must be reproducible). This empty crate satisfies the
//! manifest dependency without network access. If a future change needs
//! `rand` proper, drop the real crate in and delete this placeholder.
