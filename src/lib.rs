//! # sprayer-suite — umbrella crate
//!
//! Re-exports the whole Sprayer reproduction so the repo-level examples
//! and integration tests have a single dependency. See the individual
//! crates for documentation:
//!
//! * [`sprayer`] — the framework (the paper's contribution),
//! * [`sprayer_net`] — wire formats,
//! * [`sprayer_nic`] — the multi-queue NIC model (RSS + Flow Director),
//! * [`sprayer_sim`] — the discrete-event engine,
//! * [`sprayer_tcp`] — TCP endpoints (CUBIC/Reno, RACK, SACK, TLP),
//! * [`sprayer_nf`] — network functions written on the Sprayer API,
//! * [`sprayer_trafficgen`] — workload generation.

pub use sprayer;
pub use sprayer_net;
pub use sprayer_nf;
pub use sprayer_nic;
pub use sprayer_sim;
pub use sprayer_tcp;
pub use sprayer_trafficgen;
