//! Quickstart: write an NF against the Sprayer API and run it in both
//! dispatch modes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The NF is a minimal connection counter: `connection_packets` installs
//! flow state on the designated core at SYN time; `regular_packets` —
//! running on whichever core the NIC sprayed the packet to — reads that
//! state through `get_flow` and bumps a global counter.

use sprayer::api::{FlowStateApi, NetworkFunction, NfDescriptor, Scope, Verdict};
use sprayer::config::{DispatchMode, MiddleboxConfig};
use sprayer::runtime_sim::MiddleboxSim;
use sprayer_net::flow::splitmix64;
use sprayer_net::{FiveTuple, Packet, PacketBuilder, TcpFlags};
use sprayer_sim::Time;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-flow state: the packet count recorded when the flow opened
/// (read back by the example's final report).
#[derive(Clone, Copy, Default)]
struct FlowRecord {
    opened_at_packet: u64,
}

impl FlowRecord {
    fn opened_at(&self) -> u64 {
        self.opened_at_packet
    }
}

struct CounterNf {
    total_packets: AtomicU64,
    known_flow_packets: AtomicU64,
}

impl NetworkFunction for CounterNf {
    type Flow = FlowRecord;

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("quickstart-counter").with_state(
            "Connection context",
            Scope::PerFlow,
            sprayer::api::Access::Read,
            sprayer::api::Access::ReadWrite,
        )
    }

    fn connection_packets(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<FlowRecord>,
    ) -> Verdict {
        let n = self.total_packets.fetch_add(1, Ordering::Relaxed);
        if let Some(tuple) = pkt.tuple() {
            // Guaranteed to run on the flow's designated core: local
            // writes are safe without any locking.
            ctx.insert_local_flow(
                tuple.key(),
                FlowRecord {
                    opened_at_packet: n,
                },
            );
        }
        Verdict::Forward
    }

    fn regular_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<FlowRecord>) -> Verdict {
        self.total_packets.fetch_add(1, Ordering::Relaxed);
        // This may run on ANY core; get_flow reads the designated core's
        // table (write-partitioned, so no locks on this path either).
        if let Some(tuple) = pkt.tuple() {
            if ctx.get_flow(&tuple.key()).is_some() {
                self.known_flow_packets.fetch_add(1, Ordering::Relaxed);
            }
        }
        Verdict::Forward
    }
}

fn main() {
    for mode in [DispatchMode::Rss, DispatchMode::Sprayer] {
        let config = MiddleboxConfig::paper_testbed_with_cycles(mode, 2_000);
        let nf = CounterNf {
            total_packets: AtomicU64::new(0),
            known_flow_packets: AtomicU64::new(0),
        };
        let mut mb = MiddleboxSim::new(config, nf);

        // One TCP connection: SYN, then a burst of data packets with
        // varying payloads (varying checksums — the spray key).
        let flow = FiveTuple::tcp(0x0a00_0001, 40_000, 0x5db8_d822, 443);
        let mut now = Time::ZERO;
        mb.ingress(
            now,
            PacketBuilder::new().tcp(flow, 0, 0, TcpFlags::SYN, b""),
        );
        for i in 0..1_000u32 {
            now += Time::from_ns(500);
            let payload = splitmix64(u64::from(i)).to_be_bytes();
            mb.ingress(
                now,
                PacketBuilder::new().tcp(flow, i, 0, TcpFlags::ACK, &payload),
            );
        }
        mb.run_until(now + Time::from_ms(10));

        let stats = mb.stats();
        let busy_cores = stats.per_core.iter().filter(|c| c.processed > 0).count();
        println!("== {mode} ==");
        println!("  packets forwarded : {}", stats.forwarded);
        println!(
            "  cores used        : {busy_cores} of {}",
            stats.per_core.len()
        );
        println!("  per-core load     : {:?}", stats.per_core_processed());
        println!(
            "  flow state found  : {} of 1000 regular packets",
            mb.nf().known_flow_packets.load(Ordering::Relaxed)
        );
        let flow_rec = mb
            .tables()
            .peek(
                sprayer::coremap::CoreMap::new(mode, 8).designated_for_tuple(&flow),
                &flow.key(),
            )
            .copied()
            .unwrap_or_default();
        println!("  flow opened at pkt: #{}", flow_rec.opened_at());
        println!();
    }
    println!("RSS pins the flow to one core; Sprayer spreads the same flow across all");
    println!("eight — while every regular packet still finds the flow's state.");
}
