//! A stateful firewall on the real-thread Sprayer runtime, with fault
//! injection.
//!
//! ```sh
//! cargo run --example threaded_firewall -- [workers] [flows] [corrupt-%]
//! ```
//!
//! Demonstrates the `ThreadedMiddlebox` runtime: OS worker threads,
//! crossbeam rings for connection-packet redirection, and the shared
//! write-partitioned flow tables. Fault injection (in the spirit of the
//! smoltcp examples) corrupts a percentage of frames in flight; the
//! firewall must drop exactly the corrupted and the unauthorized
//! traffic, in both dispatch modes, with identical policy outcomes.

use sprayer::config::DispatchMode;
use sprayer::runtime_threads::ThreadedMiddlebox;
use sprayer_net::flow::splitmix64;
use sprayer_net::{FiveTuple, Packet, PacketBuilder, TcpFlags};
use sprayer_nf::firewall::{AclRule, FirewallNf};
use sprayer_sim::SimRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let flows: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let corrupt_pct: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2.0);

    let acl = vec![
        AclRule::allow_dst_port(443),
        AclRule::allow_dst_port(22),
        AclRule::default_action(sprayer_nf::firewall::Action::Deny),
    ];

    // Build the workload: half the flows target allowed ports, half a
    // denied one. SYNs first (TCP ordering), then data.
    let mut rng = SimRng::seed_from(99);
    let tuple = |f: u32| {
        let port = match f % 4 {
            0 => 443,
            1 => 22,
            _ => 8081, // denied
        };
        FiveTuple::tcp(0x0a00_0000 + f, 41_000, 0xc0a8_0001 + f, port)
    };
    let syns: Vec<Packet> = (0..flows)
        .map(|f| PacketBuilder::new().tcp(tuple(f), 0, 0, TcpFlags::SYN, b""))
        .collect();
    let mut data = Vec::new();
    let mut corrupted = 0u32;
    for j in 0..40u32 {
        for f in 0..flows {
            let payload = splitmix64(u64::from(f * 1000 + j)).to_be_bytes();
            let pkt = PacketBuilder::new().tcp(tuple(f), j, 0, TcpFlags::ACK, &payload);
            // Fault injection: corrupt one byte of some frames. A frame
            // that no longer parses (bad IP checksum) is dropped by the
            // classifier stage, as a real NIC would discard it.
            if rng.chance(corrupt_pct / 100.0) {
                let mut bytes = pkt.into_bytes();
                let idx = 14 + (rng.below(20) as usize); // somewhere in the IP header
                bytes[idx] ^= 0x10;
                if let Ok(p) = Packet::parse(bytes) {
                    data.push(p); // corruption happened to stay consistent
                } else {
                    corrupted += 1; // dropped before reaching the NF
                }
            } else {
                data.push(pkt);
            }
        }
    }
    let offered = syns.len() + data.len();

    println!("workload: {flows} flows, {offered} packets offered, {corrupted} corrupted frames dropped at parse\n");
    for mode in [DispatchMode::Rss, DispatchMode::Sprayer] {
        let fw = FirewallNf::new(acl.clone());
        let out =
            ThreadedMiddlebox::process_phases(mode, workers, &fw, vec![syns.clone(), data.clone()]);
        println!("== {mode} ({workers} worker threads) ==");
        println!("  forwarded          : {}", out.forwarded.len());
        println!("  dropped by policy  : {}", out.nf_drops);
        println!(
            "  admitted conns     : {}",
            fw.admitted.load(std::sync::atomic::Ordering::Relaxed)
        );
        println!(
            "  rejected conns     : {}",
            fw.rejected.load(std::sync::atomic::Ordering::Relaxed)
        );
        println!("  per-worker load    : {:?}", out.per_worker_processed);
        println!("  conn redirects     : {}", out.redirects);
        println!(
            "  queue/ring drops   : {}/{}",
            out.stats.queue_drops, out.stats.ring_drops
        );
        println!(
            "  max rx/ring depth  : {}/{}",
            out.stats.max_rx_occupancy(),
            out.stats.max_ring_occupancy()
        );
        println!("  unaccounted        : {}", out.stats.unaccounted());
        assert_eq!(
            out.stats.unaccounted(),
            0,
            "threaded runtime must conserve packets"
        );
        println!();
    }
    println!("Policy outcomes are identical; only the distribution of work differs.");
}
