//! The paper's §2 motivation study on a synthetic backbone trace:
//! why per-flow dispatch wastes cores.
//!
//! ```sh
//! cargo run --release --example trace_study -- [seed]
//! ```
//!
//! Generates a MAWI-calibrated trace, reports the elephants-and-mice
//! statistics (Fig. 1), the 150 µs concurrency analysis (Fig. 2), and
//! then answers the paper's implicit question directly: with this
//! workload, how many of 8 cores would RSS actually keep busy?

use sprayer_net::FiveTuple;
use sprayer_nic::RssConfig;
use sprayer_sim::SimRng;
use sprayer_trafficgen::concurrency::{concurrent_flows, ConcurrencyStats, PAPER_WINDOW};
use sprayer_trafficgen::trace::{SyntheticTrace, TraceConfig, LARGE_FLOW_BYTES};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let trace = SyntheticTrace::generate(&TraceConfig::mawi_like(seed));
    println!(
        "synthetic backbone trace: {} flows, {:.1} GB over {:.0}s\n",
        trace.flows.len(),
        trace.total_bytes() as f64 / 1e9,
        trace.duration.as_secs_f64()
    );

    // Fig. 1 headline numbers.
    let share = trace.byte_share_above(LARGE_FLOW_BYTES);
    let median = trace.flow_size_cdf().quantile(0.5).unwrap_or(0.0);
    println!("elephants and mice (§2 / Fig. 1):");
    println!("  median flow size        : {median:.0} B");
    println!(
        "  bytes in >10 MB flows   : {:.1}% (paper: >75%)",
        share * 100.0
    );

    // Fig. 2 headline numbers.
    let events = trace.packet_events();
    let all = concurrent_flows(&events, trace.duration, PAPER_WINDOW, None);
    let s_all = ConcurrencyStats::from_counts(&all);
    let large_ids = trace.large_flow_ids();
    let large = concurrent_flows(&events, trace.duration, PAPER_WINDOW, Some(&large_ids));
    let s_large = ConcurrencyStats::from_counts(&large);
    println!("\nconcurrency per 150us window (§2 / Fig. 2):");
    println!(
        "  all flows   : median {:.0}, p99 {:.0} (paper: 4 / 14)",
        s_all.median, s_all.p99
    );
    println!(
        "  >10MB flows : median {:.0}, p99 {:.0} (paper: 1 / 6)",
        s_large.median, s_large.p99
    );

    // The consequence for RSS: how many cores does each window engage?
    // Assign every flow its RSS queue (symmetric key, 8 cores) and count
    // distinct queues per window.
    let rss = RssConfig::symmetric(8);
    let mut rng = SimRng::seed_from(seed ^ 0xabcd);
    let queue_of: Vec<u32> = trace
        .flows
        .iter()
        .map(|_| {
            // Random endpoints per flow, as hashes of real traffic would be.
            let t = FiveTuple::tcp(
                rng.next_u32(),
                (rng.next_u32() % 60_000 + 1_024) as u16,
                rng.next_u32(),
                443,
            );
            u32::from(rss.queue_for(&t))
        })
        .collect();
    let events_by_queue: Vec<(sprayer_sim::Time, u32)> = events
        .iter()
        .map(|&(t, f)| (t, queue_of[f as usize]))
        .collect();
    let busy_queues = concurrent_flows(&events_by_queue, trace.duration, PAPER_WINDOW, None);
    let s_q = ConcurrencyStats::from_counts(&busy_queues);

    println!("\ncores an 8-core RSS middlebox would actually use per window:");
    println!(
        "  median {:.0}, p99 {:.0}, max {} of 8",
        s_q.median, s_q.p99, s_q.max
    );
    let idle_fraction =
        busy_queues.iter().filter(|&&q| q < 8).count() as f64 / busy_queues.len() as f64;
    println!("  windows with idle cores : {:.1}%", idle_fraction * 100.0);
    println!("\nThis is the paper's motivation in one number: at packet timescales RSS");
    println!("leaves most cores idle, while spraying puts every packet on any free core.");
}
