//! A NAT gateway under packet spraying — the paper's running example
//! (its Fig. 5 NAT, here the full implementation from `sprayer-nf`).
//!
//! ```sh
//! cargo run --example nat_gateway -- [flows] [packets-per-flow]
//! ```
//!
//! Simulates an office NAT: `flows` clients behind 198.51.100.10 open
//! connections to distinct servers, exchange data in both directions,
//! and close. Runs under both RSS and Sprayer dispatch and verifies that
//! translations are consistent (every packet of a flow keeps its external
//! port) even though Sprayer processes the packets of each flow on all
//! eight cores.

use sprayer::config::{DispatchMode, MiddleboxConfig};
use sprayer::runtime_sim::MiddleboxSim;
use sprayer_net::flow::splitmix64;
use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};
use sprayer_nf::nat::NatNf;
use sprayer_sim::Time;
use std::collections::HashMap;

const NAT_IP: u32 = 0xc633_640a; // 198.51.100.10
const CLIENT_NET: u32 = 0x0a00_0000; // 10.0.0.0/8
const SERVER_NET: u32 = 0x5db8_d800; // 93.184.216.0/24-ish

fn main() {
    let mut args = std::env::args().skip(1);
    let flows: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let per_flow: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);

    for mode in [DispatchMode::Rss, DispatchMode::Sprayer] {
        let config = MiddleboxConfig::paper_testbed_with_cycles(mode, 1_000);
        let mut mb = MiddleboxSim::new(config, NatNf::new(NAT_IP, 10_000..12_000));
        let mut now = Time::ZERO;

        // Open all connections.
        for f in 0..flows {
            let t = client_flow(f);
            now += Time::from_us(2);
            mb.ingress(now, PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b""));
        }
        mb.run_until(now + Time::from_ms(2));
        let mut ext_port: HashMap<u32, u16> = HashMap::new();
        for (_, pkt) in mb.take_egress() {
            let t = pkt.tuple().unwrap();
            assert_eq!(t.src_addr, NAT_IP, "egress must be translated");
            ext_port.insert(t.dst_addr, t.src_port);
        }

        // Bidirectional data.
        for j in 0..per_flow {
            for f in 0..flows {
                now += Time::from_ns(900);
                let t = client_flow(f);
                let payload = splitmix64(u64::from(f) << 32 | u64::from(j)).to_be_bytes();
                if j % 2 == 0 {
                    mb.ingress(
                        now,
                        PacketBuilder::new().tcp(t, j, 0, TcpFlags::ACK, &payload),
                    );
                } else {
                    let back = FiveTuple::tcp(t.dst_addr, 443, NAT_IP, ext_port[&t.dst_addr]);
                    mb.ingress(
                        now,
                        PacketBuilder::new().tcp(back, j, 0, TcpFlags::ACK, &payload),
                    );
                }
            }
        }
        mb.run_until(now + Time::from_ms(10));
        let egress = mb.take_egress();

        // Verify translation consistency per flow.
        let mut violations = 0;
        for (_, pkt) in &egress {
            let t = pkt.tuple().unwrap();
            if t.src_addr == NAT_IP {
                if ext_port[&t.dst_addr] != t.src_port {
                    violations += 1;
                }
            } else if t.dst_addr & 0xff00_0000 != CLIENT_NET {
                violations += 1;
            }
        }

        // Close everything (both FINs) and check resource reclamation.
        for f in 0..flows {
            let t = client_flow(f);
            now += Time::from_us(2);
            mb.ingress(
                now,
                PacketBuilder::new().tcp(t, 999, 1, TcpFlags::FIN | TcpFlags::ACK, b""),
            );
            let back = FiveTuple::tcp(t.dst_addr, 443, NAT_IP, ext_port[&t.dst_addr]);
            now += Time::from_us(2);
            mb.ingress(
                now,
                PacketBuilder::new().tcp(back, 999, 1, TcpFlags::FIN | TcpFlags::ACK, b""),
            );
        }
        mb.run_until(now + Time::from_ms(5));

        let s = mb.stats();
        let busy = s.per_core.iter().filter(|c| c.processed > 0).count();
        let redirects: u64 = s.per_core.iter().map(|c| c.redirected_out).sum();
        println!("== {mode} ==");
        println!(
            "  connections           : {flows} opened, {} ports back in pool",
            mb.nf().pool_len()
        );
        println!("  data packets forwarded: {}", egress.len());
        println!("  translation violations: {violations}");
        println!("  cores used            : {busy}/8");
        println!("  connection redirects  : {redirects}");
        println!(
            "  flow-table residue    : {} entries",
            mb.tables().total_entries()
        );
        println!();
        assert_eq!(violations, 0);
        assert_eq!(
            mb.tables().total_entries(),
            0,
            "all flows must be torn down"
        );
    }
    println!("Same NAT, same traffic: Sprayer used every core (redirecting only");
    println!("SYN/FIN packets between cores) while RSS serialized each flow.");
}

fn client_flow(f: u32) -> FiveTuple {
    FiveTuple::tcp(
        CLIENT_NET + 0x100 + f,
        40_000 + (f % 1_000) as u16,
        SERVER_NET + f,
        443,
    )
}
