//! The controller: a plan applied to a live simulated dataplane.
//!
//! [`ElasticController`] owns a [`MiddleboxSim`] (built elastic via
//! [`MiddleboxSim::new_elastic`]) and a validated [`ReconfigPlan`].
//! Packets are offered through [`ElasticController::offer`]; before each
//! admission the controller fires every due transition, so a trigger
//! lands exactly between two packets — never mid-service. Each firing
//! delegates to [`MiddleboxSim::reconfigure`] (quiesce → remap →
//! migrate → resume) and its [`ReconfigReport`] accumulates on the
//! middlebox, exposed here via [`ElasticController::reports`].

use crate::plan::{PlanError, ReconfigEvent, ReconfigPlan, Trigger};
use sprayer::api::NetworkFunction;
use sprayer::config::MiddleboxConfig;
use sprayer::runtime_sim::MiddleboxSim;
use sprayer::ReconfigReport;
use sprayer_net::Packet;
use sprayer_sim::Time;

/// Drives a [`MiddleboxSim`] through a [`ReconfigPlan`].
pub struct ElasticController<NF: NetworkFunction> {
    mb: MiddleboxSim<NF>,
    events: Vec<ReconfigEvent>,
    next_event: usize,
    offered: u64,
}

impl<NF: NetworkFunction> ElasticController<NF> {
    /// Build an elastic middlebox for `config`/`nf` and attach `plan`.
    /// The plan is validated first; a rejected plan never touches the
    /// dataplane.
    pub fn new(config: MiddleboxConfig, nf: NF, plan: ReconfigPlan) -> Result<Self, PlanError> {
        plan.validate()?;
        Ok(ElasticController {
            mb: MiddleboxSim::new_elastic(config, nf),
            events: plan.events,
            next_event: 0,
            offered: 0,
        })
    }

    /// Fire every event due at `at` (in plan order), then admit `pkt`.
    pub fn offer(&mut self, at: Time, pkt: Packet) {
        self.fire_due(at);
        self.mb.ingress(at, pkt);
        self.offered += 1;
    }

    /// Fire any remaining time triggers up to `until`, then run the
    /// dataplane until it drains (or `until`, whichever is later in
    /// event terms — this simply forwards to
    /// [`MiddleboxSim::run_until`]). Packet-count triggers that never
    /// became due stay pending ([`ElasticController::pending_events`]).
    pub fn finish(&mut self, until: Time) {
        self.fire_due(until);
        self.mb.run_until(until);
    }

    fn fire_due(&mut self, at: Time) {
        while let Some(ev) = self.events.get(self.next_event).copied() {
            let due = match ev.trigger {
                Trigger::AtPacket(n) => self.offered >= n,
                Trigger::AtTime(t) => at >= t,
            };
            if !due {
                break;
            }
            // Clamp to the dataplane clock: a trigger that comes due
            // while the simulator has already advanced past its nominal
            // instant fires "now".
            let when = match ev.trigger {
                Trigger::AtPacket(_) => at,
                Trigger::AtTime(t) => t,
            }
            .max(self.mb.now());
            self.mb.reconfigure(when, ev.target_cores);
            self.next_event += 1;
        }
    }

    /// Reports of every transition fired so far, in firing order.
    pub fn reports(&self) -> &[ReconfigReport] {
        self.mb.reconfigs()
    }

    /// Plan events not yet fired.
    pub fn pending_events(&self) -> &[ReconfigEvent] {
        &self.events[self.next_event..]
    }

    /// Packets offered through the controller.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The driven middlebox.
    pub fn middlebox(&self) -> &MiddleboxSim<NF> {
        &self.mb
    }

    /// The driven middlebox, mutably (e.g. to drain egress or take
    /// samples between plan events).
    pub fn middlebox_mut(&mut self) -> &mut MiddleboxSim<NF> {
        &mut self.mb
    }

    /// Tear down, keeping the middlebox (reports stay on it).
    pub fn into_middlebox(self) -> MiddleboxSim<NF> {
        self.mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ReconfigPlan;
    use sprayer::config::DispatchMode;
    use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};
    use sprayer_nf::firewall::{AclRule, Action, FirewallNf};

    fn allow_all_firewall() -> FirewallNf {
        FirewallNf::new(vec![AclRule::default_action(Action::Allow)])
    }

    fn config(mode: DispatchMode, cores: usize) -> MiddleboxConfig {
        let mut c = MiddleboxConfig::paper_testbed(mode);
        c.num_cores = cores;
        c
    }

    /// `flows` SYNs, then `rounds` data packets per flow, 1 µs apart.
    fn drive(ctl: &mut ElasticController<FirewallNf>, flows: u32, rounds: u32) {
        let mut at = ctl.middlebox().now();
        for f in 0..flows {
            let t = FiveTuple::tcp(0x0a00_0000 + f, 40_000, 0xc0a8_0001, 443);
            at += Time::from_us(1);
            ctl.offer(at, PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b""));
        }
        for i in 0..rounds {
            for f in 0..flows {
                let t = FiveTuple::tcp(0x0a00_0000 + f, 40_000, 0xc0a8_0001, 443);
                at += Time::from_us(1);
                let payload = sprayer_net::flow::splitmix64(u64::from(i * 131 + f)).to_be_bytes();
                ctl.offer(
                    at,
                    PacketBuilder::new().tcp(t, i + 1, 0, TcpFlags::ACK, &payload),
                );
            }
        }
    }

    #[test]
    fn invalid_plans_never_build_a_controller() {
        let plan = ReconfigPlan::new().at_packet(10, 0);
        let err =
            ElasticController::new(config(DispatchMode::Sprayer, 2), allow_all_firewall(), plan)
                .err();
        assert_eq!(err, Some(PlanError::ZeroCores { index: 0 }));
    }

    #[test]
    fn packet_trigger_fires_between_packets() {
        // 32 SYNs then data; the scale-up must fire exactly once, after
        // 40 packets were offered, and (Sprayer) migrate nothing.
        let plan = ReconfigPlan::new().at_packet(40, 4);
        let mut ctl =
            ElasticController::new(config(DispatchMode::Sprayer, 2), allow_all_firewall(), plan)
                .unwrap();
        drive(&mut ctl, 32, 8);
        let end = ctl.middlebox().now() + Time::from_ms(2);
        ctl.finish(end);

        assert_eq!(ctl.reports().len(), 1);
        let r = ctl.reports()[0];
        assert_eq!((r.from_cores, r.to_cores), (2, 4));
        assert_eq!(r.migrated_flows, 0, "Sprayer scale-up pins assignments");
        assert!(ctl.pending_events().is_empty());
        let stats = ctl.middlebox().stats();
        assert_eq!(stats.offered, (32 + 32 * 8) as u64);
        assert_eq!(stats.unaccounted(), 0);
        assert_eq!(stats.nf_drops, 0, "all flows allowed; state must survive");
        assert_eq!(ctl.middlebox().active_cores(), 4);
    }

    #[test]
    fn time_trigger_fires_and_rss_migrates() {
        // RSS comparison: a timed scale-down reprograms the indirection
        // table and must migrate the remapped flows.
        let plan = ReconfigPlan::new().at_time(Time::from_us(40), 2);
        let mut ctl =
            ElasticController::new(config(DispatchMode::Rss, 4), allow_all_firewall(), plan)
                .unwrap();
        drive(&mut ctl, 64, 4);
        let end = ctl.middlebox().now() + Time::from_ms(2);
        ctl.finish(end);

        assert_eq!(ctl.reports().len(), 1);
        let r = ctl.reports()[0];
        assert_eq!((r.from_cores, r.to_cores), (4, 2));
        assert!(r.migrated_flows > 0, "RSS rescale must migrate: {r:?}");
        assert!(r.downtime_ns > 0);
        let stats = ctl.middlebox().stats();
        assert_eq!(stats.unaccounted(), 0);
        assert_eq!(
            ctl.middlebox()
                .nf()
                .migrated_contexts
                .load(std::sync::atomic::Ordering::Relaxed),
            r.migrated_flows,
            "controller transitions must run the NF migration hooks"
        );
    }

    #[test]
    fn multi_event_plans_fire_in_order() {
        let plan = ReconfigPlan::new()
            .at_packet(32, 4)
            .at_packet(160, 2)
            .at_time(Time::from_ms(500), 8);
        let mut ctl =
            ElasticController::new(config(DispatchMode::Sprayer, 2), allow_all_firewall(), plan)
                .unwrap();
        drive(&mut ctl, 32, 8);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(1));
        // The 500 ms trigger never came due on this short trace.
        assert_eq!(ctl.reports().len(), 2);
        assert_eq!(ctl.pending_events().len(), 1);
        let epochs: Vec<u64> = ctl.reports().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2]);
        assert_eq!(ctl.reports()[0].to_cores, 4);
        assert_eq!(ctl.reports()[1].to_cores, 2);
        // Designated pinning: the full up/down cycle migrated nothing.
        assert_eq!(
            ctl.reports().iter().map(|r| r.migrated_flows).sum::<u64>(),
            0
        );
        assert_eq!(ctl.middlebox().stats().unaccounted(), 0);
    }
}
