//! The chaos controller: a fault plan applied to a live dataplane.
//!
//! [`ChaosController`] mirrors [`crate::ElasticController`], but the
//! schedule it executes is a [`FaultPlan`]. Before each admitted packet
//! it fires every due fault — crashes via
//! [`MiddleboxSim::inject_core_failure`], stalls via
//! [`MiddleboxSim::stall_core`], adversarial bursts via the raw-frame
//! and packet ingress paths — and, crucially, it *schedules the
//! recovery*: a crash at `t` is recovered at
//! `t + detect_deadline` through [`MiddleboxSim::recover`], modelling a
//! watchdog that needs that long to notice. Packets the NIC steers at
//! the corpse in the window are honestly lost; the
//! [`sprayer::RecoveryReport`] series the runs produce is the
//! experiment's raw data.

use crate::fault::{AdversarialProfile, FaultEvent, FaultKind, FaultPlan, FaultPlanError};
use crate::plan::Trigger;
use sprayer::api::NetworkFunction;
use sprayer::config::MiddleboxConfig;
use sprayer::runtime_sim::MiddleboxSim;
use sprayer::RecoveryReport;
use sprayer_net::Packet;
use sprayer_obs::{flight, HealthEvent};
use sprayer_sim::Time;
use sprayer_trafficgen::Adversary;
use std::path::{Path, PathBuf};

/// Drives a [`MiddleboxSim`] through a [`FaultPlan`].
pub struct ChaosController<NF: NetworkFunction> {
    mb: MiddleboxSim<NF>,
    events: Vec<FaultEvent>,
    next_event: usize,
    detect_deadline: Time,
    /// Crashed cores awaiting their watchdog deadline: `(due, core)`.
    pending_recoveries: Vec<(Time, usize)>,
    adversary: Adversary,
    offered: u64,
    injected: u64,
    /// Where to dump a latched flight recorder at [`Self::finish`].
    flight_dump: Option<PathBuf>,
    flight_dumped: Option<PathBuf>,
}

impl<NF: NetworkFunction> ChaosController<NF> {
    /// Build an elastic middlebox for `config`/`nf` and arm `plan`.
    /// The plan is validated first; a rejected plan never touches the
    /// dataplane. `seed` makes the adversarial traffic reproducible.
    pub fn new(
        config: MiddleboxConfig,
        nf: NF,
        plan: FaultPlan,
        seed: u64,
    ) -> Result<Self, FaultPlanError> {
        plan.validate()?;
        Ok(ChaosController {
            mb: MiddleboxSim::new_elastic(config, nf),
            events: plan.events,
            next_event: 0,
            detect_deadline: plan.detect_deadline,
            pending_recoveries: Vec::new(),
            adversary: Adversary::new(seed),
            offered: 0,
            injected: 0,
            flight_dump: None,
            flight_dumped: None,
        })
    }

    /// Arm the alert→dump hook: if the dataplane's flight recorder is
    /// frozen by the end of [`Self::finish`] (a critical health event —
    /// worker death, watchdog fence, drop storm — latched it), the
    /// snapshot is written to `path` as a `sprayer-flight/1` dump for
    /// the `blackbox` post-mortem analyzer. Requires
    /// `ObsConfig::flight` on the middlebox config; a healthy run
    /// writes nothing.
    pub fn dump_flight_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.flight_dump = Some(path.into());
        self
    }

    /// The dump written by the alert→dump hook, if a freeze happened.
    pub fn flight_dumped(&self) -> Option<&Path> {
        self.flight_dumped.as_deref()
    }

    /// Fire every fault and recovery due at `at` (in schedule order),
    /// then admit `pkt`.
    pub fn offer(&mut self, at: Time, pkt: Packet) {
        self.fire_due(at);
        self.mb.ingress(at, pkt);
        self.offered += 1;
    }

    /// Fire any remaining time-triggered faults and due recoveries up
    /// to `until`, then run the dataplane until it drains. A crash
    /// whose detection deadline lands past `until` is still recovered —
    /// a run never ends with a corpse undetected.
    pub fn finish(&mut self, until: Time) {
        self.fire_due(until);
        self.fire_recoveries(until);
        // Late deadlines: detection always completes before teardown.
        while let Some((due, core)) = self.pop_due_recovery(Time::from_ps(u64::MAX)) {
            let when = due.max(self.mb.now());
            self.mb.recover(when, core);
        }
        self.mb.run_until(until);
        // Alert→dump hook: a critical health event froze the recorder
        // mid-run; persist the evidence before anything tears down.
        if let (Some(path), Some(snap)) = (&self.flight_dump, self.mb.flight_snapshot()) {
            if snap.frozen.is_some() {
                match flight::save(&snap, path) {
                    Ok(()) => self.flight_dumped = Some(path.clone()),
                    Err(e) => eprintln!("flight dump to {} failed: {e}", path.display()),
                }
            }
        }
    }

    fn fire_due(&mut self, at: Time) {
        self.fire_recoveries(at);
        while let Some(ev) = self.events.get(self.next_event).copied() {
            let due = match ev.trigger {
                Trigger::AtPacket(n) => self.offered >= n,
                Trigger::AtTime(t) => at >= t,
            };
            if !due {
                break;
            }
            // Clamp to the dataplane clock, as the elastic controller
            // does: a fault due while the simulator has advanced past
            // its nominal instant fires "now".
            let when = match ev.trigger {
                Trigger::AtPacket(_) => at,
                Trigger::AtTime(t) => t,
            }
            .max(self.mb.now());
            // The control plane announces each injection on the health
            // bus (when armed) before the dataplane feels it, exactly
            // like a chaos harness logging what it is about to do.
            match ev.kind {
                FaultKind::CrashCore { core } => {
                    self.mb.emit_health(HealthEvent::FaultInjected {
                        kind: "crash",
                        core,
                    });
                    self.mb.inject_core_failure(when, core);
                    self.pending_recoveries
                        .push((when + self.detect_deadline, core));
                }
                FaultKind::StallCore { core, duration } => {
                    self.mb.emit_health(HealthEvent::FaultInjected {
                        kind: "stall",
                        core,
                    });
                    self.mb.stall_core(when, core, duration);
                }
                FaultKind::Adversarial { profile, count } => {
                    self.mb.emit_health(HealthEvent::FaultInjected {
                        kind: "adversarial",
                        core: usize::MAX,
                    });
                    self.inject_burst(when, profile, count);
                }
            }
            self.next_event += 1;
            self.fire_recoveries(at);
        }
    }

    /// Run every recovery whose watchdog deadline is at or before `at`.
    fn fire_recoveries(&mut self, at: Time) {
        while let Some((due, core)) = self.pop_due_recovery(at) {
            let when = due.max(self.mb.now());
            self.mb.recover(when, core);
        }
    }

    fn pop_due_recovery(&mut self, at: Time) -> Option<(Time, usize)> {
        let idx = self
            .pending_recoveries
            .iter()
            .enumerate()
            .filter(|(_, (due, _))| *due <= at)
            .min_by_key(|(_, (due, _))| *due)
            .map(|(i, _)| i)?;
        Some(self.pending_recoveries.swap_remove(idx))
    }

    /// Inject `count` adversarial frames/packets back-to-back at wire
    /// pace (one 64-byte slot ≈ 67 ns on 10 GbE) starting at `when`.
    fn inject_burst(&mut self, when: Time, profile: AdversarialProfile, count: u32) {
        for i in 0..u64::from(count) {
            let at = when + Time::from_ns(i * 67);
            match profile {
                AdversarialProfile::TruncatedFrames => {
                    let frame = self.adversary.truncated_frame();
                    self.mb.ingress_frame(at, frame);
                }
                AdversarialProfile::GarbageHeaders => {
                    let frame = self.adversary.garbage_frame();
                    self.mb.ingress_frame(at, frame);
                }
                AdversarialProfile::LowEntropyChecksum { target } => {
                    let pkt = self.adversary.crafted_burst(target, 1).pop().expect("one");
                    self.mb.ingress(at, pkt);
                }
            }
            self.injected += 1;
        }
    }

    /// Recovery reports of every crash detected so far, in firing order.
    pub fn recoveries(&self) -> &[RecoveryReport] {
        self.mb.recoveries()
    }

    /// Plan events not yet fired.
    pub fn pending_events(&self) -> &[FaultEvent] {
        &self.events[self.next_event..]
    }

    /// Foreground packets offered through the controller (adversarial
    /// injections are counted separately in
    /// [`ChaosController::injected`] and do not advance packet
    /// triggers).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Adversarial frames/packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The driven middlebox.
    pub fn middlebox(&self) -> &MiddleboxSim<NF> {
        &self.mb
    }

    /// The driven middlebox, mutably.
    pub fn middlebox_mut(&mut self) -> &mut MiddleboxSim<NF> {
        &mut self.mb
    }

    /// Tear down, keeping the middlebox (reports stay on it).
    pub fn into_middlebox(self) -> MiddleboxSim<NF> {
        self.mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};
    use sprayer_nf::firewall::{AclRule, Action, FirewallNf};

    fn allow_all_firewall() -> FirewallNf {
        FirewallNf::new(vec![AclRule::default_action(Action::Allow)])
    }

    fn config(mode: DispatchMode, cores: usize) -> MiddleboxConfig {
        let mut c = MiddleboxConfig::paper_testbed(mode);
        c.num_cores = cores;
        c
    }

    /// `flows` SYNs, then `rounds` data packets per flow, 1 µs apart.
    fn drive(ctl: &mut ChaosController<FirewallNf>, flows: u32, rounds: u32) {
        let mut at = ctl.middlebox().now();
        for f in 0..flows {
            let t = FiveTuple::tcp(0x0a00_0000 + f, 40_000, 0xc0a8_0001, 443);
            at += Time::from_us(1);
            ctl.offer(at, PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b""));
        }
        for i in 0..rounds {
            for f in 0..flows {
                let t = FiveTuple::tcp(0x0a00_0000 + f, 40_000, 0xc0a8_0001, 443);
                at += Time::from_us(1);
                let payload = sprayer_net::flow::splitmix64(u64::from(i * 131 + f)).to_be_bytes();
                ctl.offer(
                    at,
                    PacketBuilder::new().tcp(t, i + 1, 0, TcpFlags::ACK, &payload),
                );
            }
        }
    }

    #[test]
    fn invalid_plans_never_build_a_controller() {
        let plan = FaultPlan::new().detect_within(Time::ZERO);
        let err = ChaosController::new(
            config(DispatchMode::Sprayer, 2),
            allow_all_firewall(),
            plan,
            1,
        )
        .err();
        assert_eq!(err, Some(FaultPlanError::ZeroDeadline));
    }

    #[test]
    fn crash_is_recovered_after_the_detection_deadline() {
        let plan = FaultPlan::new()
            .crash_at_packet(40, 1)
            .detect_within(Time::from_us(20));
        let mut ctl = ChaosController::new(
            config(DispatchMode::Sprayer, 4),
            allow_all_firewall(),
            plan,
            2,
        )
        .unwrap();
        drive(&mut ctl, 32, 8);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(2));

        assert_eq!(ctl.recoveries().len(), 1);
        let r = ctl.recoveries()[0];
        assert_eq!(r.failed_core, 1);
        assert_eq!((r.from_active, r.to_active), (4, 3));
        assert_eq!(
            r.migrated_flows, 0,
            "Sprayer recovery touches only the dead core's flows: {r:?}"
        );
        assert!(
            r.detection_latency_ns >= 20_000,
            "recovery cannot precede the deadline: {r:?}"
        );
        assert!(ctl.pending_events().is_empty());
        let stats = ctl.middlebox().stats();
        assert!(stats.lost_packets > 0, "a crash loses in-flight packets");
        assert_eq!(
            stats.unaccounted(),
            0,
            "losses must be accounted: {stats:?}"
        );
    }

    #[test]
    fn rss_recovery_migrates_survivors() {
        let plan = FaultPlan::new()
            .crash_at_packet(80, 2)
            .detect_within(Time::from_us(20));
        let mut ctl =
            ChaosController::new(config(DispatchMode::Rss, 4), allow_all_firewall(), plan, 3)
                .unwrap();
        drive(&mut ctl, 64, 6);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(2));

        assert_eq!(ctl.recoveries().len(), 1);
        let r = ctl.recoveries()[0];
        assert!(
            r.migrated_flows > 0,
            "RSS rebuilds the indirection table broadly: {r:?}"
        );
        assert_eq!(ctl.middlebox().stats().unaccounted(), 0);
    }

    #[test]
    fn late_crashes_are_still_detected_at_finish() {
        // The crash fires on the last offered packet; its deadline lands
        // beyond the horizon, but finish() must still recover it.
        let plan = FaultPlan::new()
            .crash_at_packet(96, 0)
            .detect_within(Time::from_ms(50));
        let mut ctl = ChaosController::new(
            config(DispatchMode::Sprayer, 2),
            allow_all_firewall(),
            plan,
            4,
        )
        .unwrap();
        drive(&mut ctl, 32, 2);
        ctl.finish(ctl.middlebox().now() + Time::from_us(10));
        assert_eq!(ctl.recoveries().len(), 1);
        assert_eq!(ctl.middlebox().stats().unaccounted(), 0);
    }

    #[test]
    fn malformed_bursts_land_in_malformed_drops() {
        let plan = FaultPlan::new()
            .adversarial_at_packet(16, AdversarialProfile::TruncatedFrames, 24)
            .adversarial_at_packet(32, AdversarialProfile::GarbageHeaders, 24);
        let mut ctl = ChaosController::new(
            config(DispatchMode::Sprayer, 2),
            allow_all_firewall(),
            plan,
            5,
        )
        .unwrap();
        drive(&mut ctl, 16, 4);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(2));

        assert_eq!(ctl.injected(), 48);
        let stats = ctl.middlebox().stats();
        assert_eq!(stats.malformed_drops, 48, "every bad frame accounted");
        assert_eq!(stats.unaccounted(), 0);
        assert_eq!(stats.nf_drops, 0, "well-formed traffic is unharmed");
    }

    #[test]
    fn injections_are_announced_on_the_health_bus() {
        use sprayer::config::ObsConfig;
        let mut cfg = config(DispatchMode::Sprayer, 4);
        cfg.obs = ObsConfig {
            health: true,
            ..ObsConfig::disabled()
        };
        let plan = FaultPlan::new()
            .crash_at_packet(40, 1)
            .adversarial_at_packet(60, AdversarialProfile::TruncatedFrames, 8)
            .detect_within(Time::from_us(20));
        let mut ctl = ChaosController::new(cfg, allow_all_firewall(), plan, 7).unwrap();
        drive(&mut ctl, 32, 4);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(2));

        let health = ctl
            .middlebox_mut()
            .take_health()
            .expect("health bus armed via ObsConfig");
        let counts = health.counts();
        assert_eq!(counts.get("fault_injected"), Some(&2), "{counts:?}");
        assert_eq!(
            counts.get("worker_death"),
            Some(&1),
            "the crash itself is also reported: {counts:?}"
        );
        assert!(
            counts.get("reconfig_phase").copied().unwrap_or(0) >= 1,
            "the watchdog recovery runs a reconfiguration: {counts:?}"
        );
        let mut last = 0;
        for rec in &health.records {
            assert!(rec.ts >= last, "health timestamps are monotone");
            last = rec.ts;
        }
    }

    #[test]
    fn crash_triggers_the_flight_dump_and_healthy_runs_do_not() {
        use sprayer::config::ObsConfig;
        let dir = std::env::temp_dir().join(format!("sprayer-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let crash_path = dir.join("crash.txt");
        let healthy_path = dir.join("healthy.txt");

        let mut cfg = config(DispatchMode::Sprayer, 4);
        cfg.obs = ObsConfig::flight_recorder();
        let plan = FaultPlan::new()
            .crash_at_packet(40, 1)
            .detect_within(Time::from_us(20));
        let mut ctl = ChaosController::new(cfg.clone(), allow_all_firewall(), plan, 2)
            .unwrap()
            .dump_flight_to(&crash_path);
        drive(&mut ctl, 32, 8);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(2));
        assert_eq!(ctl.flight_dumped(), Some(crash_path.as_path()));
        let snap = flight::load(&crash_path).expect("the dump parses back");
        let freeze = snap.frozen.expect("the crash latched the recorder");
        assert_eq!(freeze.kind, "worker_death");
        assert_eq!(freeze.core, 1);
        assert!(snap.recorded > 0);

        // No fault, no freeze, no file.
        let mut ctl = ChaosController::new(cfg, allow_all_firewall(), FaultPlan::new(), 2)
            .unwrap()
            .dump_flight_to(&healthy_path);
        drive(&mut ctl, 32, 8);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(2));
        assert_eq!(ctl.flight_dumped(), None);
        assert!(!healthy_path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn low_entropy_checksums_are_valid_traffic() {
        // Crafted packets are *valid*: they must be processed (and, with
        // no SYN, dropped by the firewall's flow check as unknown-flow
        // NF drops or forwarded, depending on NF policy) — never counted
        // malformed.
        let plan = FaultPlan::new().adversarial_at_packet(
            16,
            AdversarialProfile::LowEntropyChecksum { target: 0x00ff },
            64,
        );
        let mut ctl = ChaosController::new(
            config(DispatchMode::Sprayer, 4),
            allow_all_firewall(),
            plan,
            6,
        )
        .unwrap();
        drive(&mut ctl, 16, 4);
        ctl.finish(ctl.middlebox().now() + Time::from_ms(2));

        let stats = ctl.middlebox().stats();
        assert_eq!(stats.malformed_drops, 0);
        assert_eq!(stats.offered, 16 + 16 * 4 + 64);
        assert_eq!(stats.unaccounted(), 0);
    }
}
