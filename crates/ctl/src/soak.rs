//! Scenario composition: one plan that runs elasticity, faults, and
//! adversarial bursts *simultaneously* over a long horizon.
//!
//! A [`SoakPlan`] glues a [`ReconfigPlan`] and a [`FaultPlan`] into a
//! single schedule for a multi-minute (simulated) soak. Composition is
//! where independently-valid plans go wrong, so [`SoakPlan::validate`]
//! enforces three properties the single-plan validators cannot see:
//!
//! 1. **Timed triggers only.** Packet-count triggers are rejected: the
//!    two plans count different streams (a burst's packets advance one
//!    plan's count but not the other's intuition of it), so cross-plan
//!    ordering of `AtPacket` triggers is undefined. On a shared
//!    simulated clock, `AtTime` triggers compose deterministically.
//! 2. **No fault inside a quiesce window.** A reconfiguration at `t`
//!    owns `[t, t + quiesce]` (the caller passes its conservative
//!    quiesce+migrate bound at validation time); a crash or stall
//!    scheduled inside it would hit a dataplane that is mid-migration.
//! 3. **No reconfiguration inside a fault window.** A crash at `t` owns
//!    its watchdog window `[t, t + detect_deadline]` and a stall owns
//!    `[t, t + duration]`; a rescale scheduled inside either would race
//!    the recovery's own epoch transition.
//!
//! Adversarial bursts are exempt from the window rules — they are
//! traffic, not control-plane actions, and colliding them with a
//! transition is exactly the stress a soak exists to apply.
//!
//! [`SoakController`] then executes the composed schedule against one
//! [`MiddleboxSim`], merging the three event sources (reconfigs, faults,
//! pending watchdog recoveries) in nominal-time order — not in
//! per-plan order, which would invert firings when several events come
//! due between two sparse packets.

use crate::fault::{AdversarialProfile, FaultEvent, FaultKind, FaultPlan, FaultPlanError};
use crate::plan::{PlanError, ReconfigEvent, ReconfigPlan, Trigger};
use sprayer::api::NetworkFunction;
use sprayer::config::MiddleboxConfig;
use sprayer::runtime_sim::MiddleboxSim;
use sprayer::{ReconfigReport, RecoveryReport};
use sprayer_net::Packet;
use sprayer_obs::HealthEvent;
use sprayer_sim::Time;
use sprayer_trafficgen::Adversary;

/// Why a composed plan was rejected by [`SoakPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakPlanError {
    /// The reconfiguration sub-plan is invalid on its own.
    Reconfig(PlanError),
    /// The fault sub-plan is invalid on its own.
    Fault(FaultPlanError),
    /// A reconfiguration event uses a packet-count trigger.
    UntimedReconfig {
        /// Index of the offending event in the reconfig plan.
        index: usize,
    },
    /// A fault event uses a packet-count trigger.
    UntimedFault {
        /// Index of the offending event in the fault plan.
        index: usize,
    },
    /// An event (or its window) extends past the soak horizon.
    BeyondHorizon {
        /// Nominal end of the offending window.
        window_end: Time,
    },
    /// A crash or stall is scheduled inside a reconfiguration's quiesce
    /// window.
    FaultDuringQuiesce {
        /// Index of the offending fault event.
        fault: usize,
        /// Index of the reconfiguration whose window it violates.
        reconfig: usize,
    },
    /// A reconfiguration is scheduled inside a crash's detection window
    /// or a stall's wedged window.
    ReconfigDuringFault {
        /// Index of the offending reconfiguration event.
        reconfig: usize,
        /// Index of the fault whose window it violates.
        fault: usize,
    },
}

impl std::fmt::Display for SoakPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoakPlanError::Reconfig(e) => write!(f, "reconfig sub-plan: {e}"),
            SoakPlanError::Fault(e) => write!(f, "fault sub-plan: {e}"),
            SoakPlanError::UntimedReconfig { index } => {
                write!(f, "reconfig event {index} is packet-triggered; composed plans need timed triggers")
            }
            SoakPlanError::UntimedFault { index } => {
                write!(
                    f,
                    "fault event {index} is packet-triggered; composed plans need timed triggers"
                )
            }
            SoakPlanError::BeyondHorizon { window_end } => {
                write!(
                    f,
                    "an event window ends at {} ns, past the soak horizon",
                    window_end.as_ps() / 1_000
                )
            }
            SoakPlanError::FaultDuringQuiesce { fault, reconfig } => {
                write!(
                    f,
                    "fault event {fault} fires inside reconfig {reconfig}'s quiesce window"
                )
            }
            SoakPlanError::ReconfigDuringFault { reconfig, fault } => {
                write!(
                    f,
                    "reconfig event {reconfig} fires inside fault {fault}'s window"
                )
            }
        }
    }
}

/// A composed soak schedule: elasticity and failures on one clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakPlan {
    /// The elastic transitions.
    pub reconfig: ReconfigPlan,
    /// The faults (crashes, stalls, adversarial bursts) plus the
    /// watchdog detection deadline.
    pub faults: FaultPlan,
    /// End of the soak: every event window must close before it, and
    /// the driver keeps offering churn until it.
    pub horizon: Time,
}

impl SoakPlan {
    /// An empty soak over `horizon` (valid: plain churn, no events).
    pub fn new(horizon: Time) -> Self {
        SoakPlan {
            reconfig: ReconfigPlan::new(),
            faults: FaultPlan::new(),
            horizon,
        }
    }

    /// Attach the elastic schedule.
    pub fn with_reconfig(mut self, plan: ReconfigPlan) -> Self {
        self.reconfig = plan;
        self
    }

    /// Attach the fault schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The exclusive window a fault occupies, `None` for bursts (and
    /// for the packet-triggered events the timed check already rejects).
    fn fault_window(&self, ev: &FaultEvent) -> Option<(Time, Time)> {
        let Trigger::AtTime(t) = ev.trigger else {
            return None;
        };
        match ev.kind {
            FaultKind::CrashCore { .. } => Some((t, t + self.faults.detect_deadline)),
            FaultKind::StallCore { duration, .. } => Some((t, t + duration)),
            FaultKind::Adversarial { .. } => None,
        }
    }

    /// Cross-validate the composition. `quiesce` is the caller's
    /// conservative bound on one reconfiguration's quiesce-and-migrate
    /// window (the simulator reports the exact cost only after the
    /// fact, so composition is checked against a declared budget).
    pub fn validate(&self, quiesce: Time) -> Result<(), SoakPlanError> {
        self.reconfig.validate().map_err(SoakPlanError::Reconfig)?;
        self.faults.validate().map_err(SoakPlanError::Fault)?;
        for (index, ev) in self.reconfig.events.iter().enumerate() {
            let Trigger::AtTime(t) = ev.trigger else {
                return Err(SoakPlanError::UntimedReconfig { index });
            };
            let end = t + quiesce;
            if end > self.horizon {
                return Err(SoakPlanError::BeyondHorizon { window_end: end });
            }
        }
        for (index, ev) in self.faults.events.iter().enumerate() {
            let Trigger::AtTime(t) = ev.trigger else {
                return Err(SoakPlanError::UntimedFault { index });
            };
            let end = self.fault_window(ev).map_or(t, |(_, e)| e);
            if end > self.horizon {
                return Err(SoakPlanError::BeyondHorizon { window_end: end });
            }
        }
        // Windows, both ways. Quadratic in events — plans are tiny.
        for (ri, rev) in self.reconfig.events.iter().enumerate() {
            let Trigger::AtTime(rt) = rev.trigger else {
                unreachable!("checked above");
            };
            let r_end = rt + quiesce;
            for (fi, fev) in self.faults.events.iter().enumerate() {
                let Trigger::AtTime(ft) = fev.trigger else {
                    unreachable!("checked above");
                };
                if self.fault_window(fev).is_some() {
                    // Fault inside the reconfig's quiesce window?
                    if ft >= rt && ft <= r_end {
                        return Err(SoakPlanError::FaultDuringQuiesce {
                            fault: fi,
                            reconfig: ri,
                        });
                    }
                    // Reconfig inside the fault's window?
                    let (fs, fe) = self.fault_window(fev).expect("checked");
                    if rt >= fs && rt <= fe {
                        return Err(SoakPlanError::ReconfigDuringFault {
                            reconfig: ri,
                            fault: fi,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// The next control-plane action, in nominal-time order.
enum Due {
    Recovery,
    Fault,
    Reconfig,
}

/// Drives one [`MiddleboxSim`] through a composed [`SoakPlan`],
/// merging reconfigurations, faults, and watchdog recoveries on the
/// shared clock.
pub struct SoakController<NF: NetworkFunction> {
    mb: MiddleboxSim<NF>,
    reconfigs: Vec<ReconfigEvent>,
    next_reconfig: usize,
    faults: Vec<FaultEvent>,
    next_fault: usize,
    detect_deadline: Time,
    /// Crashed cores awaiting their watchdog deadline: `(due, core)`.
    pending_recoveries: Vec<(Time, usize)>,
    adversary: Adversary,
    offered: u64,
    injected: u64,
    horizon: Time,
}

impl<NF: NetworkFunction> SoakController<NF> {
    /// Build an elastic middlebox for `config`/`nf` and arm the
    /// composed `plan`. The plan is cross-validated against `quiesce`
    /// first; a rejected composition never touches the dataplane.
    pub fn new(
        config: MiddleboxConfig,
        nf: NF,
        plan: SoakPlan,
        quiesce: Time,
        seed: u64,
    ) -> Result<Self, SoakPlanError> {
        plan.validate(quiesce)?;
        Ok(SoakController {
            mb: MiddleboxSim::new_elastic(config, nf),
            reconfigs: plan.reconfig.events,
            next_reconfig: 0,
            faults: plan.faults.events,
            next_fault: 0,
            detect_deadline: plan.faults.detect_deadline,
            pending_recoveries: Vec::new(),
            adversary: Adversary::new(seed),
            offered: 0,
            injected: 0,
            horizon: plan.horizon,
        })
    }

    /// The soak horizon the plan declared.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Nominal time of an event already validated as timed.
    fn timed(trigger: Trigger) -> Time {
        match trigger {
            Trigger::AtTime(t) => t,
            Trigger::AtPacket(_) => {
                unreachable!("SoakPlan::validate rejects packet triggers")
            }
        }
    }

    /// The earliest action due at or before `at`, if any. Ties resolve
    /// recovery → fault → reconfig: a recovery at `t` restores capacity
    /// the other two assume, and validation keeps real windows apart.
    fn next_due(&self, at: Time) -> Option<(Time, Due)> {
        let mut best: Option<(Time, Due)> = None;
        if let Some((due, _)) = self
            .pending_recoveries
            .iter()
            .min_by_key(|(due, _)| *due)
            .filter(|(due, _)| *due <= at)
        {
            best = Some((*due, Due::Recovery));
        }
        if let Some(ev) = self.faults.get(self.next_fault) {
            let t = Self::timed(ev.trigger);
            if t <= at && best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, Due::Fault));
            }
        }
        if let Some(ev) = self.reconfigs.get(self.next_reconfig) {
            let t = Self::timed(ev.trigger);
            if t <= at && best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, Due::Reconfig));
            }
        }
        best
    }

    /// Fire every control-plane action due at `at`, in nominal-time
    /// order across all three sources.
    fn fire_due(&mut self, at: Time) {
        while let Some((nominal, which)) = self.next_due(at) {
            // Clamp to the dataplane clock: an action due while the
            // simulator has advanced past its instant fires "now".
            let when = nominal.max(self.mb.now());
            match which {
                Due::Recovery => {
                    let idx = self
                        .pending_recoveries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (due, _))| *due)
                        .map(|(i, _)| i)
                        .expect("next_due saw one");
                    let (_, core) = self.pending_recoveries.swap_remove(idx);
                    self.mb.recover(when, core);
                }
                Due::Fault => {
                    let ev = self.faults[self.next_fault];
                    self.next_fault += 1;
                    match ev.kind {
                        FaultKind::CrashCore { core } => {
                            self.mb.emit_health(HealthEvent::FaultInjected {
                                kind: "crash",
                                core,
                            });
                            self.mb.inject_core_failure(when, core);
                            self.pending_recoveries
                                .push((when + self.detect_deadline, core));
                        }
                        FaultKind::StallCore { core, duration } => {
                            self.mb.emit_health(HealthEvent::FaultInjected {
                                kind: "stall",
                                core,
                            });
                            self.mb.stall_core(when, core, duration);
                        }
                        FaultKind::Adversarial { profile, count } => {
                            self.mb.emit_health(HealthEvent::FaultInjected {
                                kind: "adversarial",
                                core: usize::MAX,
                            });
                            self.inject_burst(when, profile, count);
                        }
                    }
                }
                Due::Reconfig => {
                    let ev = self.reconfigs[self.next_reconfig];
                    self.next_reconfig += 1;
                    self.mb.reconfigure(when, ev.target_cores);
                }
            }
        }
    }

    /// Inject `count` adversarial frames/packets back-to-back at wire
    /// pace (one 64-byte slot ≈ 67 ns on 10 GbE) starting at `when`.
    fn inject_burst(&mut self, when: Time, profile: AdversarialProfile, count: u32) {
        for i in 0..u64::from(count) {
            let at = when + Time::from_ns(i * 67);
            match profile {
                AdversarialProfile::TruncatedFrames => {
                    let frame = self.adversary.truncated_frame();
                    self.mb.ingress_frame(at, frame);
                }
                AdversarialProfile::GarbageHeaders => {
                    let frame = self.adversary.garbage_frame();
                    self.mb.ingress_frame(at, frame);
                }
                AdversarialProfile::LowEntropyChecksum { target } => {
                    let pkt = self.adversary.crafted_burst(target, 1).pop().expect("one");
                    self.mb.ingress(at, pkt);
                }
            }
            self.injected += 1;
        }
    }

    /// Fire everything due at `at` (in nominal-time order), then admit
    /// `pkt`.
    pub fn offer(&mut self, at: Time, pkt: Packet) {
        self.fire_due(at);
        self.mb.ingress(at, pkt);
        self.offered += 1;
    }

    /// Advance the control plane and dataplane to `at` without offering
    /// a packet — the periodic tick a snapshotting driver uses between
    /// churn packets.
    pub fn tick(&mut self, at: Time) {
        self.fire_due(at);
        self.mb.run_until(at);
    }

    /// Fire any remaining timed events up to `until`, recover every
    /// still-pending crash (a soak never ends with a corpse
    /// undetected), and run the dataplane until it drains.
    pub fn finish(&mut self, until: Time) {
        self.fire_due(until);
        self.pending_recoveries.sort_by_key(|(due, _)| *due);
        for (due, core) in std::mem::take(&mut self.pending_recoveries) {
            let when = due.max(self.mb.now());
            self.mb.recover(when, core);
        }
        self.mb.run_until(until);
    }

    /// Reconfiguration reports fired so far (planned rescales and
    /// watchdog recoveries both run epoch transitions; these are the
    /// planned ones).
    pub fn reconfig_reports(&self) -> &[ReconfigReport] {
        self.mb.reconfigs()
    }

    /// Recovery reports of every crash detected so far.
    pub fn recoveries(&self) -> &[RecoveryReport] {
        self.mb.recoveries()
    }

    /// Plan events not yet fired: `(reconfigs, faults)`.
    pub fn pending_events(&self) -> (usize, usize) {
        (
            self.reconfigs.len() - self.next_reconfig,
            self.faults.len() - self.next_fault,
        )
    }

    /// Foreground packets offered through the controller.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Adversarial frames/packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The driven middlebox.
    pub fn middlebox(&self) -> &MiddleboxSim<NF> {
        &self.mb
    }

    /// The driven middlebox, mutably (snapshots, egress draining).
    pub fn middlebox_mut(&mut self) -> &mut MiddleboxSim<NF> {
        &mut self.mb
    }

    /// Tear down, keeping the middlebox (reports stay on it).
    pub fn into_middlebox(self) -> MiddleboxSim<NF> {
        self.mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};
    use sprayer_nf::firewall::{AclRule, Action, FirewallNf};

    fn allow_all_firewall() -> FirewallNf {
        FirewallNf::new(vec![AclRule::default_action(Action::Allow)])
    }

    fn config(mode: DispatchMode, cores: usize) -> MiddleboxConfig {
        let mut c = MiddleboxConfig::paper_testbed(mode);
        c.num_cores = cores;
        c
    }

    const QUIESCE: Time = Time::from_us(50);

    fn timed_plan() -> SoakPlan {
        SoakPlan::new(Time::from_ms(10))
            .with_reconfig(
                ReconfigPlan::new()
                    .at_time(Time::from_ms(2), 4)
                    .at_time(Time::from_ms(6), 2),
            )
            .with_faults(
                FaultPlan::new()
                    .crash_at_time(Time::from_ms(4), 1)
                    .adversarial_at_time(
                        Time::from_ms(5),
                        AdversarialProfile::LowEntropyChecksum { target: 0x00ff },
                        32,
                    )
                    .detect_within(Time::from_us(20)),
            )
    }

    #[test]
    fn disjoint_windows_validate() {
        assert_eq!(timed_plan().validate(QUIESCE), Ok(()));
        // An empty soak is valid: plain churn.
        assert_eq!(SoakPlan::new(Time::from_ms(1)).validate(QUIESCE), Ok(()));
    }

    #[test]
    fn packet_triggers_are_rejected_in_composition() {
        let plan =
            SoakPlan::new(Time::from_ms(10)).with_reconfig(ReconfigPlan::new().at_packet(100, 4));
        assert_eq!(
            plan.validate(QUIESCE),
            Err(SoakPlanError::UntimedReconfig { index: 0 })
        );
        let plan =
            SoakPlan::new(Time::from_ms(10)).with_faults(FaultPlan::new().crash_at_packet(50, 1));
        assert_eq!(
            plan.validate(QUIESCE),
            Err(SoakPlanError::UntimedFault { index: 0 })
        );
    }

    #[test]
    fn crash_inside_a_quiesce_window_is_rejected() {
        // Reconfig at 2 ms owns [2 ms, 2 ms + 50 µs]; the crash lands
        // 10 µs into it.
        let plan = SoakPlan::new(Time::from_ms(10))
            .with_reconfig(ReconfigPlan::new().at_time(Time::from_ms(2), 4))
            .with_faults(FaultPlan::new().crash_at_time(Time::from_ms(2) + Time::from_us(10), 1));
        assert_eq!(
            plan.validate(QUIESCE),
            Err(SoakPlanError::FaultDuringQuiesce {
                fault: 0,
                reconfig: 0
            })
        );
    }

    #[test]
    fn reconfig_inside_a_detection_window_is_rejected() {
        // Crash at 2 ms with a 100 µs watchdog owns [2 ms, 2.1 ms]; the
        // rescale lands 50 µs into it.
        let plan = SoakPlan::new(Time::from_ms(10))
            .with_reconfig(ReconfigPlan::new().at_time(Time::from_ms(2) + Time::from_us(50), 4))
            .with_faults(
                FaultPlan::new()
                    .crash_at_time(Time::from_ms(2), 1)
                    .detect_within(Time::from_us(100)),
            );
        assert_eq!(
            plan.validate(QUIESCE),
            Err(SoakPlanError::ReconfigDuringFault {
                reconfig: 0,
                fault: 0
            })
        );
        // A stall's wedged window blocks rescales the same way.
        let plan = SoakPlan::new(Time::from_ms(10))
            .with_reconfig(ReconfigPlan::new().at_time(Time::from_ms(3) + Time::from_us(100), 4))
            .with_faults(FaultPlan::new().stall_at_time(Time::from_ms(3), 0, Time::from_us(400)));
        assert_eq!(
            plan.validate(QUIESCE),
            Err(SoakPlanError::ReconfigDuringFault {
                reconfig: 0,
                fault: 0
            })
        );
    }

    #[test]
    fn bursts_may_collide_with_anything() {
        // The burst fires *during* the quiesce window — allowed: it is
        // traffic, and colliding it with a transition is the point.
        let plan = SoakPlan::new(Time::from_ms(10))
            .with_reconfig(ReconfigPlan::new().at_time(Time::from_ms(2), 4))
            .with_faults(FaultPlan::new().adversarial_at_time(
                Time::from_ms(2) + Time::from_us(10),
                AdversarialProfile::TruncatedFrames,
                16,
            ));
        assert_eq!(plan.validate(QUIESCE), Ok(()));
    }

    #[test]
    fn windows_must_close_before_the_horizon() {
        let plan = SoakPlan::new(Time::from_ms(1)).with_faults(
            FaultPlan::new()
                .crash_at_time(Time::from_ms(1) - Time::from_us(5), 0)
                .detect_within(Time::from_us(100)),
        );
        assert!(matches!(
            plan.validate(QUIESCE),
            Err(SoakPlanError::BeyondHorizon { .. })
        ));
    }

    #[test]
    fn composed_soak_fires_everything_and_stays_conservative() {
        let mut ctl = SoakController::new(
            config(DispatchMode::Sprayer, 2),
            allow_all_firewall(),
            timed_plan(),
            QUIESCE,
            11,
        )
        .unwrap();
        // Churn for the whole horizon: 32 flows, a packet every 2 µs.
        let horizon = ctl.horizon();
        let mut at = Time::ZERO;
        let mut i = 0u32;
        while at < horizon {
            let f = i % 32;
            let t = FiveTuple::tcp(0x0a00_0000 + f, 40_000, 0xc0a8_0001, 443);
            let pkt = if i < 32 {
                PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"")
            } else {
                let payload = sprayer_net::flow::splitmix64(u64::from(i)).to_be_bytes();
                PacketBuilder::new().tcp(t, i, 0, TcpFlags::ACK, &payload)
            };
            ctl.offer(at, pkt);
            at += Time::from_us(2);
            i += 1;
        }
        ctl.finish(horizon + Time::from_ms(2));

        assert_eq!(ctl.pending_events(), (0, 0), "every event must fire");
        assert_eq!(ctl.reconfig_reports().len(), 2);
        assert_eq!(ctl.recoveries().len(), 1);
        assert_eq!(ctl.injected(), 32);
        let stats = ctl.middlebox().stats();
        assert!(stats.lost_packets > 0, "the crash loses in-flight packets");
        assert_eq!(stats.unaccounted(), 0, "{stats:?}");
    }

    #[test]
    fn sparse_traffic_fires_merged_events_in_nominal_order() {
        // Only two packets bracket the entire schedule: every event
        // comes due inside one fire_due call, and must still land
        // crash → recovery → reconfig (nominal order), not plan order.
        let plan = SoakPlan::new(Time::from_ms(10))
            .with_reconfig(ReconfigPlan::new().at_time(Time::from_ms(5), 4))
            .with_faults(
                FaultPlan::new()
                    .crash_at_time(Time::from_ms(2), 1)
                    .detect_within(Time::from_us(20)),
            );
        let mut ctl = SoakController::new(
            config(DispatchMode::Sprayer, 2),
            allow_all_firewall(),
            plan,
            QUIESCE,
            13,
        )
        .unwrap();
        let t = FiveTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 443);
        ctl.offer(
            Time::from_us(1),
            PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b""),
        );
        ctl.offer(
            Time::from_ms(9),
            PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"x"),
        );
        ctl.finish(Time::from_ms(12));

        assert_eq!(ctl.recoveries().len(), 1);
        assert_eq!(ctl.reconfig_reports().len(), 1);
        let recovery_epoch = ctl.recoveries()[0].epoch;
        let reconfig_epoch = ctl.reconfig_reports()[0].epoch;
        assert!(
            recovery_epoch < reconfig_epoch,
            "the 2 ms crash (+20 µs recovery) must precede the 5 ms rescale: \
             recovery epoch {recovery_epoch}, reconfig epoch {reconfig_epoch}"
        );
        assert_eq!(ctl.middlebox().stats().unaccounted(), 0);
    }
}
