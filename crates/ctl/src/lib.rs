//! # sprayer-ctl — the elasticity control plane
//!
//! Online core scaling for a running Sprayer middlebox. The paper's §6
//! argues that spraying makes elasticity cheap: because any core can
//! process any packet, scaling up "requires no migration at all", while
//! per-flow dispatch (RSS) must reprogram its indirection table and move
//! every flow whose queue changed. This crate provides the control-plane
//! pieces that turn that argument into a measurable experiment:
//!
//! * [`plan`] — a declarative [`plan::ReconfigPlan`]: an ordered list of
//!   epoch transitions, each fired by a packet-count or time trigger;
//! * [`controller`] — the [`controller::ElasticController`] that drives a
//!   [`sprayer::MiddleboxSim`] through a plan, firing transitions
//!   between packets (quiesce → remap → migrate → resume, executed by
//!   [`sprayer::MiddleboxSim::reconfigure`]);
//! * [`telemetry`] — registry export of the resulting
//!   [`sprayer::ReconfigReport`] series (migration cost, downtime).
//!
//! PR 5 extends the same shape to *unplanned* transitions:
//!
//! * [`fault`] — a declarative [`fault::FaultPlan`]: scheduled worker
//!   crashes, stalls, and adversarial traffic bursts, plus the
//!   watchdog's detection deadline;
//! * [`chaos`] — the [`chaos::ChaosController`] that injects the
//!   faults, schedules each crash's recovery at
//!   `crash + detect_deadline` (via [`sprayer::MiddleboxSim::recover`]),
//!   and yields the [`sprayer::RecoveryReport`] series;
//! * [`telemetry::export_fault_telemetry`] — the matching registry
//!   export (`recovery_*` / `fault_*` metric names).
//!
//! The threaded runtime reuses the same plan shape at phase granularity
//! via [`sprayer::ThreadedMiddlebox::run_elastic`]; this crate focuses on
//! the deterministic simulator, where downtime and migration cost are
//! exactly attributable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod controller;
pub mod fault;
pub mod plan;
pub mod soak;
pub mod telemetry;

pub use chaos::ChaosController;
pub use controller::ElasticController;
pub use fault::{AdversarialProfile, FaultEvent, FaultKind, FaultPlan, FaultPlanError};
pub use plan::{PlanError, ReconfigEvent, ReconfigPlan, Trigger};
pub use soak::{SoakController, SoakPlan, SoakPlanError};
pub use telemetry::{export_fault_telemetry, export_reconfig_telemetry};
