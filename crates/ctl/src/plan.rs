//! Declarative reconfiguration plans.
//!
//! A [`ReconfigPlan`] is an ordered list of epoch transitions. Events
//! fire strictly in list order — event *i+1* is not even considered
//! until event *i* has fired — so a plan reads like a schedule:
//! "after 10 000 packets go to 4 cores, at t=80 ms go back to 2".

use sprayer_sim::Time;

/// When a [`ReconfigEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire once this many packets have been offered to the dataplane.
    AtPacket(u64),
    /// Fire once the dataplane clock reaches this (simulated) time.
    AtTime(Time),
}

/// One scheduled epoch transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// When to fire.
    pub trigger: Trigger,
    /// Active core count to scale to.
    pub target_cores: usize,
}

/// Why a plan was rejected by [`ReconfigPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// An event asked for zero cores.
    ZeroCores {
        /// Index of the offending event.
        index: usize,
    },
    /// Consecutive triggers of the same kind run backwards — the later
    /// event could only fire at the same instant as (or is unreachable
    /// after) the earlier one.
    NonMonotonicTrigger {
        /// Index of the event whose trigger precedes its predecessor's.
        index: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroCores { index } => {
                write!(f, "plan event {index} targets zero cores")
            }
            PlanError::NonMonotonicTrigger { index } => {
                write!(f, "plan event {index} triggers before its predecessor")
            }
        }
    }
}

/// An ordered schedule of elastic transitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReconfigPlan {
    /// The transitions, in firing order.
    pub events: Vec<ReconfigEvent>,
}

impl ReconfigPlan {
    /// An empty plan (a valid no-op).
    pub fn new() -> Self {
        ReconfigPlan::default()
    }

    /// Append a packet-count-triggered transition.
    pub fn at_packet(mut self, packets: u64, target_cores: usize) -> Self {
        self.events.push(ReconfigEvent {
            trigger: Trigger::AtPacket(packets),
            target_cores,
        });
        self
    }

    /// Append a time-triggered transition.
    pub fn at_time(mut self, at: Time, target_cores: usize) -> Self {
        self.events.push(ReconfigEvent {
            trigger: Trigger::AtTime(at),
            target_cores,
        });
        self
    }

    /// Check the schedule is executable: every event targets at least
    /// one core, and consecutive same-kind triggers are nondecreasing
    /// (mixed-kind neighbours are incomparable and accepted — list
    /// order alone sequences them).
    pub fn validate(&self) -> Result<(), PlanError> {
        for (index, ev) in self.events.iter().enumerate() {
            if ev.target_cores == 0 {
                return Err(PlanError::ZeroCores { index });
            }
            if index > 0 {
                let bad = match (self.events[index - 1].trigger, ev.trigger) {
                    (Trigger::AtPacket(a), Trigger::AtPacket(b)) => b < a,
                    (Trigger::AtTime(a), Trigger::AtTime(b)) => b < a,
                    _ => false,
                };
                if bad {
                    return Err(PlanError::NonMonotonicTrigger { index });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order_and_validates() {
        let plan = ReconfigPlan::new()
            .at_packet(1_000, 4)
            .at_time(Time::from_ms(50), 2);
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.events[0].trigger, Trigger::AtPacket(1_000));
        assert_eq!(plan.events[1].target_cores, 2);
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(ReconfigPlan::new().validate(), Ok(()), "empty plan is fine");
    }

    #[test]
    fn zero_cores_is_rejected() {
        let plan = ReconfigPlan::new().at_packet(10, 0);
        assert_eq!(plan.validate(), Err(PlanError::ZeroCores { index: 0 }));
    }

    #[test]
    fn backwards_triggers_are_rejected() {
        let plan = ReconfigPlan::new().at_packet(100, 4).at_packet(50, 2);
        assert_eq!(
            plan.validate(),
            Err(PlanError::NonMonotonicTrigger { index: 1 })
        );
        let plan = ReconfigPlan::new()
            .at_time(Time::from_ms(10), 4)
            .at_time(Time::from_ms(5), 2);
        assert_eq!(
            plan.validate(),
            Err(PlanError::NonMonotonicTrigger { index: 1 })
        );
        // Mixed kinds are sequenced by list order, not compared.
        let plan = ReconfigPlan::new()
            .at_time(Time::from_ms(10), 4)
            .at_packet(1, 2);
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn errors_display_their_index() {
        let e = PlanError::ZeroCores { index: 3 };
        assert!(e.to_string().contains('3'));
        let e = PlanError::NonMonotonicTrigger { index: 1 };
        assert!(e.to_string().contains('1'));
    }
}
