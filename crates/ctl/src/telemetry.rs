//! Registry export of reconfiguration telemetry.
//!
//! Folds a [`ReconfigReport`] series into a
//! [`sprayer_obs::MetricsRegistry`] under stable metric names, so every
//! elastic experiment (and the CI bench gate reading its documents)
//! sees the same shape:
//!
//! * `reconfig_events` — transitions executed;
//! * `reconfig_migrated_flows_total` / `reconfig_migrated_packets_total`
//!   — total migration volume;
//! * `reconfig_downtime_ns_total` / `reconfig_downtime_ns_max` — pause
//!   cost, summed and worst-case;
//! * `reconfig_timeline` — the full per-event array
//!   ([`ReconfigReport::to_json`] objects, in firing order).

//!
//! Fault-injection runs export the matching recovery set via
//! [`export_fault_telemetry`]:
//!
//! * `recovery_events` — unplanned transitions (crash detections);
//! * `recovery_flows_migrated_total` / `recovery_flows_lost_total` —
//!   survivor migration volume and state destroyed with the dead core;
//! * `recovery_downtime_ns_total` / `recovery_downtime_ns_max` — pause
//!   cost of the unplanned transitions;
//! * `fault_detection_latency_ns_max` — worst watchdog latency;
//! * `fault_packets_lost_total` / `fault_malformed_drops_total` — the
//!   blast radius in packets (dead-queue losses, rejected frames);
//! * `recovery_timeline` — the full [`RecoveryReport::to_json`] array.

use sprayer::{DispatchMode, MiddleboxStats, ReconfigReport, RecoveryReport};
use sprayer_obs::MetricsRegistry;

/// Write the standard elastic metric set for `reports` into `reg`,
/// labelled with the dispatch mode that produced them. The label is part
/// of the metric set (not left to the caller) so the three per-mode
/// documents of a three-way figure never collide when they land side by
/// side in `results/`.
pub fn export_reconfig_telemetry(
    reg: &mut MetricsRegistry,
    mode: DispatchMode,
    reports: &[ReconfigReport],
) {
    reg.set_str("reconfig_mode", &mode.to_string().to_ascii_lowercase());
    reg.set_u64("reconfig_events", reports.len() as u64);
    reg.set_u64(
        "reconfig_migrated_flows_total",
        reports.iter().map(|r| r.migrated_flows).sum(),
    );
    reg.set_u64(
        "reconfig_migrated_packets_total",
        reports.iter().map(|r| r.migrated_packets).sum(),
    );
    reg.set_u64(
        "reconfig_downtime_ns_total",
        reports.iter().map(|r| r.downtime_ns).sum(),
    );
    reg.set_u64(
        "reconfig_downtime_ns_max",
        reports.iter().map(|r| r.downtime_ns).max().unwrap_or(0),
    );
    let timeline: Vec<String> = reports.iter().map(ReconfigReport::to_json).collect();
    reg.set_raw_json("reconfig_timeline", format!("[{}]", timeline.join(",")));
}

/// Write the standard fault/recovery metric set into `reg`:
/// `recoveries` are the run's unplanned transitions, `stats` the final
/// dataplane counters the faults left behind. As with
/// [`export_reconfig_telemetry`], the mode label travels inside the
/// metric set so per-mode documents stay distinguishable in `results/`.
pub fn export_fault_telemetry(
    reg: &mut MetricsRegistry,
    mode: DispatchMode,
    recoveries: &[RecoveryReport],
    stats: &MiddleboxStats,
) {
    reg.set_str("recovery_mode", &mode.to_string().to_ascii_lowercase());
    reg.set_u64("recovery_events", recoveries.len() as u64);
    reg.set_u64(
        "recovery_flows_migrated_total",
        recoveries.iter().map(|r| r.migrated_flows).sum(),
    );
    reg.set_u64(
        "recovery_flows_lost_total",
        recoveries.iter().map(|r| r.flows_lost).sum(),
    );
    reg.set_u64(
        "recovery_downtime_ns_total",
        recoveries.iter().map(|r| r.downtime_ns).sum(),
    );
    reg.set_u64(
        "recovery_downtime_ns_max",
        recoveries.iter().map(|r| r.downtime_ns).max().unwrap_or(0),
    );
    reg.set_u64(
        "fault_detection_latency_ns_max",
        recoveries
            .iter()
            .map(|r| r.detection_latency_ns)
            .max()
            .unwrap_or(0),
    );
    reg.set_u64("fault_packets_lost_total", stats.lost_packets);
    reg.set_u64("fault_malformed_drops_total", stats.malformed_drops);
    let timeline: Vec<String> = recoveries.iter().map(RecoveryReport::to_json).collect();
    reg.set_raw_json("recovery_timeline", format!("[{}]", timeline.join(",")));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::DispatchMode;

    fn report(epoch: u64, migrated: u64, downtime: u64) -> ReconfigReport {
        ReconfigReport {
            epoch,
            mode: DispatchMode::Sprayer,
            from_cores: 2,
            to_cores: 4,
            migrated_flows: migrated,
            retained_flows: 10,
            migrated_packets: migrated / 2,
            downtime_ns: downtime,
            at_ns: epoch * 1_000,
        }
    }

    #[test]
    fn export_totals_and_timeline_parse_back() {
        let mut reg = MetricsRegistry::new();
        export_reconfig_telemetry(
            &mut reg,
            DispatchMode::Sprayer,
            &[report(1, 4, 100), report(2, 6, 250)],
        );
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(
            doc.get("reconfig_mode").unwrap().as_str(),
            Some("sprayer"),
            "the mode label must travel inside the metric set"
        );
        assert_eq!(doc.get("reconfig_events").unwrap().as_u64(), Some(2));
        assert_eq!(
            doc.get("reconfig_migrated_flows_total").unwrap().as_u64(),
            Some(10)
        );
        assert_eq!(
            doc.get("reconfig_downtime_ns_total").unwrap().as_u64(),
            Some(350)
        );
        assert_eq!(
            doc.get("reconfig_downtime_ns_max").unwrap().as_u64(),
            Some(250)
        );
        let timeline = doc.get("reconfig_timeline").unwrap().as_array().unwrap();
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[1].get("epoch").unwrap().as_u64(), Some(2));
        assert_eq!(timeline[0].get("migrated_flows").unwrap().as_u64(), Some(4));
    }

    fn recovery(migrated: u64, lost: u64, latency: u64) -> RecoveryReport {
        RecoveryReport {
            epoch: 1,
            mode: DispatchMode::Sprayer,
            failed_core: 2,
            from_active: 4,
            to_active: 3,
            migrated_flows: migrated,
            retained_flows: 20,
            flows_lost: lost,
            packets_lost: 7,
            detection_latency_ns: latency,
            downtime_ns: 400,
            at_ns: 9_000,
        }
    }

    #[test]
    fn fault_export_totals_and_timeline_parse_back() {
        let mut reg = MetricsRegistry::new();
        let stats = MiddleboxStats {
            lost_packets: 11,
            malformed_drops: 5,
            ..Default::default()
        };
        export_fault_telemetry(
            &mut reg,
            DispatchMode::Scr,
            &[recovery(0, 6, 25_000), recovery(3, 2, 40_000)],
            &stats,
        );
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("recovery_mode").unwrap().as_str(), Some("scr"));
        assert_eq!(doc.get("recovery_events").unwrap().as_u64(), Some(2));
        assert_eq!(
            doc.get("recovery_flows_migrated_total").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            doc.get("recovery_flows_lost_total").unwrap().as_u64(),
            Some(8)
        );
        assert_eq!(
            doc.get("recovery_downtime_ns_total").unwrap().as_u64(),
            Some(800)
        );
        assert_eq!(
            doc.get("fault_detection_latency_ns_max").unwrap().as_u64(),
            Some(40_000)
        );
        assert_eq!(
            doc.get("fault_packets_lost_total").unwrap().as_u64(),
            Some(11)
        );
        assert_eq!(
            doc.get("fault_malformed_drops_total").unwrap().as_u64(),
            Some(5)
        );
        let timeline = doc.get("recovery_timeline").unwrap().as_array().unwrap();
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].get("flows_lost").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn empty_series_exports_zeros() {
        let mut reg = MetricsRegistry::new();
        export_reconfig_telemetry(&mut reg, DispatchMode::Rss, &[]);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("reconfig_events").unwrap().as_u64(), Some(0));
        assert_eq!(
            doc.get("reconfig_downtime_ns_max").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            doc.get("reconfig_timeline")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }
}
