//! Registry export of reconfiguration telemetry.
//!
//! Folds a [`ReconfigReport`] series into a
//! [`sprayer_obs::MetricsRegistry`] under stable metric names, so every
//! elastic experiment (and the CI bench gate reading its documents)
//! sees the same shape:
//!
//! * `reconfig_events` — transitions executed;
//! * `reconfig_migrated_flows_total` / `reconfig_migrated_packets_total`
//!   — total migration volume;
//! * `reconfig_downtime_ns_total` / `reconfig_downtime_ns_max` — pause
//!   cost, summed and worst-case;
//! * `reconfig_timeline` — the full per-event array
//!   ([`ReconfigReport::to_json`] objects, in firing order).

use sprayer::ReconfigReport;
use sprayer_obs::MetricsRegistry;

/// Write the standard elastic metric set for `reports` into `reg`.
pub fn export_reconfig_telemetry(reg: &mut MetricsRegistry, reports: &[ReconfigReport]) {
    reg.set_u64("reconfig_events", reports.len() as u64);
    reg.set_u64(
        "reconfig_migrated_flows_total",
        reports.iter().map(|r| r.migrated_flows).sum(),
    );
    reg.set_u64(
        "reconfig_migrated_packets_total",
        reports.iter().map(|r| r.migrated_packets).sum(),
    );
    reg.set_u64(
        "reconfig_downtime_ns_total",
        reports.iter().map(|r| r.downtime_ns).sum(),
    );
    reg.set_u64(
        "reconfig_downtime_ns_max",
        reports.iter().map(|r| r.downtime_ns).max().unwrap_or(0),
    );
    let timeline: Vec<String> = reports.iter().map(ReconfigReport::to_json).collect();
    reg.set_raw_json("reconfig_timeline", format!("[{}]", timeline.join(",")));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::DispatchMode;

    fn report(epoch: u64, migrated: u64, downtime: u64) -> ReconfigReport {
        ReconfigReport {
            epoch,
            mode: DispatchMode::Sprayer,
            from_cores: 2,
            to_cores: 4,
            migrated_flows: migrated,
            retained_flows: 10,
            migrated_packets: migrated / 2,
            downtime_ns: downtime,
            at_ns: epoch * 1_000,
        }
    }

    #[test]
    fn export_totals_and_timeline_parse_back() {
        let mut reg = MetricsRegistry::new();
        export_reconfig_telemetry(&mut reg, &[report(1, 4, 100), report(2, 6, 250)]);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("reconfig_events").unwrap().as_u64(), Some(2));
        assert_eq!(
            doc.get("reconfig_migrated_flows_total").unwrap().as_u64(),
            Some(10)
        );
        assert_eq!(
            doc.get("reconfig_downtime_ns_total").unwrap().as_u64(),
            Some(350)
        );
        assert_eq!(
            doc.get("reconfig_downtime_ns_max").unwrap().as_u64(),
            Some(250)
        );
        let timeline = doc.get("reconfig_timeline").unwrap().as_array().unwrap();
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[1].get("epoch").unwrap().as_u64(), Some(2));
        assert_eq!(timeline[0].get("migrated_flows").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn empty_series_exports_zeros() {
        let mut reg = MetricsRegistry::new();
        export_reconfig_telemetry(&mut reg, &[]);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("reconfig_events").unwrap().as_u64(), Some(0));
        assert_eq!(
            doc.get("reconfig_downtime_ns_max").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            doc.get("reconfig_timeline")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }
}
