//! Declarative fault-injection plans.
//!
//! A [`FaultPlan`] is to failures what [`crate::ReconfigPlan`] is to
//! elasticity: an ordered schedule of bad things — worker crashes,
//! stalls, and adversarial traffic bursts — each fired by a
//! packet-count or time trigger. The same plan shape drives both
//! runtimes: the [`crate::ChaosController`] executes it against the
//! deterministic [`sprayer::MiddleboxSim`], while
//! [`FaultPlan::threaded_fault`] projects the first crash/stall onto
//! the thread runtime's [`sprayer::runtime_threads::ThreadedFault`].
//!
//! Crashes come paired with a **detection deadline**: the plan models a
//! watchdog that notices the dead core only after
//! [`FaultPlan::detect_deadline`] has elapsed, so recovery fires that
//! much later and every packet the NIC steered at the corpse in between
//! is honestly lost (the detection-latency cost the experiment
//! measures).

use crate::plan::Trigger;
use sprayer::runtime_threads::ThreadedFault;
use sprayer_sim::Time;

/// The adversarial traffic families an attacker can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialProfile {
    /// Frames cut off inside their headers — must be dropped as
    /// malformed at the NIC, never crash a parser.
    TruncatedFrames,
    /// IPv4-ethertype frames with garbage headers (bad version nibble).
    GarbageHeaders,
    /// Fully valid TCP packets engineered so every checksum equals
    /// `target` — defeats checksum-bit spraying by collapsing the
    /// spray onto one queue.
    LowEntropyChecksum {
        /// The TCP checksum every crafted packet carries.
        target: u16,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill a worker core dead: in-flight and queued packets are lost,
    /// and the NIC keeps steering at the corpse until recovery.
    CrashCore {
        /// The core to kill.
        core: usize,
    },
    /// Wedge a core for a while; its queues back up but it comes back.
    StallCore {
        /// The core to wedge.
        core: usize,
        /// How long it stays wedged.
        duration: Time,
    },
    /// Inject a burst of adversarial traffic.
    Adversarial {
        /// What to inject.
        profile: AdversarialProfile,
        /// How many frames/packets.
        count: u32,
    },
}

/// A fault bound to its trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When to fire.
    pub trigger: Trigger,
    /// What happens.
    pub kind: FaultKind,
}

/// Why a fault plan was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// An adversarial event injects zero packets.
    EmptyBurst {
        /// Index of the offending event.
        index: usize,
    },
    /// A stall with zero duration is a no-op masquerading as a fault.
    ZeroStall {
        /// Index of the offending event.
        index: usize,
    },
    /// Consecutive triggers of the same kind run backwards.
    NonMonotonicTrigger {
        /// Index of the event whose trigger precedes its predecessor's.
        index: usize,
    },
    /// The detection deadline is zero — instant detection would hide
    /// the cost the experiment exists to measure.
    ZeroDeadline,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::EmptyBurst { index } => {
                write!(f, "fault event {index} injects an empty burst")
            }
            FaultPlanError::ZeroStall { index } => {
                write!(f, "fault event {index} stalls for zero time")
            }
            FaultPlanError::NonMonotonicTrigger { index } => {
                write!(f, "fault event {index} triggers before its predecessor")
            }
            FaultPlanError::ZeroDeadline => {
                write!(f, "detection deadline must be nonzero")
            }
        }
    }
}

/// An ordered schedule of faults plus the watchdog's detection deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in firing order.
    pub events: Vec<FaultEvent>,
    /// How long after a crash the watchdog notices and recovery starts.
    pub detect_deadline: Time,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan with the default 100 µs detection deadline.
    pub fn new() -> Self {
        FaultPlan {
            events: Vec::new(),
            detect_deadline: Time::from_us(100),
        }
    }

    /// Set the watchdog detection deadline.
    pub fn detect_within(mut self, deadline: Time) -> Self {
        self.detect_deadline = deadline;
        self
    }

    /// Append a crash after `packets` offered packets.
    pub fn crash_at_packet(mut self, packets: u64, core: usize) -> Self {
        self.events.push(FaultEvent {
            trigger: Trigger::AtPacket(packets),
            kind: FaultKind::CrashCore { core },
        });
        self
    }

    /// Append a crash at simulated time `at`.
    pub fn crash_at_time(mut self, at: Time, core: usize) -> Self {
        self.events.push(FaultEvent {
            trigger: Trigger::AtTime(at),
            kind: FaultKind::CrashCore { core },
        });
        self
    }

    /// Append a stall after `packets` offered packets.
    pub fn stall_at_packet(mut self, packets: u64, core: usize, duration: Time) -> Self {
        self.events.push(FaultEvent {
            trigger: Trigger::AtPacket(packets),
            kind: FaultKind::StallCore { core, duration },
        });
        self
    }

    /// Append a stall at simulated time `at`.
    pub fn stall_at_time(mut self, at: Time, core: usize, duration: Time) -> Self {
        self.events.push(FaultEvent {
            trigger: Trigger::AtTime(at),
            kind: FaultKind::StallCore { core, duration },
        });
        self
    }

    /// Append an adversarial burst after `packets` offered packets.
    pub fn adversarial_at_packet(
        mut self,
        packets: u64,
        profile: AdversarialProfile,
        count: u32,
    ) -> Self {
        self.events.push(FaultEvent {
            trigger: Trigger::AtPacket(packets),
            kind: FaultKind::Adversarial { profile, count },
        });
        self
    }

    /// Append an adversarial burst at simulated time `at`.
    pub fn adversarial_at_time(
        mut self,
        at: Time,
        profile: AdversarialProfile,
        count: u32,
    ) -> Self {
        self.events.push(FaultEvent {
            trigger: Trigger::AtTime(at),
            kind: FaultKind::Adversarial { profile, count },
        });
        self
    }

    /// Check the schedule is executable.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if self.detect_deadline == Time::ZERO {
            return Err(FaultPlanError::ZeroDeadline);
        }
        for (index, ev) in self.events.iter().enumerate() {
            match ev.kind {
                FaultKind::Adversarial { count: 0, .. } => {
                    return Err(FaultPlanError::EmptyBurst { index });
                }
                FaultKind::StallCore {
                    duration: Time::ZERO,
                    ..
                } => {
                    return Err(FaultPlanError::ZeroStall { index });
                }
                _ => {}
            }
            if index > 0 {
                let bad = match (self.events[index - 1].trigger, ev.trigger) {
                    (Trigger::AtPacket(a), Trigger::AtPacket(b)) => b < a,
                    (Trigger::AtTime(a), Trigger::AtTime(b)) => b < a,
                    _ => false,
                };
                if bad {
                    return Err(FaultPlanError::NonMonotonicTrigger { index });
                }
            }
        }
        Ok(())
    }

    /// Project the first packet-triggered crash or stall onto the thread
    /// runtime's fault hook ([`sprayer::runtime_threads::ThreadedConfig`]
    /// `fault` field). The threaded runtime counts *processed* packets
    /// per worker rather than offered packets globally, so the trigger
    /// count is divided across workers by the caller's convention —
    /// here it is passed through as-is, which fires no later than the
    /// simulator's trigger would. Time triggers and adversarial events
    /// have no threaded projection and are skipped.
    pub fn threaded_fault(&self) -> Option<ThreadedFault> {
        self.events
            .iter()
            .find_map(|ev| match (ev.trigger, ev.kind) {
                (Trigger::AtPacket(n), FaultKind::CrashCore { core }) => {
                    Some(ThreadedFault::Panic { core, after: n })
                }
                (Trigger::AtPacket(n), FaultKind::StallCore { core, duration }) => {
                    Some(ThreadedFault::Stall {
                        core,
                        after: n,
                        duration_ns: duration.as_ps() / 1_000,
                    })
                }
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order_and_validates() {
        let plan = FaultPlan::new()
            .adversarial_at_packet(100, AdversarialProfile::TruncatedFrames, 32)
            .crash_at_packet(500, 1)
            .detect_within(Time::from_us(50));
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.detect_deadline, Time::from_us(50));
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(FaultPlan::new().validate(), Ok(()), "empty plan is fine");
    }

    #[test]
    fn degenerate_faults_are_rejected() {
        let plan =
            FaultPlan::new().adversarial_at_packet(10, AdversarialProfile::TruncatedFrames, 0);
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::EmptyBurst { index: 0 })
        );
        let plan = FaultPlan::new().stall_at_packet(10, 0, Time::ZERO);
        assert_eq!(plan.validate(), Err(FaultPlanError::ZeroStall { index: 0 }));
        let plan = FaultPlan::new().detect_within(Time::ZERO);
        assert_eq!(plan.validate(), Err(FaultPlanError::ZeroDeadline));
    }

    #[test]
    fn backwards_triggers_are_rejected() {
        let plan = FaultPlan::new()
            .crash_at_packet(100, 1)
            .crash_at_packet(50, 2);
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::NonMonotonicTrigger { index: 1 })
        );
        // Mixed kinds are sequenced by list order, not compared.
        let plan = FaultPlan::new()
            .crash_at_time(Time::from_ms(10), 1)
            .crash_at_packet(1, 2);
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn threaded_projection_takes_the_first_crash_or_stall() {
        let plan = FaultPlan::new()
            .adversarial_at_packet(10, AdversarialProfile::TruncatedFrames, 4)
            .crash_at_packet(200, 1);
        assert_eq!(
            plan.threaded_fault(),
            Some(ThreadedFault::Panic {
                core: 1,
                after: 200
            })
        );
        let plan = FaultPlan::new().stall_at_packet(64, 0, Time::from_us(400));
        assert_eq!(
            plan.threaded_fault(),
            Some(ThreadedFault::Stall {
                core: 0,
                after: 64,
                duration_ns: 400_000,
            })
        );
        // Time triggers have no threaded projection.
        let plan = FaultPlan::new().crash_at_time(Time::from_ms(1), 0);
        assert_eq!(plan.threaded_fault(), None);
    }

    #[test]
    fn errors_display_their_index() {
        assert!(FaultPlanError::EmptyBurst { index: 3 }
            .to_string()
            .contains('3'));
        assert!(FaultPlanError::ZeroStall { index: 2 }
            .to_string()
            .contains('2'));
        assert!(FaultPlanError::NonMonotonicTrigger { index: 1 }
            .to_string()
            .contains('1'));
        assert!(!FaultPlanError::ZeroDeadline.to_string().is_empty());
    }
}
