//! Property-based tests for the TCP endpoints: protocol invariants that
//! must hold under arbitrary (even adversarial) ACK sequences and
//! arbitrary delivery orders.

use proptest::prelude::*;
use sprayer_sim::Time;
use sprayer_tcp::{AckInfo, Cubic, Receiver, Sender, SenderConfig};

proptest! {
    /// The receiver delivers exactly the bytes below rcv_nxt, regardless
    /// of arrival order or duplication; rcv_nxt is monotone.
    #[test]
    fn receiver_delivery_invariants(
        segs in proptest::collection::vec(0u64..64, 1..200),
    ) {
        const MSS: u64 = 1460;
        let mut r = Receiver::new(0);
        let mut prev_nxt = 0;
        let mut arrived = std::collections::HashSet::new();
        for s in segs {
            r.on_segment(s * MSS, MSS);
            arrived.insert(s);
            prop_assert!(r.rcv_nxt() >= prev_nxt, "rcv_nxt must be monotone");
            prev_nxt = r.rcv_nxt();
            // rcv_nxt advances to the first missing segment.
            let expect = (0..).find(|i| !arrived.contains(i)).unwrap() * MSS;
            prop_assert_eq!(r.rcv_nxt(), expect);
            prop_assert_eq!(r.delivered(), expect);
        }
    }

    /// The sender survives arbitrary ACK streams without panicking, and
    /// core invariants hold throughout: delivered (snd_una) is monotone,
    /// pipe <= flight, and a bounded transfer never over-delivers.
    #[test]
    fn sender_survives_arbitrary_acks(
        acks in proptest::collection::vec(
            (0u64..20, proptest::option::of((0u64..20, 1u64..20)), any::<bool>()),
            1..100,
        ),
    ) {
        const MSS: u64 = 1460;
        let total = 12 * MSS;
        let cfg = SenderConfig { total_bytes: Some(total), ..SenderConfig::default() };
        let cc = Box::new(Cubic::new(cfg.mss, cfg.init_cwnd_segments));
        let mut s = Sender::new(cfg, cc);

        let mut now = Time::ZERO;
        let mut prev_delivered = 0;
        for (ack_seg, sack, fire_timer) in acks {
            // Keep transmitting whatever the window allows.
            while s.poll_segment(now).is_some() {}
            let info = AckInfo {
                ack: ack_seg * MSS,
                sack: sack.map(|(st, len)| (st * MSS, (st + len) * MSS)),
                dsack: None,
            };
            s.on_ack(now, info);
            if fire_timer {
                if let Some(d) = s.timer_deadline() {
                    now = now.max(d);
                    s.on_timer(now);
                }
            }
            now += Time::from_us(50);

            prop_assert!(s.delivered() >= prev_delivered, "snd_una monotone");
            prev_delivered = s.delivered();
            prop_assert!(s.delivered() <= total, "never past the transfer size");
            prop_assert!(s.pipe() <= s.flight_size(), "pipe excludes only sacked bytes");
        }
    }

    /// End-to-end over a randomly reordering in-memory pipe: every byte
    /// is eventually delivered exactly once to the application, for any
    /// permutation pattern.
    #[test]
    fn transfer_completes_under_arbitrary_reordering(
        swaps in proptest::collection::vec((0usize..16, 0usize..16), 0..64),
        seed in any::<u64>(),
    ) {
        const MSS: u64 = 1460;
        let _ = seed;
        let total = 40 * MSS;
        let cfg = SenderConfig { total_bytes: Some(total), ..SenderConfig::default() };
        let cc = Box::new(Cubic::new(cfg.mss, cfg.init_cwnd_segments));
        let mut s = Sender::new(cfg, cc);
        let mut r = Receiver::new(0);

        let mut now = Time::ZERO;
        let mut steps = 0;
        while !s.finished() && steps < 10_000 {
            steps += 1;
            // Collect a burst, apply arbitrary swaps (reordering), deliver.
            let mut burst = Vec::new();
            while let Some(seg) = s.poll_segment(now) {
                burst.push(seg);
                now += Time::from_us(2);
            }
            for &(a, b) in &swaps {
                if a < burst.len() && b < burst.len() {
                    burst.swap(a, b);
                }
            }
            let mut acks = Vec::new();
            for seg in burst {
                now += Time::from_us(2);
                if let sprayer_tcp::AckAction::Immediate(info) = r.on_segment(seg.seq, u64::from(seg.len)) {
                    acks.push(info);
                }
            }
            if let Some(ack) = r.flush_delayed() {
                acks.push(AckInfo { ack, sack: None, dsack: None });
            }
            for info in acks {
                now += Time::from_us(2);
                s.on_ack(now, info);
            }
            if !s.finished() {
                if let Some(d) = s.timer_deadline() {
                    if acks_empty_heuristic(&s) {
                        now = now.max(d);
                        s.on_timer(now);
                    }
                }
            }
            now += Time::from_us(10);
        }
        prop_assert!(s.finished(), "transfer must complete under any reordering");
        prop_assert_eq!(r.delivered(), total, "application sees every byte exactly once");
    }
}

/// Fire timers only when the sender appears stalled (has flight).
fn acks_empty_heuristic(s: &Sender) -> bool {
    s.flight_size() > 0
}
