//! End-to-end transfers over a simulated pipe: sender → (delay, loss,
//! reordering) → receiver → (delay) → sender.
//!
//! These tests exercise the full protocol loop the Fig. 6(b)/7(b)
//! experiments rely on, in isolation from the middlebox model.

use sprayer_sim::{Model, Scheduler, SimRng, Simulation, Time};
use sprayer_tcp::{AckAction, AckInfo, Cubic, Receiver, Reno, Sender, SenderConfig};

const MSS: u32 = 1460;

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Sender may transmit (poll it).
    SenderPoll,
    /// A data segment reaches the receiver.
    Deliver { seq: u64, len: u32 },
    /// An ACK reaches the sender.
    Ack { info: AckInfo },
    /// Retransmission timer check.
    RtoCheck,
}

struct Pipe {
    sender: Sender,
    receiver: Receiver,
    /// One-way propagation delay.
    delay: Time,
    /// Extra per-segment jitter bound (uniform, models reordering).
    jitter: Time,
    /// Probability a data segment is dropped.
    loss: f64,
    /// Serialization time of one full segment on the link (1500 B at
    /// 10 GbE ≈ 1.2 µs); spaces out window bursts like a real NIC.
    seg_time: Time,
    /// Link busy-until time.
    tx_free: Time,
    rng: SimRng,
    finished_at: Option<Time>,
}

impl Pipe {
    fn new(total: u64, delay: Time, jitter: Time, loss: f64, cubic: bool, seed: u64) -> Self {
        let cfg = SenderConfig {
            total_bytes: Some(total),
            ..SenderConfig::default()
        };
        let cc: Box<dyn sprayer_tcp::CongestionControl> = if cubic {
            Box::new(Cubic::new(cfg.mss, cfg.init_cwnd_segments))
        } else {
            Box::new(Reno::new(cfg.mss, cfg.init_cwnd_segments))
        };
        Pipe {
            sender: Sender::new(cfg, cc),
            receiver: Receiver::new(0),
            delay,
            jitter,
            loss,
            seg_time: Time::from_ns(1200),
            tx_free: Time::ZERO,
            rng: SimRng::seed_from(seed),
            finished_at: None,
        }
    }

    fn pump_sender(&mut self, now: Time, sched: &mut Scheduler<Ev>) {
        while let Some(seg) = self.sender.poll_segment(now) {
            // Serialize onto the link: bursts leave back-to-back, not
            // simultaneously.
            let depart = self.tx_free.max(now);
            self.tx_free = depart + self.seg_time;
            if !self.rng.chance(self.loss) {
                let jitter = if self.jitter == Time::ZERO {
                    Time::ZERO
                } else {
                    Time(self.rng.below(self.jitter.0))
                };
                let arrival = depart + self.delay + jitter;
                sched.at(
                    arrival.max(now),
                    Ev::Deliver {
                        seq: seg.seq,
                        len: seg.len,
                    },
                );
            }
        }
        if let Some(deadline) = self.sender.rto_deadline() {
            sched.at(deadline.max(now), Ev::RtoCheck);
        }
    }
}

impl Model for Pipe {
    type Event = Ev;

    fn handle(&mut self, now: Time, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::SenderPoll => self.pump_sender(now, sched),
            Ev::Deliver { seq, len } => {
                match self.receiver.on_segment(seq, u64::from(len)) {
                    AckAction::Immediate(info) => {
                        sched.after(self.delay, Ev::Ack { info });
                    }
                    AckAction::Delayed => {
                        // Model the 40 ms delayed-ACK timer compressed to
                        // one segment-time; bulk flows rarely hit it.
                        if let Some(ack) = self.receiver.flush_delayed() {
                            sched.after(
                                self.delay + Time::from_us(5),
                                Ev::Ack {
                                    info: AckInfo {
                                        ack,
                                        sack: None,
                                        dsack: None,
                                    },
                                },
                            );
                        }
                    }
                    AckAction::None => {}
                }
            }
            Ev::Ack { info } => {
                self.sender.on_ack(now, info);
                if self.sender.finished() {
                    self.finished_at.get_or_insert(now);
                    sched.stop();
                    return;
                }
                self.pump_sender(now, sched);
            }
            Ev::RtoCheck => {
                if let Some(deadline) = self.sender.rto_deadline() {
                    if now >= deadline {
                        self.sender.on_rto(now);
                    }
                    self.pump_sender(now, sched);
                    if let Some(next) = self.sender.rto_deadline() {
                        sched.at(next.max(now), Ev::RtoCheck);
                    }
                }
            }
        }
    }
}

fn run(pipe: Pipe, horizon: Time) -> Pipe {
    let mut sim = Simulation::new(pipe);
    sim.schedule(Time::ZERO, Ev::SenderPoll);
    sim.run_until(horizon);
    sim.into_model()
}

#[test]
fn clean_path_transfers_everything_without_retransmits() {
    let total = 2_000 * u64::from(MSS);
    let pipe = run(
        Pipe::new(total, Time::from_us(50), Time::ZERO, 0.0, true, 1),
        Time::from_secs(10),
    );
    assert!(pipe.finished_at.is_some(), "transfer must complete");
    assert_eq!(pipe.sender.delivered(), total);
    assert_eq!(pipe.receiver.delivered(), total);
    assert_eq!(pipe.sender.stats().retransmits, 0);
    assert_eq!(pipe.receiver.dup_acks_sent(), 0);
}

#[test]
fn lossy_path_still_completes() {
    let total = 500 * u64::from(MSS);
    let pipe = run(
        Pipe::new(total, Time::from_us(50), Time::ZERO, 0.02, true, 7),
        Time::from_secs(120),
    );
    assert!(pipe.finished_at.is_some(), "transfer must survive 2% loss");
    assert_eq!(pipe.receiver.delivered(), total);
    assert!(pipe.sender.stats().retransmits > 0);
}

#[test]
fn reordering_causes_dup_acks_and_can_cause_spurious_retransmits() {
    let total = 2_000 * u64::from(MSS);
    // Jitter of several segment times with zero loss: any retransmission
    // is spurious, caused purely by reordering.
    let pipe = run(
        Pipe::new(total, Time::from_us(50), Time::from_us(200), 0.0, true, 3),
        Time::from_secs(30),
    );
    assert!(pipe.finished_at.is_some());
    assert_eq!(
        pipe.receiver.delivered(),
        total,
        "no bytes may be lost to reordering"
    );
    assert!(
        pipe.receiver.ooo_arrivals() > 0,
        "jitter must reorder something"
    );
    assert!(pipe.receiver.dup_acks_sent() > 0);
}

#[test]
fn mild_reordering_is_absorbed_without_retransmission() {
    let total = 1_000 * u64::from(MSS);
    // Jitter far below one segment spacing: dup-ack bursts stay below 3.
    let pipe = run(
        Pipe::new(total, Time::from_us(50), Time::from_ns(500), 0.0, true, 9),
        Time::from_secs(30),
    );
    assert!(pipe.finished_at.is_some());
    assert_eq!(
        pipe.sender.stats().fast_retransmits,
        0,
        "sub-threshold reordering must not trigger fast retransmit"
    );
}

#[test]
fn reno_transfers_too() {
    let total = 500 * u64::from(MSS);
    let pipe = run(
        Pipe::new(total, Time::from_us(50), Time::ZERO, 0.01, false, 11),
        Time::from_secs(120),
    );
    assert!(pipe.finished_at.is_some());
    assert_eq!(pipe.receiver.delivered(), total);
}

#[test]
fn conservation_bytes_delivered_never_exceed_bytes_sent() {
    for seed in 0..10 {
        let total = 300 * u64::from(MSS);
        let pipe = run(
            Pipe::new(
                total,
                Time::from_us(20),
                Time::from_us(100),
                0.05,
                true,
                seed,
            ),
            Time::from_secs(120),
        );
        let sent_bytes = pipe.sender.stats().segments_sent * u64::from(MSS);
        assert!(
            pipe.receiver.delivered() <= sent_bytes,
            "seed {seed}: delivered {} > sent {}",
            pipe.receiver.delivered(),
            sent_bytes
        );
        assert!(pipe.finished_at.is_some(), "seed {seed} did not finish");
    }
}

#[test]
fn higher_loss_lowers_throughput() {
    let total = 1_000 * u64::from(MSS);
    let t_clean = run(
        Pipe::new(total, Time::from_us(50), Time::ZERO, 0.0, true, 5),
        Time::from_secs(120),
    )
    .finished_at
    .unwrap();
    let t_lossy = run(
        Pipe::new(total, Time::from_us(50), Time::ZERO, 0.03, true, 5),
        Time::from_secs(120),
    )
    .finished_at
    .unwrap();
    assert!(
        t_lossy > t_clean,
        "loss must slow the transfer: clean {t_clean}, lossy {t_lossy}"
    );
}
