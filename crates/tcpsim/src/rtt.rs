//! RFC 6298 round-trip-time estimation.

use sprayer_sim::Time;

/// Smoothed RTT estimator with RTO computation.
///
/// `RTO = SRTT + max(G, 4·RTTVAR)` clamped to `[min_rto, max_rto]`, with
/// the standard first-sample initialization and exponential backoff on
/// timeouts (managed by the sender).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Time>,
    rttvar: Time,
    min_rto: Time,
    max_rto: Time,
    /// Clock granularity G; sub-microsecond in simulation.
    granularity: Time,
}

impl RttEstimator {
    /// An estimator with Linux-like clamps: RTO in `[min_rto, 60 s]`.
    ///
    /// Linux uses a 200 ms minimum RTO; with the paper's ~10 µs RTTs the
    /// RTO then only fires on catastrophic loss, which is the realistic
    /// behaviour and the default here.
    pub fn new(min_rto: Time) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Time::ZERO,
            min_rto,
            max_rto: Time::from_secs(60),
            granularity: Time::from_us(1),
        }
    }

    /// Linux default: 200 ms minimum RTO.
    pub fn linux_default() -> Self {
        Self::new(Time::from_ms(200))
    }

    /// Feed one RTT sample (from a never-retransmitted segment — Karn).
    pub fn sample(&mut self, rtt: Time) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Time(rtt.0 / 2);
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = Time((3 * self.rttvar.0 + err.0) / 4);
                // SRTT = 7/8 SRTT + 1/8 R'
                self.srtt = Some(Time((7 * srtt.0 + rtt.0) / 8));
            }
        }
    }

    /// Current smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<Time> {
        self.srtt
    }

    /// Current retransmission timeout (before backoff).
    pub fn rto(&self) -> Time {
        let base = match self.srtt {
            None => Time::from_secs(1), // RFC 6298 initial RTO
            Some(srtt) => {
                let var = Time(self.rttvar.0.max(self.granularity.0 / 4) * 4);
                srtt + var
            }
        };
        Time(base.0.clamp(self.min_rto.0, self.max_rto.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let est = RttEstimator::new(Time::from_ms(1));
        assert_eq!(est.rto(), Time::from_secs(1));
        assert_eq!(est.srtt(), None);
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut est = RttEstimator::new(Time::from_us(1));
        est.sample(Time::from_us(100));
        assert_eq!(est.srtt(), Some(Time::from_us(100)));
        // RTO = 100us + 4 * 50us = 300us.
        assert_eq!(est.rto(), Time::from_us(300));
    }

    #[test]
    fn steady_samples_converge() {
        let mut est = RttEstimator::new(Time::from_us(1));
        for _ in 0..100 {
            est.sample(Time::from_us(50));
        }
        let srtt = est.srtt().unwrap();
        assert!((srtt.as_us_f64() - 50.0).abs() < 1.0, "srtt {srtt}");
        // Variance decays toward zero; RTO approaches srtt + 4*G/4.
        assert!(est.rto() < Time::from_us(60));
    }

    #[test]
    fn min_rto_clamp_applies() {
        let mut est = RttEstimator::linux_default();
        for _ in 0..50 {
            est.sample(Time::from_us(10));
        }
        assert_eq!(
            est.rto(),
            Time::from_ms(200),
            "Linux min RTO clamps tiny RTTs"
        );
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut stable = RttEstimator::new(Time::from_us(1));
        let mut jittery = RttEstimator::new(Time::from_us(1));
        for i in 0..100 {
            stable.sample(Time::from_us(100));
            jittery.sample(Time::from_us(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(jittery.rto() > stable.rto());
    }
}
