//! The sending endpoint: window-limited bulk transfer with RACK-style
//! loss detection over a SACK scoreboard and a pluggable congestion
//! controller.
//!
//! The paper runs "the standard Linux TCP implementation (CUBIC),
//! without any kind of tuning" (§5). On the testbed's kernel (Linux 4.9)
//! that stack detects loss with **RACK** (time-based: a segment is lost
//! when a segment sent *later* has been delivered and more than a
//! reordering window has passed), recovers holes using **SACK**
//! information, rescues silent tails with **TLP probes**, and uses
//! **DSACKs** both to undo spurious window reductions and to widen the
//! reordering window. This combination is exactly what makes moderate
//! packet reordering — Sprayer's cost — survivable, so the sender here
//! implements all four mechanisms:
//!
//! * SACK scoreboard + RFC 6675-style `pipe` accounting (no NewReno
//!   dup-ACK window inflation, which runs away under reordering);
//! * RACK loss marking with an adaptive reordering window
//!   (`reo_wnd = k·SRTT/4`, `k` grows on DSACK evidence, like Linux's
//!   dynamic RACK reo_wnd);
//! * tail-loss probes at ~2×SRTT of *cumulative-ACK* silence;
//! * DSACK undo of spurious congestion-window reductions.

use crate::congestion::CongestionControl;
use crate::receiver::AckInfo;
use crate::rtt::RttEstimator;
use sprayer_sim::Time;
use std::collections::{BTreeMap, VecDeque};

/// A data segment the sender wants delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First byte's sequence number.
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Whether this is a retransmission.
    pub is_retransmit: bool,
}

/// Sender parameters.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Maximum segment size in bytes (1460 for Ethernet IPv4).
    pub mss: u32,
    /// Initial window in segments (RFC 6928: 10).
    pub init_cwnd_segments: u32,
    /// Total bytes to transfer, or `None` for an unbounded (iperf-style
    /// time-limited) transfer.
    pub total_bytes: Option<u64>,
    /// Minimum retransmission timeout (Linux: 200 ms).
    pub min_rto: Time,
    /// Send-window clamp in bytes: the peer's receive window / socket
    /// buffer bound (Linux tcp_wmem-style autotuning cap). Keeps the
    /// window finite on loss-free paths.
    pub max_window_bytes: u64,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            mss: 1460,
            init_cwnd_segments: 10,
            total_bytes: None,
            min_rto: Time::from_ms(200),
            max_window_bytes: 2 * 1024 * 1024,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct InflightInfo {
    len: u32,
    send_time: Time,
    retransmitted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecoveryKind {
    /// Entered via RACK loss detection.
    Fast,
    /// Entered via retransmission timeout.
    Rto,
}

/// Loss-recovery and transfer statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    /// Segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast-recovery episodes (RACK-detected loss).
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// Tail-loss probes fired.
    pub probes: u64,
    /// Recoveries undone after DSACK evidence (spurious, reordering).
    pub spurious_recoveries: u64,
}

/// A bulk-transfer TCP sender.
#[derive(Debug)]
pub struct Sender {
    cfg: SenderConfig,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next new byte to transmit.
    snd_nxt: u64,
    /// In recovery until `snd_una` passes `.1`.
    recovery: Option<(RecoveryKind, u64)>,
    rto_backoff: u32,
    rto_deadline: Option<Time>,
    inflight: BTreeMap<u64, InflightInfo>,
    /// SACK scoreboard: merged `[start, end)` ranges above `snd_una`.
    sacked: BTreeMap<u64, u64>,
    /// Retransmissions queued by the recovery logic.
    pending_retransmits: VecDeque<u64>,
    /// RACK: latest original-transmission time among delivered segments.
    rack_time: Option<Time>,
    /// RACK: RTT of the most recently delivered segment (tracks queue
    /// growth faster than the smoothed estimate).
    rack_rtt: Option<Time>,
    /// RACK reordering window in quarters of SRTT (1 = SRTT/4). Grows on
    /// DSACK evidence, saturating at 8 (= 2×SRTT), like Linux's dynamic
    /// reo_wnd.
    reo_quarters: u32,
    /// A window reduction is pending possible undo.
    undo_armed: bool,
    /// Retransmissions sent in the current episode not yet proven
    /// unnecessary; undo fires only when this reaches zero (Linux's
    /// `undo_retrans` rule: one surviving genuine retransmission vetoes
    /// the undo).
    undo_retrans: i64,
    /// Tail-loss-probe deadline.
    probe_deadline: Option<Time>,
    probe_backoff: u32,
    /// Sequence most recently resent by a probe: a DSACK covering it is
    /// the probe's own echo, not evidence of a spurious recovery.
    probe_echo: Option<u64>,
    stats: SenderStats,
}

impl Sender {
    /// A sender starting at sequence 0 over the given controller.
    pub fn new(cfg: SenderConfig, cc: Box<dyn CongestionControl>) -> Self {
        let rtt = RttEstimator::new(cfg.min_rto);
        Sender {
            cfg,
            cc,
            rtt,
            snd_una: 0,
            snd_nxt: 0,
            recovery: None,
            rto_backoff: 0,
            rto_deadline: None,
            inflight: BTreeMap::new(),
            sacked: BTreeMap::new(),
            pending_retransmits: VecDeque::new(),
            rack_time: None,
            rack_rtt: None,
            reo_quarters: 1,
            undo_armed: false,
            undo_retrans: 0,
            probe_deadline: None,
            probe_backoff: 0,
            probe_echo: None,
            stats: SenderStats::default(),
        }
    }

    /// Bytes acknowledged by the peer so far.
    pub fn delivered(&self) -> u64 {
        self.snd_una
    }

    /// Current effective send window in bytes (congestion window clamped
    /// by the peer's receive window).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd_bytes().min(self.cfg.max_window_bytes)
    }

    /// Bytes in flight (sequence-space occupancy).
    pub fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// RFC 6675-style pipe estimate: flight minus SACKed bytes. New data
    /// is admitted while `pipe < cwnd`, which keeps the sender from the
    /// classic NewReno inflation runaway during long recoveries.
    pub fn pipe(&self) -> u64 {
        let sacked: u64 = self
            .sacked
            .iter()
            .map(|(&s, &e)| e.min(self.snd_nxt).saturating_sub(s.max(self.snd_una)))
            .sum();
        self.flight_size().saturating_sub(sacked)
    }

    /// Transfer statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<Time> {
        self.rtt.srtt()
    }

    /// The current RACK reordering window.
    pub fn reo_wnd(&self) -> Time {
        let base = self.rtt.srtt().unwrap_or(Time::from_us(400));
        Time((base.0 / 4).saturating_mul(u64::from(self.reo_quarters)))
    }

    /// True when a bounded transfer has been fully acknowledged.
    pub fn finished(&self) -> bool {
        matches!(self.cfg.total_bytes, Some(total) if self.snd_una >= total)
    }

    /// True while the sender is in loss recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery.is_some()
    }

    /// When the retransmission timer fires next, if armed.
    pub fn rto_deadline(&self) -> Option<Time> {
        self.rto_deadline
    }

    /// The earliest pending timer (RTO or tail-loss probe). Drive it
    /// with [`Sender::on_timer`].
    pub fn timer_deadline(&self) -> Option<Time> {
        match (self.rto_deadline, self.probe_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire whichever timer is due at `now`.
    pub fn on_timer(&mut self, now: Time) {
        if self.rto_deadline.is_some_and(|d| now >= d) {
            self.on_rto(now);
        } else if self.probe_deadline.is_some_and(|d| now >= d) {
            self.on_probe_timeout(now);
        }
    }

    fn arm_rto(&mut self, now: Time) {
        let backoff = 1u64 << self.rto_backoff.min(16);
        self.rto_deadline = Some(now + Time(self.rtt.rto().0.saturating_mul(backoff)));
    }

    fn arm_probe(&mut self, now: Time) {
        if self.flight_size() == 0 {
            self.probe_deadline = None;
            return;
        }
        // PTO = max(2*SRTT, 1 ms), doubled per unanswered probe.
        let base = self.rtt.srtt().map_or(Time::from_ms(10), |s| Time(s.0 * 2));
        let pto = Time(base.0.max(Time::from_ms(1).0));
        let backoff = 1u64 << self.probe_backoff.min(10);
        self.probe_deadline = Some(now + Time(pto.0.saturating_mul(backoff)));
    }

    /// Cumulative-ACK silence for a probe interval: resend the left edge
    /// to provoke a (D)SACK response instead of stalling until the RTO.
    fn on_probe_timeout(&mut self, now: Time) {
        if self.flight_size() == 0 {
            self.probe_deadline = None;
            return;
        }
        self.stats.probes += 1;
        self.probe_backoff += 1;
        // Linux TLP resends the HIGHEST-sequence segment: the SACK it
        // provokes gives RACK "later-sent was delivered" evidence for
        // every hole below, collapsing a whole lost tail into one
        // recovery round. (Probing the left edge would reveal nothing
        // and recover one segment per timeout.)
        let probe_seq = self
            .inflight
            .range(self.snd_una..)
            .next_back()
            .map(|(&s, _)| s)
            .filter(|&s| !self.is_sacked(s))
            .unwrap_or(self.snd_una);
        if !self.is_sacked(probe_seq) && !self.pending_retransmits.contains(&probe_seq) {
            self.pending_retransmits.push_front(probe_seq);
            self.probe_echo = Some(probe_seq);
        }
        self.arm_probe(now);
    }

    /// Ask for the next segment to transmit at `now`, if the window and
    /// data supply allow one. Call repeatedly until it returns `None`.
    pub fn poll_segment(&mut self, now: Time) -> Option<Segment> {
        // Retransmissions take priority and replace data already counted
        // in the pipe.
        while let Some(seq) = self.pending_retransmits.pop_front() {
            if seq < self.snd_una || self.is_sacked(seq) {
                continue; // already delivered while queued
            }
            let len = match self.inflight.get_mut(&seq) {
                Some(info) => {
                    info.retransmitted = true;
                    info.send_time = now;
                    info.len
                }
                None => self.cfg.mss,
            };
            self.stats.segments_sent += 1;
            self.stats.retransmits += 1;
            if self.undo_armed {
                self.undo_retrans += 1;
            }
            self.arm_rto(now);
            if self.probe_deadline.is_none() {
                self.arm_probe(now);
            }
            return Some(Segment {
                seq,
                len,
                is_retransmit: true,
            });
        }

        // New data, limited by the send window (pipe-based) and the
        // transfer size.
        let cwnd = self.cwnd();
        if self.pipe() + u64::from(self.cfg.mss) > cwnd {
            return None;
        }
        let remaining = match self.cfg.total_bytes {
            Some(total) => total.saturating_sub(self.snd_nxt),
            None => u64::MAX,
        };
        if remaining == 0 {
            return None;
        }
        let len = u64::from(self.cfg.mss).min(remaining) as u32;
        let seq = self.snd_nxt;
        self.snd_nxt += u64::from(len);
        self.inflight.insert(
            seq,
            InflightInfo {
                len,
                send_time: now,
                retransmitted: false,
            },
        );
        self.stats.segments_sent += 1;
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        if self.probe_deadline.is_none() {
            self.arm_probe(now);
        }
        Some(Segment {
            seq,
            len,
            is_retransmit: false,
        })
    }

    fn is_sacked(&self, seq: u64) -> bool {
        self.sacked
            .range(..=seq)
            .next_back()
            .is_some_and(|(_, &end)| end > seq)
    }

    fn record_sack(&mut self, block: (u64, u64)) {
        let (mut start, mut end) = block;
        if end <= start || end <= self.snd_una {
            return;
        }
        start = start.max(self.snd_una);
        // RACK: delivered segments advance the rack clock. Unlike RTT
        // sampling, this includes retransmissions (their latest transmit
        // time) — without that, a rescue retransmission's SACK would
        // never produce loss evidence for the holes below it.
        let mut latest = self.rack_time;
        for (_, info) in self.inflight.range(start..end) {
            latest = Some(latest.map_or(info.send_time, |t| t.max(info.send_time)));
        }
        self.rack_time = latest;
        // Merge with overlapping/adjacent ranges.
        let overlapping: Vec<u64> = self
            .sacked
            .range(..=end)
            .filter(|&(&s, &e)| e >= start && s <= end)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.sacked[&s];
            start = start.min(s);
            end = end.max(e);
            self.sacked.remove(&s);
        }
        self.sacked.insert(start, end);
    }

    /// RACK loss detection: any unsacked in-flight segment whose (latest)
    /// transmission predates the rack clock by more than the reordering
    /// window is deemed lost. Enters recovery (one window reduction per
    /// episode) and queues the retransmissions.
    fn rack_detect(&mut self, now: Time) {
        let Some(rack_time) = self.rack_time else {
            return;
        };
        let reo = self.reo_wnd();
        // Use the larger of the smoothed and the most recent RTT: while a
        // queue is filling, the smoothed value lags and would mis-mark
        // segments that are merely waiting in line.
        let srtt = self.rtt.srtt().unwrap_or(Time::from_ms(1));
        let rtt = self.rack_rtt.map_or(srtt, |r| r.max(srtt));
        let mut lost = Vec::new();
        // Linux's RACK condition: a segment is lost when (a) something
        // sent after it has been delivered AND (b) a full RTT plus the
        // reordering window has elapsed since its transmission. The +RTT
        // term keeps segments that are merely sitting in a deep FIFO
        // from being marked.
        // Losses cluster at the left edge; bound the scan so detection
        // stays O(1) per ACK (deeper holes surface as snd_una advances).
        for (&seq, info) in self.inflight.range(self.snd_una..).take(128) {
            if lost.len() >= 16 {
                break;
            }
            if info.send_time < rack_time
                && now >= info.send_time + rtt + reo
                && !self.is_sacked(seq)
            {
                lost.push(seq);
            }
        }
        if lost.is_empty() {
            return;
        }
        if self.recovery.is_none() {
            self.cc.on_fast_retransmit(now);
            self.recovery = Some((RecoveryKind::Fast, self.snd_nxt));
            self.undo_armed = true;
            self.undo_retrans = 0;
            self.stats.fast_retransmits += 1;
        }
        for seq in lost {
            if !self.pending_retransmits.contains(&seq) {
                self.pending_retransmits.push_back(seq);
            }
        }
    }

    /// A cumulative ACK arrived, optionally carrying SACK/DSACK blocks.
    pub fn on_ack(&mut self, now: Time, info: AckInfo) {
        let AckInfo { ack, sack, dsack } = info;
        if ack > self.snd_nxt {
            // Acking data never sent: ignore (corrupted peer).
            return;
        }
        if let Some(block) = dsack {
            // A probe's own echo (the tail was alive after all) proves
            // nothing about the recovery in progress; everything else
            // means some retransmission of ours was unnecessary: widen
            // the RACK reordering window (Linux's dynamic reo_wnd) and
            // undo the spurious reduction.
            let is_probe_echo = self
                .probe_echo
                .take_if(|&mut p| block.0 <= p && p < block.1)
                .is_some();
            if !is_probe_echo {
                self.reo_quarters = (self.reo_quarters + 1).min(8);
                self.undo_retrans -= 1;
                if self.undo_armed && self.undo_retrans <= 0 {
                    // Every retransmission of this episode was delivered
                    // twice: the whole recovery was spurious.
                    self.undo_armed = false;
                    self.cc.on_spurious_recovery();
                    self.stats.spurious_recoveries += 1;
                    if self.recovery.is_some() {
                        self.recovery = None;
                        self.pending_retransmits.clear();
                    }
                }
            }
        }
        if let Some(block) = sack {
            self.record_sack(block);
        }

        if ack > self.snd_una {
            let newly_acked = ack - self.snd_una;

            // RTT sample: timestamp semantics (every segment carries an
            // RFC 7323 timestamp in the modeled traffic, as on Linux), so
            // the sample comes from the *last transmission* of the
            // segment whose arrival triggered this ACK — the lowest newly
            // acked one. Segments that sat in the receiver's reassembly
            // buffer while a hole was repaired must NOT contribute: their
            // age measures the recovery, not the path. (Classic Karn-only
            // sampling without timestamps has exactly that flaw.)
            let mut sample: Option<Time> = None;
            let acked: Vec<u64> = self.inflight.range(..ack).map(|(&s, _)| s).collect();
            for (i, seq) in acked.iter().enumerate() {
                let info = self.inflight[seq];
                if seq + u64::from(info.len) <= ack {
                    if i == 0 {
                        sample = Some(now.saturating_sub(info.send_time));
                    }
                    self.rack_time = Some(
                        self.rack_time
                            .map_or(info.send_time, |t| t.max(info.send_time)),
                    );
                    self.inflight.remove(seq);
                }
            }
            if let Some(rtt) = sample {
                self.rtt.sample(rtt);
                self.rack_rtt = Some(rtt);
            }

            self.snd_una = ack;
            self.rto_backoff = 0;
            // Drop scoreboard entries below the new left edge.
            let stale: Vec<u64> = self.sacked.range(..ack).map(|(&s, _)| s).collect();
            for s in stale {
                let end = self.sacked.remove(&s).expect("keyed");
                if end > ack {
                    self.sacked.insert(ack, end);
                }
            }

            match self.recovery {
                Some((kind, recover)) if ack >= recover => {
                    if kind == RecoveryKind::Fast {
                        self.cc.on_exit_recovery();
                    }
                    self.recovery = None;
                    self.pending_retransmits.clear();
                }
                Some(_) => {
                    // Partial ACK: if the hole at the new left edge was
                    // (re)lost, RACK detection below re-marks it.
                }
                None => {
                    self.cc.on_ack(now, newly_acked, self.rtt.srtt());
                }
            }

            if self.flight_size() == 0 {
                self.rto_deadline = None;
                self.probe_deadline = None;
            } else {
                // Cumulative progress resets the probe clock. Pure SACK
                // traffic deliberately does NOT — a stuck left edge must
                // eventually fire the probe even while SACKs stream in
                // (cf. Linux TLP).
                self.probe_backoff = 0;
                self.arm_rto(now);
                self.arm_probe(now);
            }
        }

        self.rack_detect(now);
    }

    /// The retransmission timer fired (caller checked
    /// [`Sender::rto_deadline`]).
    pub fn on_rto(&mut self, now: Time) {
        if self.flight_size() == 0 {
            self.rto_deadline = None;
            return;
        }
        self.stats.rtos += 1;
        self.undo_armed = false;
        self.cc.on_rto(now);
        // RTO recovery: resend the left edge; RACK re-marks the rest as
        // their delivery evidence arrives.
        self.recovery = Some((RecoveryKind::Rto, self.snd_nxt));
        self.pending_retransmits.clear();
        self.pending_retransmits.push_back(self.snd_una);
        // Karn: no samples from anything currently outstanding.
        for info in self.inflight.values_mut() {
            info.retransmitted = true;
        }
        self.rto_backoff += 1;
        self.arm_rto(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::{Cubic, Reno};

    const MSS: u32 = 1460;

    fn ai(ack: u64) -> AckInfo {
        AckInfo {
            ack,
            sack: None,
            dsack: None,
        }
    }

    fn ai_sack(ack: u64, sack: (u64, u64)) -> AckInfo {
        AckInfo {
            ack,
            sack: Some(sack),
            dsack: None,
        }
    }

    fn sender(total: Option<u64>) -> Sender {
        let cfg = SenderConfig {
            total_bytes: total,
            ..SenderConfig::default()
        };
        let cc = Box::new(Cubic::new(cfg.mss, cfg.init_cwnd_segments));
        Sender::new(cfg, cc)
    }

    fn seg(n: u64) -> u64 {
        n * u64::from(MSS)
    }

    /// Transmit the initial window with 10 µs serialization spacing (so
    /// RACK has timing signal, as on a real link).
    fn send_initial_window(s: &mut Sender) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut t = Time::ZERO;
        while let Some(sg) = s.poll_segment(t) {
            out.push(sg);
            t += Time::from_us(10);
        }
        out
    }

    #[test]
    fn initial_burst_is_init_cwnd() {
        let mut s = sender(None);
        let sent = send_initial_window(&mut s);
        assert_eq!(sent.len(), 10, "IW10");
        assert_eq!(s.flight_size(), seg(10));
    }

    #[test]
    fn acks_release_more_data_and_grow_window() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_us(200);
        s.on_ack(now, ai(seg(2)));
        assert_eq!(s.delivered(), seg(2));
        let mut released = 0;
        while s.poll_segment(now).is_some() {
            released += 1;
        }
        assert_eq!(released, 4, "2 freed + 2 slow-start growth");
        assert!(s.srtt().is_some());
    }

    #[test]
    fn rack_detects_loss_from_sacked_later_segments() {
        // Segment 1 (sent at t=10us) lost; later segments delivered and
        // SACKed with timestamps beyond reo_wnd: RACK marks segment 1
        // lost and retransmits it.
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1))); // seg 0 delivered (RTT sample ~1ms)
        s.on_ack(now + Time::from_us(10), ai_sack(seg(1), (seg(2), seg(3))));
        s.on_ack(now + Time::from_us(20), ai_sack(seg(1), (seg(2), seg(4))));
        // SACK for segment 9 (sent at t=90us, i.e. 80us after segment 1);
        // still within reo_wnd (SRTT/4 = 250us)? 80us < 250us, so not yet.
        // Push the rack clock decisively past: re-send new data later and
        // SACK it.
        let t2 = now + Time::from_ms(1);
        let fresh = s.poll_segment(t2).expect("window has room");
        s.on_ack(
            t2 + Time::from_us(10),
            ai_sack(seg(1), (fresh.seq, fresh.seq + u64::from(fresh.len))),
        );
        assert!(s.in_recovery(), "RACK should have marked segment 1 lost");
        assert_eq!(s.stats().fast_retransmits, 1);
        let r = s
            .poll_segment(t2 + Time::from_us(20))
            .expect("rext pending");
        assert!(r.is_retransmit);
        assert_eq!(r.seq, seg(1));
    }

    #[test]
    fn rack_tolerates_reordering_within_reo_wnd() {
        // SACK for a segment sent only 10us after the missing one —
        // inside reo_wnd (SRTT/4 with SRTT ~1ms = 250us): no loss marked.
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1)));
        s.on_ack(now + Time::from_us(5), ai_sack(seg(1), (seg(2), seg(3))));
        assert!(!s.in_recovery(), "10us of reordering must be absorbed");
        s.on_ack(now + Time::from_us(10), ai(seg(3)));
        assert_eq!(s.stats().fast_retransmits, 0);
        assert_eq!(s.stats().retransmits, 0);
    }

    #[test]
    fn sacked_segments_are_never_retransmitted() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1)));
        // SACK everything from 2..10 (sent ≤90us after seg 1) plus a
        // much-later segment to push the rack clock past reo_wnd.
        s.on_ack(now + Time::from_us(10), ai_sack(seg(1), (seg(2), seg(10))));
        let t2 = now + Time::from_ms(1);
        let fresh = s.poll_segment(t2).expect("room");
        s.on_ack(
            t2 + Time::from_us(10),
            ai_sack(seg(1), (fresh.seq, fresh.seq + u64::from(fresh.len))),
        );
        assert!(s.in_recovery());
        let mut retransmitted = Vec::new();
        let mut t = t2 + Time::from_us(100);
        while let Some(r) = s.poll_segment(t) {
            if r.is_retransmit {
                retransmitted.push(r.seq);
            }
            t += Time::from_us(10);
        }
        assert!(retransmitted.contains(&seg(1)));
        assert!(
            !retransmitted
                .iter()
                .any(|&q| (seg(2)..seg(10)).contains(&q)),
            "SACKed range must not be retransmitted: {retransmitted:?}"
        );
    }

    #[test]
    fn dsack_undoes_spurious_recovery_and_widens_reo_wnd() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1)));
        let reo_before = s.reo_wnd();
        // Force a (spurious) RACK detection: SACK a fresh, late segment
        // while segment 1 is merely reordered.
        let t2 = now + Time::from_ms(1);
        let fresh = s.poll_segment(t2).expect("room");
        s.on_ack(
            t2 + Time::from_us(10),
            ai_sack(seg(1), (fresh.seq, fresh.seq + u64::from(fresh.len))),
        );
        assert!(s.in_recovery());
        let cwnd_reduced = s.cwnd();
        let _ = s.poll_segment(t2 + Time::from_us(20)); // spurious rext
                                                        // The "lost" original arrives: cumulative ack advances; then our
                                                        // retransmission shows up as a duplicate → DSACK.
        s.on_ack(
            t2 + Time::from_us(100),
            ai(fresh.seq + u64::from(fresh.len)),
        );
        s.on_ack(
            t2 + Time::from_us(200),
            AckInfo {
                ack: fresh.seq + u64::from(fresh.len),
                sack: None,
                dsack: Some((seg(1), seg(2))),
            },
        );
        assert_eq!(s.stats().spurious_recoveries, 1);
        assert!(s.cwnd() >= cwnd_reduced, "undo must restore the window");
        assert!(s.reo_wnd() > reo_before, "reordering window must widen");
        assert!(!s.in_recovery());
    }

    #[test]
    fn full_ack_exits_recovery_and_deflates() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        let cwnd_before = s.cwnd();
        s.on_ack(now, ai(seg(1)));
        let t2 = now + Time::from_ms(1);
        let fresh = s.poll_segment(t2).expect("room");
        let recover_end = fresh.seq + u64::from(fresh.len);
        s.on_ack(
            t2 + Time::from_us(10),
            ai_sack(seg(1), (fresh.seq, recover_end)),
        );
        assert!(s.in_recovery());
        let _ = s.poll_segment(t2 + Time::from_us(20));
        // Everything through the recovery point gets acked.
        s.on_ack(t2 + Time::from_ms(1), ai(recover_end));
        assert!(!s.in_recovery());
        assert!(
            s.cwnd() < cwnd_before,
            "window must shrink after genuine recovery"
        );
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let deadline = s.rto_deadline().unwrap();
        s.on_rto(deadline);
        assert_eq!(s.stats().rtos, 1);
        assert_eq!(s.cwnd(), u64::from(MSS));
        let second_deadline = s.rto_deadline().unwrap();
        assert!(
            second_deadline.saturating_sub(deadline) >= Time::from_ms(400),
            "exponential backoff doubles the (min 200ms) RTO"
        );
        let rext = s.poll_segment(deadline).unwrap();
        assert!(rext.is_retransmit);
        assert_eq!(rext.seq, 0);
    }

    #[test]
    fn probe_fires_on_cumulative_silence_and_resends_the_tail() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1)));
        let probe_at = s.timer_deadline().expect("probe armed");
        assert!(probe_at < s.rto_deadline().unwrap(), "probe precedes RTO");
        s.on_timer(probe_at);
        assert_eq!(s.stats().probes, 1);
        let r = s.poll_segment(probe_at).expect("probe retransmission");
        assert!(r.is_retransmit);
        // Linux TLP resends the highest outstanding segment so the
        // resulting SACK exposes every hole below it to RACK.
        assert_eq!(r.seq, seg(9));
    }

    #[test]
    fn probe_can_resend_an_already_retransmitted_edge() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1)));
        let t2 = now + Time::from_ms(1);
        let fresh = s.poll_segment(t2).expect("room");
        s.on_ack(
            t2 + Time::from_us(10),
            ai_sack(seg(1), (fresh.seq, fresh.seq + u64::from(fresh.len))),
        );
        let _ = s.poll_segment(t2 + Time::from_us(20)); // rext of seg 1
                                                        // That retransmission is lost too; silence → probe resends it.
        let probe_at = s.timer_deadline().unwrap().max(t2 + Time::from_ms(5));
        s.on_timer(probe_at);
        let r = s.poll_segment(probe_at);
        assert!(matches!(r, Some(sg) if sg.seq == seg(1) && sg.is_retransmit));
    }

    #[test]
    fn bounded_transfer_finishes() {
        let total = seg(5);
        let mut s = sender(Some(total));
        let mut sent = Vec::new();
        while let Some(sg) = s.poll_segment(Time::ZERO) {
            sent.push(sg);
        }
        assert_eq!(sent.len(), 5);
        assert_eq!(sent.iter().map(|x| u64::from(x.len)).sum::<u64>(), total);
        s.on_ack(Time::from_us(50), ai(total));
        assert!(s.finished());
        assert_eq!(
            s.timer_deadline(),
            None,
            "timers disarmed when flight empties"
        );
    }

    #[test]
    fn last_segment_can_be_short() {
        let total = u64::from(MSS) + 100;
        let mut s = sender(Some(total));
        let a = s.poll_segment(Time::ZERO).unwrap();
        let b = s.poll_segment(Time::ZERO).unwrap();
        assert_eq!(a.len, MSS);
        assert_eq!(b.len, 100);
        assert!(s.poll_segment(Time::ZERO).is_none());
    }

    #[test]
    fn rtt_samples_use_the_hole_fillers_latest_transmission() {
        // Timestamp semantics: after an RTO retransmission at time T, an
        // ack at T+100us samples ~100us — not the age of the original.
        let mut s = sender(None);
        send_initial_window(&mut s);
        let deadline = s.rto_deadline().unwrap();
        s.on_rto(deadline);
        let _ = s.poll_segment(deadline);
        s.on_ack(deadline + Time::from_us(100), ai(seg(1)));
        let srtt = s.srtt().expect("sampled");
        assert!(
            srtt <= Time::from_us(100),
            "sample must reflect the retransmission, got {srtt}"
        );
    }

    #[test]
    fn buffered_segments_do_not_inflate_rtt() {
        // Segments 2..9 sit in the receiver's buffer while segment 1 is
        // repaired much later; the cumulative ack covering all of them
        // must sample from the (recent) hole filler, not the old ones.
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1)));
        let t2 = now + Time::from_ms(1);
        let fresh = s.poll_segment(t2).expect("room");
        s.on_ack(
            t2 + Time::from_us(10),
            ai_sack(seg(1), (fresh.seq, fresh.seq + u64::from(fresh.len))),
        );
        assert!(s.in_recovery());
        let rext_at = t2 + Time::from_ms(50);
        let _ = s.poll_segment(rext_at).expect("rext of seg 1");
        // Hole fills 80us after the retransmission; everything is acked.
        s.on_ack(rext_at + Time::from_us(80), ai(seg(10)));
        let srtt = s.srtt().expect("sampled");
        assert!(
            srtt < Time::from_ms(5),
            "old buffered segments must not inflate srtt, got {srtt}"
        );
    }

    #[test]
    fn pipe_excludes_sacked_bytes() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        assert_eq!(s.pipe(), seg(10));
        s.on_ack(Time::from_ms(1), ai_sack(seg(0), (seg(4), seg(7))));
        assert_eq!(s.flight_size(), seg(10));
        assert_eq!(s.pipe(), seg(7), "3 SACKed segments leave the pipe");
    }

    #[test]
    fn reno_sender_also_recovers() {
        let cfg = SenderConfig::default();
        let cc = Box::new(Reno::new(cfg.mss, cfg.init_cwnd_segments));
        let mut s = Sender::new(cfg, cc);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai(seg(1)));
        let t2 = now + Time::from_ms(1);
        let fresh = s.poll_segment(t2).expect("room");
        s.on_ack(
            t2 + Time::from_us(10),
            ai_sack(seg(1), (fresh.seq, fresh.seq + u64::from(fresh.len))),
        );
        assert!(s.in_recovery());
        assert_eq!(s.poll_segment(t2 + Time::from_us(20)).unwrap().seq, seg(1));
    }

    #[test]
    fn scoreboard_prunes_below_snd_una() {
        let mut s = sender(None);
        send_initial_window(&mut s);
        let now = Time::from_ms(1);
        s.on_ack(now, ai_sack(seg(1), (seg(3), seg(4))));
        assert!(s.is_sacked(seg(3)));
        s.on_ack(now + Time::from_us(10), ai(seg(5)));
        assert!(!s.is_sacked(seg(3)), "stale SACK info must be pruned");
    }
}
