//! Congestion-control algorithms: CUBIC (RFC 8312) and Reno.
//!
//! The paper's results "use the standard Linux TCP implementation
//! (CUBIC), without any kind of tuning" (§5), so [`Cubic`] is the default
//! everywhere; [`Reno`] exists for comparison and for the §5 summary
//! question "how well Sprayer interacts with other TCP implementations".
//!
//! Windows are tracked in fractional MSS units internally and exposed in
//! bytes, which is what the sender's flight-size arithmetic uses.

use sprayer_sim::Time;

/// A pluggable congestion controller owned by a [`crate::Sender`].
pub trait CongestionControl: core::fmt::Debug + Send {
    /// Current congestion window in bytes.
    fn cwnd_bytes(&self) -> u64;

    /// Current slow-start threshold in bytes.
    fn ssthresh_bytes(&self) -> u64;

    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd_bytes() < self.ssthresh_bytes()
    }

    /// New data was cumulatively acknowledged.
    fn on_ack(&mut self, now: Time, newly_acked: u64, srtt: Option<Time>);

    /// Three duplicate ACKs: multiplicative decrease, enter recovery.
    fn on_fast_retransmit(&mut self, now: Time);

    /// Recovery completed: deflate to ssthresh.
    fn on_exit_recovery(&mut self);

    /// Retransmission timeout: collapse to one MSS.
    fn on_rto(&mut self, now: Time);

    /// The last window reduction was spurious (DSACK proved the
    /// "lost" segment had arrived): restore the pre-reduction state
    /// (Linux's DSACK undo).
    fn on_spurious_recovery(&mut self);

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Classic Reno/NewReno window arithmetic.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: f64,
    cwnd: f64,     // bytes
    ssthresh: f64, // bytes
    prior: Option<(f64, f64)>,
}

impl Reno {
    /// Initial window of `init_segments` MSS (RFC 6928 uses 10).
    pub fn new(mss: u32, init_segments: u32) -> Self {
        let mss = f64::from(mss);
        Reno {
            mss,
            cwnd: mss * f64::from(init_segments),
            ssthresh: f64::INFINITY,
            prior: None,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd.max(self.mss) as u64
    }

    fn ssthresh_bytes(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn on_ack(&mut self, _now: Time, newly_acked: u64, _srtt: Option<Time>) {
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per MSS acknowledged.
            self.cwnd += newly_acked as f64;
        } else {
            // Congestion avoidance: one MSS per RTT.
            self.cwnd += self.mss * self.mss / self.cwnd;
        }
    }

    fn on_fast_retransmit(&mut self, _now: Time) {
        self.prior = Some((self.cwnd, self.ssthresh));
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        self.cwnd = self.ssthresh + 3.0 * self.mss;
    }

    fn on_exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: Time) {
        self.prior = None; // timeouts are not undoable here
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_spurious_recovery(&mut self) {
        if let Some((cwnd, ssthresh)) = self.prior.take() {
            self.cwnd = cwnd.max(self.cwnd);
            self.ssthresh = ssthresh;
        }
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// CUBIC per RFC 8312 with fast convergence and the TCP-friendly region.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: f64,
    cwnd: f64,     // bytes
    ssthresh: f64, // bytes
    /// Window size (bytes) just before the last reduction.
    w_max: f64,
    /// Epoch start (first ACK after a reduction).
    epoch_start: Option<Time>,
    /// Time (seconds) at which W_cubic regains w_max.
    k: f64,
    /// TCP-friendly (AIMD-equivalent) window estimate in bytes.
    w_est: f64,
    /// Snapshot for DSACK undo: (cwnd, ssthresh, w_max, k, epoch, w_est).
    prior: Option<(f64, f64, f64, f64, Option<Time>, f64)>,
    /// HyStart: lowest smoothed RTT observed (the uncongested baseline).
    min_rtt: Option<Time>,
}

/// RFC 8312 constants.
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// Initial window of `init_segments` MSS.
    pub fn new(mss: u32, init_segments: u32) -> Self {
        let mss = f64::from(mss);
        Cubic {
            mss,
            cwnd: mss * f64::from(init_segments),
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            prior: None,
            min_rtt: None,
        }
    }

    fn begin_epoch(&mut self, now: Time) {
        self.epoch_start = Some(now);
        if self.cwnd < self.w_max {
            // Time to climb back to w_max (RFC 8312 eq. 2), in seconds,
            // with windows in MSS units.
            let dw = (self.w_max - self.cwnd) / self.mss;
            self.k = (dw / CUBIC_C).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.cwnd;
        }
        self.w_est = self.cwnd;
    }

    fn w_cubic(&self, t: f64) -> f64 {
        // In bytes: C (MSS/s^3) scaled by mss.
        let d = t - self.k;
        CUBIC_C * d * d * d * self.mss + self.w_max
    }
}

impl CongestionControl for Cubic {
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd.max(self.mss) as u64
    }

    fn ssthresh_bytes(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn on_ack(&mut self, now: Time, newly_acked: u64, srtt: Option<Time>) {
        if let Some(rtt) = srtt {
            self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += newly_acked as f64;
            // HyStart (on by default in Linux CUBIC): leave slow start as
            // soon as the RTT rises measurably above its floor — i.e.
            // when the bottleneck queue starts to build — instead of
            // ramming the queue until it overflows.
            if let (Some(rtt), Some(min)) = (srtt, self.min_rtt) {
                let threshold = Time(min.0 + (min.0 / 4).max(Time::from_us(200).0));
                if rtt > threshold {
                    self.ssthresh = self.cwnd;
                }
            }
            return;
        }
        let rtt = srtt.map_or(0.1e-3, |t| t.as_secs_f64());
        if self.epoch_start.is_none() {
            self.begin_epoch(now);
        }
        let t = (now - self.epoch_start.expect("set above")).as_secs_f64();

        // TCP-friendly region (RFC 8312 eq. 4), incremental form: W_est
        // grows by 3(1-β)/(1+β) MSS per RTT worth of ACKs.
        let alpha = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA);
        self.w_est += alpha * (newly_acked as f64 / self.cwnd) * self.mss;

        let target = self.w_cubic(t + rtt);
        let next = if self.w_est > target {
            self.w_est
        } else {
            target
        };
        if next > self.cwnd {
            // Spread the climb over the window's worth of ACKs.
            self.cwnd += ((next - self.cwnd) / self.cwnd) * newly_acked as f64;
        } else {
            // Max-probing plateau: tiny growth (1% of an MSS per MSS).
            self.cwnd += 0.01 * self.mss * (newly_acked as f64 / self.cwnd);
        }
    }

    fn on_fast_retransmit(&mut self, _now: Time) {
        self.prior = Some((
            self.cwnd,
            self.ssthresh,
            self.w_max,
            self.k,
            self.epoch_start,
            self.w_est,
        ));
        // Fast convergence (RFC 8312 §4.6).
        if self.cwnd < self.w_max {
            self.w_max = self.cwnd * (1.0 + CUBIC_BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * self.mss);
        self.cwnd = self.ssthresh + 3.0 * self.mss;
        self.epoch_start = None;
    }

    fn on_exit_recovery(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: Time) {
        self.prior = None;
        if self.cwnd < self.w_max {
            self.w_max = self.cwnd * (1.0 + CUBIC_BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start = None;
    }

    fn on_spurious_recovery(&mut self) {
        if let Some((cwnd, ssthresh, w_max, k, epoch, w_est)) = self.prior.take() {
            self.cwnd = cwnd.max(self.cwnd);
            self.ssthresh = ssthresh;
            self.w_max = w_max;
            self.k = k;
            self.epoch_start = epoch;
            self.w_est = w_est;
        }
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(MSS, 10);
        let w0 = cc.cwnd_bytes();
        // Ack a full window: cwnd should double.
        cc.on_ack(Time::ZERO, w0, None);
        assert_eq!(cc.cwnd_bytes(), 2 * w0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn reno_congestion_avoidance_adds_one_mss_per_window() {
        let mut cc = Reno::new(MSS, 10);
        cc.on_fast_retransmit(Time::ZERO);
        cc.on_exit_recovery();
        assert!(!cc.in_slow_start());
        let w = cc.cwnd_bytes();
        // Ack one window's worth in MSS chunks.
        let acks = w / u64::from(MSS);
        for _ in 0..acks {
            cc.on_ack(Time::ZERO, u64::from(MSS), None);
        }
        let grown = cc.cwnd_bytes() - w;
        assert!(
            (grown as i64 - i64::from(MSS)).unsigned_abs() < u64::from(MSS) / 4,
            "grew {grown} (expected ~{MSS})"
        );
    }

    #[test]
    fn reno_fast_retransmit_halves() {
        let mut cc = Reno::new(MSS, 100);
        let before = cc.cwnd_bytes();
        cc.on_fast_retransmit(Time::ZERO);
        cc.on_exit_recovery();
        let after = cc.cwnd_bytes();
        assert!((after as f64 / before as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn cubic_fast_retransmit_multiplies_by_beta() {
        let mut cc = Cubic::new(MSS, 100);
        let before = cc.cwnd_bytes();
        cc.on_fast_retransmit(Time::ZERO);
        cc.on_exit_recovery();
        let after = cc.cwnd_bytes();
        assert!(
            (after as f64 / before as f64 - CUBIC_BETA).abs() < 0.05,
            "before {before} after {after}"
        );
    }

    #[test]
    fn cubic_recovers_toward_w_max_in_k_seconds() {
        let mut cc = Cubic::new(MSS, 100);
        cc.ssthresh = f64::from(MSS); // force congestion avoidance
        cc.on_fast_retransmit(Time::ZERO);
        cc.on_exit_recovery();
        let w_after_loss = cc.cwnd_bytes();
        let w_max = (100.0 * f64::from(MSS)) as u64;
        assert!(w_after_loss < w_max);

        // K = cbrt((w_max - cwnd)/(MSS*C)) = cbrt(30/0.4) ≈ 4.2 s; feed
        // steady ACKs for 6 simulated seconds at RTT = 10 ms and the
        // window must climb back to (and slightly past) w_max.
        let rtt = Time::from_ms(10);
        let mut now = Time::from_ms(1);
        for _ in 0..12_000 {
            cc.on_ack(now, u64::from(MSS), Some(rtt));
            now += Time::from_us(500);
        }
        let w_end = cc.cwnd_bytes();
        assert!(
            w_end as f64 > 0.97 * w_max as f64,
            "w_end {w_end} should reach w_max {w_max} after K has elapsed"
        );
    }

    #[test]
    fn cubic_rto_collapses_to_one_mss() {
        let mut cc = Cubic::new(MSS, 64);
        cc.on_rto(Time::ZERO);
        assert_eq!(cc.cwnd_bytes(), u64::from(MSS));
        assert!(cc.in_slow_start());
    }

    #[test]
    fn cubic_growth_is_slower_near_w_max() {
        // The defining cubic shape: steep right after the reduction, flat
        // in the plateau around t = K (here K = cbrt(60/0.4) ≈ 5.3 s).
        let mut cc = Cubic::new(MSS, 200);
        cc.ssthresh = f64::from(MSS); // force CA
        cc.on_fast_retransmit(Time::ZERO);
        cc.on_exit_recovery();
        let rtt = Time::from_ms(10);

        // 2000 ACKs per simulated second for six seconds; record the
        // per-second window growth.
        let mut deltas = Vec::new();
        let mut now = Time::from_ms(1);
        let mut prev = cc.cwnd_bytes();
        for _ in 0..6 {
            for _ in 0..2_000 {
                cc.on_ack(now, u64::from(MSS), Some(rtt));
                now += Time::from_us(500);
            }
            let cur = cc.cwnd_bytes();
            deltas.push(cur.saturating_sub(prev));
            prev = cur;
        }
        // Growth in the first second (far below w_max) dwarfs growth in
        // the plateau second around K.
        assert!(
            deltas[0] > 4 * deltas[4],
            "first-second growth {} should dwarf plateau growth {} (deltas {deltas:?})",
            deltas[0],
            deltas[4],
        );
    }

    #[test]
    fn cwnd_never_below_one_mss() {
        let mut cc = Reno::new(MSS, 1);
        for _ in 0..5 {
            cc.on_rto(Time::ZERO);
        }
        assert!(cc.cwnd_bytes() >= u64::from(MSS));
    }
}
