//! The receiving endpoint: cumulative ACKs, out-of-order buffering,
//! duplicate-ACK generation, delayed ACKs.
//!
//! This is where packet reordering becomes visible to the sender: every
//! out-of-order arrival triggers an *immediate* ACK carrying the
//! unchanged cumulative sequence number — a duplicate ACK. Three of those
//! and the sender spuriously retransmits (see [`crate::sender`]). The
//! magnitude of Sprayer's reordering relative to this threshold is the
//! crux of the paper's TCP results.

use std::collections::BTreeMap;

/// What the receiver wants to transmit after a segment arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckAction {
    /// Send an ACK now, with the cumulative sequence and (if data is
    /// buffered out of order) the first SACK block — Linux always
    /// includes SACK blocks on duplicate ACKs, and the paper's untuned
    /// CUBIC stack has SACK enabled.
    Immediate(AckInfo),
    /// ACK is pending under the delayed-ACK rule; send on the next
    /// trigger (or timer, which bulk transfers rarely hit).
    Delayed,
    /// Nothing to do (pure duplicate of already-received data).
    None,
}

/// Contents of an outgoing ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// Cumulative acknowledgement (next expected byte).
    pub ack: u64,
    /// First out-of-order block `[start, end)`, if any (a 1-block SACK).
    pub sack: Option<(u64, u64)>,
    /// Duplicate-SACK block: set when the arriving segment was entirely
    /// old data, i.e. a retransmission of something already received.
    /// Linux senders use DSACKs to detect spurious retransmissions and
    /// undo the window reduction — essential under reordering.
    pub dsack: Option<(u64, u64)>,
}

/// A reassembling receiver for one direction of one connection.
#[derive(Debug, Clone)]
pub struct Receiver {
    /// Next byte expected in order.
    rcv_nxt: u64,
    /// Out-of-order blocks: start → end (exclusive), non-overlapping,
    /// non-adjacent.
    ooo: BTreeMap<u64, u64>,
    /// Delayed-ACK state: number of in-order full segments since the last
    /// ACK was emitted (ACK every second segment, RFC 5681).
    unacked_segments: u32,
    /// Total in-order bytes delivered to the "application".
    delivered: u64,
    /// Start of the out-of-order block most recently added to (RFC 2018
    /// requires the first SACK block to be the most recently received).
    recent_block: Option<u64>,
    /// Counters for diagnostics.
    dup_acks_sent: u64,
    ooo_arrivals: u64,
}

impl Receiver {
    /// A receiver expecting the first byte at `isn`.
    pub fn new(isn: u64) -> Self {
        Receiver {
            rcv_nxt: isn,
            ooo: BTreeMap::new(),
            unacked_segments: 0,
            delivered: 0,
            recent_block: None,
            dup_acks_sent: 0,
            ooo_arrivals: 0,
        }
    }

    /// Next expected sequence number (the cumulative ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Total in-order bytes received.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Duplicate ACKs emitted so far.
    pub fn dup_acks_sent(&self) -> u64 {
        self.dup_acks_sent
    }

    /// Out-of-order segment arrivals so far.
    pub fn ooo_arrivals(&self) -> u64 {
        self.ooo_arrivals
    }

    /// Bytes currently buffered out of order.
    pub fn ooo_bytes(&self) -> u64 {
        self.ooo.iter().map(|(&s, &e)| e - s).sum()
    }

    /// A segment `[seq, seq+len)` arrived. Returns the ACK action.
    pub fn on_segment(&mut self, seq: u64, len: u64) -> AckAction {
        if len == 0 {
            return AckAction::None;
        }
        let end = seq + len;
        if end <= self.rcv_nxt {
            // Entirely old data: the peer retransmitted something we
            // already have. Re-ACK immediately with a DSACK block.
            self.dup_acks_sent += 1;
            let mut info = self.ack_info();
            info.dsack = Some((seq, end));
            return AckAction::Immediate(info);
        }
        if seq > self.rcv_nxt {
            // A hole: buffer and emit a duplicate ACK right away
            // (RFC 5681: an out-of-order segment SHOULD be ACKed
            // immediately), carrying the SACK block.
            self.ooo_arrivals += 1;
            self.insert_ooo(seq, end);
            // Remember which (merged) block this arrival landed in: the
            // SACK option must lead with the most recent block.
            self.recent_block = self.ooo.range(..=seq).next_back().map(|(&s, _)| s);
            self.dup_acks_sent += 1;
            return AckAction::Immediate(self.ack_info());
        }
        // In-order (possibly overlapping the left edge).
        let old_nxt = self.rcv_nxt;
        self.rcv_nxt = end;
        self.drain_ooo();
        self.delivered += self.rcv_nxt - old_nxt;

        if self.rcv_nxt > end {
            // This segment filled a hole: ACK immediately (RFC 5681).
            self.unacked_segments = 0;
            return AckAction::Immediate(self.ack_info());
        }
        // Plain in-order delivery: delayed ACK, every second segment.
        self.unacked_segments += 1;
        if self.unacked_segments >= 2 {
            self.unacked_segments = 0;
            AckAction::Immediate(self.ack_info())
        } else {
            AckAction::Delayed
        }
    }

    /// The cumulative ACK plus the first SACK block — the block most
    /// recently added to, falling back to the lowest block (RFC 2018
    /// block-ordering rule, which RACK-style senders depend on for fresh
    /// delivery evidence).
    pub fn ack_info(&self) -> AckInfo {
        let sack = self
            .recent_block
            .and_then(|s| self.ooo.get(&s).map(|&e| (s, e)))
            .or_else(|| self.ooo.first_key_value().map(|(&s, &e)| (s, e)));
        AckInfo {
            ack: self.rcv_nxt,
            sack,
            dsack: None,
        }
    }

    /// Force out any pending delayed ACK (the scenario's delayed-ACK
    /// timer, typically 40 ms in Linux).
    pub fn flush_delayed(&mut self) -> Option<u64> {
        if self.unacked_segments > 0 {
            self.unacked_segments = 0;
            Some(self.rcv_nxt)
        } else {
            None
        }
    }

    fn insert_ooo(&mut self, mut start: u64, mut end: u64) {
        start = start.max(self.rcv_nxt);
        // Merge any overlapping or adjacent blocks.
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|&(&s, &e)| e >= start || s <= end)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo[&s];
            if e < start || s > end {
                continue;
            }
            start = start.min(s);
            end = end.max(e);
            self.ooo.remove(&s);
        }
        self.ooo.insert(start, end);
    }

    fn drain_ooo(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            if e > self.rcv_nxt {
                self.rcv_nxt = e;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEG: u64 = 1460;

    fn imm(ack: u64, sack: Option<(u64, u64)>) -> AckAction {
        AckAction::Immediate(AckInfo {
            ack,
            sack,
            dsack: None,
        })
    }

    #[test]
    fn in_order_segments_delay_every_other_ack() {
        let mut r = Receiver::new(0);
        assert_eq!(r.on_segment(0, SEG), AckAction::Delayed);
        assert_eq!(r.on_segment(SEG, SEG), imm(2 * SEG, None));
        assert_eq!(r.on_segment(2 * SEG, SEG), AckAction::Delayed);
        assert_eq!(r.delivered(), 3 * SEG);
        assert_eq!(r.dup_acks_sent(), 0);
    }

    #[test]
    fn out_of_order_triggers_immediate_dup_ack_with_sack() {
        let mut r = Receiver::new(0);
        r.on_segment(0, SEG);
        // Segment 2 arrives before segment 1: dup ACK carries the block.
        assert_eq!(
            r.on_segment(2 * SEG, SEG),
            imm(SEG, Some((2 * SEG, 3 * SEG)))
        );
        assert_eq!(r.dup_acks_sent(), 1);
        assert_eq!(r.ooo_bytes(), SEG);
        // The hole fills: immediate ACK for everything, no blocks left.
        assert_eq!(r.on_segment(SEG, SEG), imm(3 * SEG, None));
        assert_eq!(r.ooo_bytes(), 0);
        assert_eq!(r.delivered(), 3 * SEG);
    }

    #[test]
    fn multiple_holes_fill_in_any_order() {
        let mut r = Receiver::new(0);
        // Receive segments 0,2,4 then 3 then 1.
        r.on_segment(0, SEG);
        r.on_segment(2 * SEG, SEG);
        r.on_segment(4 * SEG, SEG);
        r.on_segment(3 * SEG, SEG);
        assert_eq!(r.rcv_nxt(), SEG);
        // After 3 fills, one merged ooo block [2*SEG, 5*SEG) remains.
        assert_eq!(r.ack_info().sack, Some((2 * SEG, 5 * SEG)));
        let act = r.on_segment(SEG, SEG);
        assert_eq!(act, imm(5 * SEG, None));
        assert_eq!(r.delivered(), 5 * SEG);
    }

    #[test]
    fn duplicate_old_data_is_reacked_with_dsack() {
        let mut r = Receiver::new(0);
        r.on_segment(0, SEG);
        r.on_segment(SEG, SEG);
        assert_eq!(
            r.on_segment(0, SEG),
            AckAction::Immediate(AckInfo {
                ack: 2 * SEG,
                sack: None,
                dsack: Some((0, SEG)),
            })
        );
    }

    #[test]
    fn overlapping_ooo_blocks_merge() {
        let mut r = Receiver::new(0);
        r.on_segment(2 * SEG, SEG);
        r.on_segment(2 * SEG + SEG / 2, SEG); // overlaps previous block
        assert_eq!(r.ooo_bytes(), SEG + SEG / 2);
        r.on_segment(0, 2 * SEG);
        assert_eq!(r.rcv_nxt(), 3 * SEG + SEG / 2);
    }

    #[test]
    fn reordered_burst_counts_dup_acks() {
        // Three consecutive segments arrive fully reversed after the
        // first: 0, 3, 2, 1 -> two dup ACKs (for 3 and 2), then a fill.
        let mut r = Receiver::new(0);
        r.on_segment(0, SEG);
        r.on_segment(3 * SEG, SEG);
        r.on_segment(2 * SEG, SEG);
        assert_eq!(r.dup_acks_sent(), 2);
        assert_eq!(r.on_segment(SEG, SEG), imm(4 * SEG, None));
    }

    #[test]
    fn flush_delayed_emits_pending_ack() {
        let mut r = Receiver::new(0);
        r.on_segment(0, SEG);
        assert_eq!(r.flush_delayed(), Some(SEG));
        assert_eq!(r.flush_delayed(), None);
    }

    #[test]
    fn zero_length_segment_is_ignored() {
        let mut r = Receiver::new(0);
        assert_eq!(r.on_segment(0, 0), AckAction::None);
        assert_eq!(r.rcv_nxt(), 0);
    }

    #[test]
    fn nonzero_isn_respected() {
        let mut r = Receiver::new(1_000_000);
        assert_eq!(r.on_segment(1_000_000, SEG), AckAction::Delayed);
        assert_eq!(r.rcv_nxt(), 1_000_000 + SEG);
    }
}
