//! # sprayer-tcp — simulated TCP endpoints
//!
//! The paper measures Sprayer's effect on *real* TCP connections (iperf3
//! with Linux CUBIC, §5) because packet spraying reorders packets and
//! reordering can make a TCP receiver emit duplicate ACKs, tripping the
//! sender's fast-retransmit heuristic and halving its window for no good
//! reason. Reproducing Figs. 6(b) and 7(b) therefore needs a TCP model
//! that gets exactly this mechanism right.
//!
//! This crate provides discrete-event TCP endpoints:
//!
//! * [`sender`] — a window-limited bulk sender with slow start,
//!   congestion avoidance, NewReno-style fast retransmit / fast recovery
//!   on three duplicate ACKs (no SACK), RTO with exponential backoff and
//!   Karn's algorithm, and a pluggable congestion-control algorithm;
//! * [`congestion`] — [`congestion::Cubic`] (RFC 8312, the Linux default
//!   the paper uses, untuned) and [`congestion::Reno`] for comparison;
//! * [`rtt`] — RFC 6298 smoothed RTT estimation;
//! * [`receiver`] — a cumulative-ACK receiver with an out-of-order
//!   reassembly buffer, duplicate-ACK generation on every out-of-order
//!   arrival, and delayed ACKs (every second full-sized segment).
//!
//! Endpoints are *pure state machines*: the caller (a discrete-event
//! scenario in `sprayer-bench`) owns time and delivery, calling
//! [`sender::Sender::poll_segment`], [`sender::Sender::on_ack`],
//! [`receiver::Receiver::on_segment`] etc. This keeps the protocol logic
//! independently testable — including under adversarial reordering.
//!
//! Simplifications relative to a production stack (documented in
//! DESIGN.md): byte-stream only (no content), no SACK (amplifies
//! reordering sensitivity, making the experiment *harder* for Sprayer),
//! no window scaling limits (receive window assumed ample), no Nagle
//! (iperf bulk transfer), no ECN.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use congestion::{CongestionControl, Cubic, Reno};
pub use receiver::{AckAction, AckInfo, Receiver};
pub use rtt::RttEstimator;
pub use sender::{Segment, Sender, SenderConfig};
