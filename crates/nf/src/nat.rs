//! A NAT (source network address translation), after the paper's Fig. 5.
//!
//! State (Table 1 row "NAT"):
//! * **flow map** — per-flow, read on every packet, written at flow
//!   start/end;
//! * **pool of IPs/ports** — global, written at flow start/end only.
//!
//! The `connection_packets` handler reacts to the *first* SYN of a
//! connection: it draws an external port from the global pool and
//! installs two entries in the local (designated-core) flow table — one
//! keyed by the original connection, one keyed by the translated
//! connection, so packets from either side resolve their rewrite with a
//! single [`FlowStateApi::get_flow`]. Everything after the first SYN
//! (including SYN-ACK) is handled as a regular packet, exactly as in the
//! paper's listing.
//!
//! **Port selection and the designated core.** The translated connection
//! (server ↔ NAT-external) hashes differently from the original
//! connection (client ↔ server). If the external port were arbitrary,
//! connection packets arriving from the server side would be redirected
//! to a *different* designated core than the one holding the state. We
//! therefore pick the external port such that both connections map to the
//! same designated core — an expected `num_cores` pool probes, costing a
//! handful of hashes at connection setup only. This preserves both of the
//! paper's invariants: write partition, and "the designated core is the
//! same for both sides of the same TCP connection".

use parking_lot::Mutex;
use sprayer::api::{
    Access, EvictReason, FlowStateApi, InsertOutcome, NetworkFunction, NfDescriptor, Scope, Verdict,
};
use sprayer::scr::ReplicaMerge;
use sprayer_net::{FiveTuple, FlowKey, Packet, TcpFlags};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-flow NAT state: which side the packet matches and how to rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NatEntry {
    /// Keyed by the original (client ↔ server) connection: rewrite the
    /// client's source endpoint to the external endpoint.
    Outward {
        /// The internal (client) endpoint being hidden.
        internal: (u32, u16),
        /// The external (NAT) endpoint replacing it.
        external: (u32, u16),
        /// FIN directions seen, as a bitmask: bit 0 when the FIN
        /// resolved through this Outward entry (the client side), bit 1
        /// when it resolved through the paired Inward entry (the server
        /// side). The pair is removed at `0b11` or on RST. A bitmask so
        /// SCR replica merges union the two directions commutatively —
        /// FINs landing on different cores cannot lose each other to
        /// last-writer-wins and leak the translation.
        fins: u8,
    },
    /// Keyed by the translated (server ↔ NAT-external) connection:
    /// rewrite the destination back to the internal endpoint.
    Inward {
        /// The external endpoint the server addresses.
        external: (u32, u16),
        /// The internal endpoint to restore.
        internal: (u32, u16),
    },
}

/// Global NAT counters.
#[derive(Debug, Default)]
pub struct NatStats {
    /// Connections successfully translated.
    pub translations: AtomicU64,
    /// SYNs dropped because the pool was exhausted (or no port matched
    /// the designated core).
    pub pool_exhausted: AtomicU64,
    /// Packets dropped for missing translations.
    pub no_translation: AtomicU64,
    /// Connections torn down (RST or both FINs).
    pub teardowns: AtomicU64,
    /// Entries exported by [`NetworkFunction::freeze_flow`] during
    /// elastic reconfigurations.
    pub frozen: AtomicU64,
    /// Entries imported by [`NetworkFunction::adopt_flow`]. Every export
    /// must be matched by an import (`frozen == adopted` once a
    /// reconfiguration completes) or an external port has leaked: the
    /// teardown path returns ports to the pool by looking the entry up,
    /// which only works if migration never loses one.
    pub adopted: AtomicU64,
    /// External ports returned to the pool by the table's eviction hook
    /// (idle aging or the LRU backstop) rather than by a FIN/RST
    /// teardown — translations the lifecycle reclaimed from under a
    /// silent or abandoned connection.
    pub ports_reclaimed: AtomicU64,
}

/// Source NAT over a single external IP.
pub struct NatNf {
    external_ip: u32,
    /// Free external ports (global state, flow-granularity writes only).
    pool: Mutex<Vec<u16>>,
    /// Global counters.
    pub stats: NatStats,
}

impl NatNf {
    /// A NAT owning `external_ip` and the port range `ports`.
    pub fn new(external_ip: u32, ports: std::ops::Range<u16>) -> Self {
        NatNf {
            external_ip,
            pool: Mutex::new(ports.rev().collect()),
            stats: NatStats::default(),
        }
    }

    /// Free ports remaining in the pool.
    pub fn pool_len(&self) -> usize {
        self.pool.lock().len()
    }

    /// Pick an external port whose translated connection maps to the same
    /// designated core as the original connection (see module docs).
    fn select_port(&self, original: &FiveTuple, ctx: &dyn FlowStateApi<NatEntry>) -> Option<u16> {
        let designated = ctx.designated_core(&original.key());
        let mut pool = self.pool.lock();
        // Scan from the top; expected num_cores probes.
        for idx in (0..pool.len()).rev() {
            let port = pool[idx];
            let translated =
                FiveTuple::tcp(self.external_ip, port, original.dst_addr, original.dst_port);
            if ctx.designated_core(&translated.key()) == designated {
                pool.swap_remove(idx);
                return Some(port);
            }
        }
        None
    }

    fn teardown(&self, key_tuple: &FiveTuple, ctx: &mut dyn FlowStateApi<NatEntry>) {
        // `key_tuple` may be either side; resolve to the Outward entry.
        let (orig_key, trans_key, external) = match ctx.get_flow(&key_tuple.key()) {
            Some(NatEntry::Outward {
                internal: _,
                external,
                ..
            }) => {
                let trans = FiveTuple::tcp(
                    external.0,
                    external.1,
                    key_tuple.dst_addr,
                    key_tuple.dst_port,
                );
                (key_tuple.key(), trans.key(), external)
            }
            Some(NatEntry::Inward { external, internal }) => {
                // Reconstruct the original connection: the server is the
                // endpoint of this tuple that is not the external one.
                let server = if (key_tuple.src_addr, key_tuple.src_port) == external {
                    (key_tuple.dst_addr, key_tuple.dst_port)
                } else {
                    (key_tuple.src_addr, key_tuple.src_port)
                };
                let orig = FiveTuple::tcp(internal.0, internal.1, server.0, server.1);
                (orig.key(), key_tuple.key(), external)
            }
            None => return,
        };
        ctx.remove_local_flow(&orig_key);
        ctx.remove_local_flow(&trans_key);
        // Under SCR two cores can each observe the completed FIN pair
        // (one via its own FIN, one via a merged replica) and both run
        // teardown; guard the push so the port returns to the pool only
        // once. (A port re-allocated between the two frees would still
        // slip through the guard — an accepted race: the deterministic
        // sim serializes teardowns, and in the threaded runtime the
        // window is a replication round-trip.)
        let freed = {
            let mut pool = self.pool.lock();
            if pool.contains(&external.1) {
                false
            } else {
                pool.push(external.1);
                true
            }
        };
        if freed {
            self.stats.teardowns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The per-packet translation fast path, with the miss counter
    /// accumulated by the caller so a batch touches the atomic once.
    fn translate_data(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<NatEntry>,
        misses: &mut u64,
    ) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Forward;
        };
        match ctx.get_flow(&tuple.key()) {
            Some(NatEntry::Outward {
                internal, external, ..
            }) => {
                if (tuple.src_addr, tuple.src_port) == internal {
                    pkt.rewrite_src(external.0, external.1)
                        .expect("TCP rewrite");
                } else {
                    // Shouldn't occur: the reverse of the original
                    // connection addresses the internal host directly.
                    pkt.rewrite_dst(internal.0, internal.1)
                        .expect("TCP rewrite");
                }
                Verdict::Forward
            }
            Some(NatEntry::Inward { external, internal }) => {
                if (tuple.dst_addr, tuple.dst_port) == external {
                    pkt.rewrite_dst(internal.0, internal.1)
                        .expect("TCP rewrite");
                } else {
                    pkt.rewrite_src(external.0, external.1)
                        .expect("TCP rewrite");
                }
                Verdict::Forward
            }
            None => {
                // "no translation found for this flow id" (Fig. 5).
                *misses += 1;
                Verdict::Drop
            }
        }
    }
}

impl NetworkFunction for NatNf {
    type Flow = NatEntry;

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("NAT")
            .with_state("Flow map", Scope::PerFlow, Access::Read, Access::ReadWrite)
            .with_state(
                "Pool of IPs/ports",
                Scope::Global,
                Access::None,
                Access::ReadWrite,
            )
    }

    fn connection_packets(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<NatEntry>,
    ) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Forward; // non-TCP passthrough
        };
        let flags = pkt.meta().tcp_flags.unwrap_or_default();

        // Teardown first: RST from either side, or the second FIN.
        if flags.contains(TcpFlags::RST) {
            self.teardown(&tuple, ctx);
            return Verdict::Forward;
        }
        if flags.contains(TcpFlags::FIN) {
            // Record the FIN's direction on the Outward entry (which
            // side it resolved through); translate the packet like a
            // regular one afterwards.
            let mut fin_count = 0;
            let (key, bit) = match ctx.get_flow(&tuple.key()) {
                Some(NatEntry::Outward { .. }) => (Some(tuple.key()), 0b01),
                Some(NatEntry::Inward { external, internal }) => {
                    let server = if (tuple.src_addr, tuple.src_port) == external {
                        (tuple.dst_addr, tuple.dst_port)
                    } else {
                        (tuple.src_addr, tuple.src_port)
                    };
                    (
                        Some(FiveTuple::tcp(internal.0, internal.1, server.0, server.1).key()),
                        0b10,
                    )
                }
                None => (None, 0),
            };
            if let Some(key) = key {
                ctx.modify_local_flow(&key, &mut |e| {
                    if let NatEntry::Outward { fins, .. } = e {
                        *fins |= bit;
                        fin_count = *fins;
                    }
                });
            }
            let verdict = self.regular_packets(pkt, ctx);
            if fin_count == 0b11 {
                self.teardown(&tuple, ctx);
            }
            return verdict;
        }

        // "we only care about the first SYN packet" (Fig. 5): SYN-ACK and
        // anything else translates as a regular packet.
        if !flags.contains(TcpFlags::SYN) || flags.contains(TcpFlags::ACK) {
            return self.regular_packets(pkt, ctx);
        }

        if ctx.get_flow(&tuple.key()).is_some() {
            // Retransmitted SYN: translation already exists.
            return self.regular_packets(pkt, ctx);
        }

        let Some(port) = self.select_port(&tuple, ctx) else {
            self.stats.pool_exhausted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        };
        let internal = (tuple.src_addr, tuple.src_port);
        let external = (self.external_ip, port);
        let translated = FiveTuple::tcp(external.0, external.1, tuple.dst_addr, tuple.dst_port);

        let out = ctx.insert_local_flow(
            tuple.key(),
            NatEntry::Outward {
                internal,
                external,
                fins: 0,
            },
        );
        if out == InsertOutcome::TableFull {
            self.pool.lock().push(port);
            self.stats.pool_exhausted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        // "we also include the other side" (Fig. 5 lines 22-25).
        let inw = ctx.insert_local_flow(translated.key(), NatEntry::Inward { external, internal });
        if inw == InsertOutcome::TableFull {
            ctx.remove_local_flow(&tuple.key());
            self.pool.lock().push(port);
            self.stats.pool_exhausted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        self.stats.translations.fetch_add(1, Ordering::Relaxed);

        pkt.rewrite_src(external.0, external.1)
            .expect("TCP packet rewrites");
        Verdict::Forward
    }

    fn regular_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<NatEntry>) -> Verdict {
        let mut misses = 0;
        let verdict = self.translate_data(pkt, ctx, &mut misses);
        if misses > 0 {
            self.stats
                .no_translation
                .fetch_add(misses, Ordering::Relaxed);
        }
        verdict
    }

    fn handle_batch(
        &self,
        pkts: &mut [Packet],
        conn: &[bool],
        ctx: &mut dyn FlowStateApi<NatEntry>,
        out: &mut sprayer::api::VerdictSink,
    ) {
        debug_assert_eq!(pkts.len(), conn.len());
        // The steady state is pure translation (Fig. 5's lookup+rewrite);
        // batch it with one miss-counter flush. Connection packets keep
        // the scalar setup/teardown machinery (pool, paired entries).
        let mut misses = 0u64;
        for (pkt, &is_conn) in pkts.iter_mut().zip(conn) {
            let verdict = if is_conn {
                self.connection_packets(pkt, ctx)
            } else {
                self.translate_data(pkt, ctx, &mut misses)
            };
            out.push(verdict);
        }
        if misses > 0 {
            self.stats
                .no_translation
                .fetch_add(misses, Ordering::Relaxed);
        }
    }

    fn merge_replica(
        &self,
        _key: &FlowKey,
        existing: Option<&NatEntry>,
        incoming: &NatEntry,
        newer: bool,
    ) -> ReplicaMerge<NatEntry> {
        // Union the per-direction FIN bits of Outward entries (monotone
        // set, commutative); the translation endpoints are written once
        // at SYN time. Never `Remove` here: the port pool is global
        // state only the packet-handling teardown path may touch, so a
        // replica whose union completes the close keeps the entry until
        // either the origin's teardown ships the `Del`s or a FIN
        // retransmit / RST lands locally and finishes the job (the
        // guarded pool push makes that teardown idempotent).
        if let (
            Some(NatEntry::Outward {
                fins: existing_fins,
                ..
            }),
            NatEntry::Outward {
                internal,
                external,
                fins,
            },
        ) = (existing, incoming)
        {
            return ReplicaMerge::Store(NatEntry::Outward {
                internal: *internal,
                external: *external,
                fins: existing_fins | fins,
            });
        }
        if newer {
            ReplicaMerge::Store(incoming.clone())
        } else {
            ReplicaMerge::Keep
        }
    }

    fn freeze_flow(&self, _key: &sprayer_net::FlowKey, _state: &mut NatEntry) {
        // NatEntry carries no core-local references — endpoints and FIN
        // counts travel as-is. The export is still accounted so the port
        // pool can be audited: a flow frozen but never adopted would
        // strand its external port (teardown resolves the port through
        // the table entry).
        self.stats.frozen.fetch_add(1, Ordering::Relaxed);
    }

    fn adopt_flow(&self, _key: &sprayer_net::FlowKey, _state: &mut NatEntry, _new_core: usize) {
        // Note the new owner may break the designated-core alignment the
        // port was chosen for (select_port aligned both sides under the
        // *old* map); correctness is unaffected — regular packets read
        // foreign state — and connection packets simply redirect to the
        // new designated core.
        self.stats.adopted.fetch_add(1, Ordering::Relaxed);
    }

    fn evict_flow(&self, _key: &FlowKey, state: &mut NatEntry, _reason: EvictReason) {
        // The Outward entry owns the external port: return it to the
        // pool when the lifecycle reclaims the entry, or the translation
        // leaks the port forever. The push reuses the teardown guard so
        // a duplicate eviction (SCR's accepted replication races, or an
        // eviction racing a FIN teardown) cannot double-free. The paired
        // Inward entry is left to its own idle expiry — evicting it
        // frees nothing, deliberately: only the Outward owner may
        // release the port, so the pair's two evictions release exactly
        // once.
        let NatEntry::Outward { external, .. } = state else {
            return;
        };
        let mut pool = self.pool.lock();
        if !pool.contains(&external.1) {
            pool.push(external.1);
            self.stats.ports_reclaimed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::scr::UpdateOp;
    use sprayer::tables::LocalTables;
    use sprayer_net::PacketBuilder;

    const CLIENT: u32 = 0x0a00_0001; // 10.0.0.1
    const SERVER: u32 = 0x5db8_d822; // 93.184.216.34
    const NAT_IP: u32 = 0xc633_640a; // 198.51.100.10

    fn conn() -> FiveTuple {
        FiveTuple::tcp(CLIENT, 40_000, SERVER, 443)
    }

    struct Harness {
        nat: NatNf,
        tables: LocalTables<NatEntry>,
        map: CoreMap,
    }

    impl Harness {
        fn new() -> Self {
            let map = CoreMap::new(DispatchMode::Sprayer, 8);
            Harness {
                nat: NatNf::new(NAT_IP, 10_000..10_128),
                tables: LocalTables::new(map.clone(), 1024),
                map,
            }
        }

        /// Run a packet through the right handler on the right core, as
        /// the runtime would.
        fn run(&mut self, pkt: &mut Packet) -> Verdict {
            let tuple = pkt.tuple().unwrap();
            if pkt.is_connection_packet() {
                let core = self.map.designated_for_tuple(&tuple);
                let mut ctx = self.tables.ctx(core);
                self.nat.connection_packets(pkt, &mut ctx)
            } else {
                // Regular packets may run anywhere; pick an arbitrary core
                // different from the designated one to prove get_flow works.
                let core = (self.map.designated_for_tuple(&tuple) + 3) % 8;
                let mut ctx = self.tables.ctx(core);
                self.nat.regular_packets(pkt, &mut ctx)
            }
        }
    }

    #[test]
    fn syn_allocates_and_translates() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        assert_eq!(h.run(&mut syn), Verdict::Forward);
        let t = syn.tuple().unwrap();
        assert_eq!(
            t.src_addr, NAT_IP,
            "source must be rewritten to the external IP"
        );
        assert!((10_000..10_128).contains(&t.src_port));
        assert_eq!(t.dst_addr, SERVER);
        assert_eq!(h.nat.pool_len(), 127);
        assert_eq!(h.nat.stats.translations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn both_directions_translate_via_regular_packets() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        h.run(&mut syn);
        let ext_port = syn.tuple().unwrap().src_port;

        // Outbound data.
        let mut data = PacketBuilder::new().tcp(conn(), 1, 1, TcpFlags::ACK, b"req");
        assert_eq!(h.run(&mut data), Verdict::Forward);
        assert_eq!(data.tuple().unwrap().src_addr, NAT_IP);
        assert_eq!(data.tuple().unwrap().src_port, ext_port);

        // Inbound reply addresses the external endpoint.
        let reply_tuple = FiveTuple::tcp(SERVER, 443, NAT_IP, ext_port);
        let mut reply = PacketBuilder::new().tcp(reply_tuple, 9, 2, TcpFlags::ACK, b"resp");
        assert_eq!(h.run(&mut reply), Verdict::Forward);
        let rt = reply.tuple().unwrap();
        assert_eq!(
            (rt.dst_addr, rt.dst_port),
            (CLIENT, 40_000),
            "dst restored to client"
        );
    }

    #[test]
    fn syn_ack_is_treated_as_regular() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        h.run(&mut syn);
        let ext_port = syn.tuple().unwrap().src_port;

        let synack_tuple = FiveTuple::tcp(SERVER, 443, NAT_IP, ext_port);
        let mut synack =
            PacketBuilder::new().tcp(synack_tuple, 0, 1, TcpFlags::SYN | TcpFlags::ACK, b"");
        assert_eq!(h.run(&mut synack), Verdict::Forward);
        assert_eq!(synack.tuple().unwrap().dst_addr, CLIENT);
        // No extra pool allocation happened.
        assert_eq!(h.nat.pool_len(), 127);
    }

    #[test]
    fn selected_port_preserves_designated_core() {
        let mut h = Harness::new();
        for i in 0..64u32 {
            let c = FiveTuple::tcp(CLIENT + i, 40_000 + (i as u16), SERVER, 443);
            let mut syn = PacketBuilder::new().tcp(c, 0, 0, TcpFlags::SYN, b"");
            if h.run(&mut syn) == Verdict::Forward {
                let translated = syn.tuple().unwrap();
                assert_eq!(
                    h.map.designated_for_tuple(&c),
                    h.map.designated_for_tuple(&translated),
                    "flow {i}: external port must keep the designated core"
                );
            }
        }
    }

    #[test]
    fn eviction_hook_reclaims_the_port_exactly_once() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        h.run(&mut syn);
        let ext_port = syn.tuple().unwrap().src_port;
        assert_eq!(h.nat.pool_len(), 127);

        // The lifecycle reclaims both entries of the pair (order
        // mirrors an idle sweep: the Outward entry first).
        let orig_key = conn().key();
        let trans_key = FiveTuple::tcp(NAT_IP, ext_port, SERVER, 443).key();
        let core = h.map.designated_for_key(&orig_key);
        let mut ctx = h.tables.ctx(core);
        let mut outward = ctx.remove_local_flow(&orig_key).expect("outward entry");
        h.nat.evict_flow(&orig_key, &mut outward, EvictReason::Idle);
        assert_eq!(h.nat.pool_len(), 128, "outward eviction frees the port");
        assert_eq!(h.nat.stats.ports_reclaimed.load(Ordering::Relaxed), 1);

        // A duplicate eviction of the same entry (replication race)
        // must not double-free...
        h.nat
            .evict_flow(&orig_key, &mut outward.clone(), EvictReason::Capacity);
        assert_eq!(h.nat.pool_len(), 128);
        assert_eq!(h.nat.stats.ports_reclaimed.load(Ordering::Relaxed), 1);

        // ...and the orphaned Inward pair frees nothing either.
        let inward_core = h.map.designated_for_key(&trans_key);
        let mut ctx = h.tables.ctx(inward_core);
        if let Some(mut inward) = ctx.remove_local_flow(&trans_key) {
            h.nat.evict_flow(&trans_key, &mut inward, EvictReason::Idle);
        }
        assert_eq!(h.nat.pool_len(), 128);
        assert_eq!(
            h.nat.pool.lock().iter().filter(|p| **p == ext_port).count(),
            1,
            "the port must appear in the pool exactly once"
        );
    }

    #[test]
    fn packets_without_translation_are_dropped() {
        let mut h = Harness::new();
        let mut stray = PacketBuilder::new().tcp(conn(), 5, 5, TcpFlags::ACK, b"");
        assert_eq!(h.run(&mut stray), Verdict::Drop);
        assert_eq!(h.nat.stats.no_translation.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rst_tears_down_and_returns_port() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        h.run(&mut syn);
        assert_eq!(h.nat.pool_len(), 127);

        let mut rst = PacketBuilder::new().tcp(conn(), 1, 0, TcpFlags::RST, b"");
        assert_eq!(h.run(&mut rst), Verdict::Forward);
        assert_eq!(h.nat.pool_len(), 128, "port must return to the pool");
        assert_eq!(h.nat.stats.teardowns.load(Ordering::Relaxed), 1);

        // Subsequent data is dropped.
        let mut data = PacketBuilder::new().tcp(conn(), 2, 0, TcpFlags::ACK, b"");
        assert_eq!(h.run(&mut data), Verdict::Drop);
    }

    #[test]
    fn two_fins_tear_down() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        h.run(&mut syn);
        let ext_port = syn.tuple().unwrap().src_port;

        let mut fin1 = PacketBuilder::new().tcp(conn(), 10, 1, TcpFlags::FIN | TcpFlags::ACK, b"");
        assert_eq!(h.run(&mut fin1), Verdict::Forward);
        assert_eq!(
            fin1.tuple().unwrap().src_addr,
            NAT_IP,
            "FIN is still translated"
        );
        assert_eq!(h.nat.pool_len(), 127, "one FIN does not tear down");

        let fin2_tuple = FiveTuple::tcp(SERVER, 443, NAT_IP, ext_port);
        let mut fin2 =
            PacketBuilder::new().tcp(fin2_tuple, 20, 11, TcpFlags::FIN | TcpFlags::ACK, b"");
        assert_eq!(h.run(&mut fin2), Verdict::Forward);
        assert_eq!(h.nat.pool_len(), 128, "second FIN frees the port");
    }

    #[test]
    fn pool_exhaustion_drops_new_connections() {
        let map = CoreMap::new(DispatchMode::Sprayer, 8);
        let mut tables: LocalTables<NatEntry> = LocalTables::new(map.clone(), 1024);
        let nat = NatNf::new(NAT_IP, 10_000..10_001); // one port

        let mut accepted = 0;
        let mut dropped = 0;
        for i in 0..16u32 {
            let c = FiveTuple::tcp(CLIENT + i, 40_000, SERVER, 443);
            let core = map.designated_for_tuple(&c);
            let mut ctx = tables.ctx(core);
            let mut syn = PacketBuilder::new().tcp(c, 0, 0, TcpFlags::SYN, b"");
            match nat.connection_packets(&mut syn, &mut ctx) {
                Verdict::Forward => accepted += 1,
                Verdict::Drop => dropped += 1,
            }
        }
        // The single port can serve at most one connection — and only one
        // whose designated core matches; the rest must be dropped.
        assert!(accepted <= 1);
        assert_eq!(accepted + dropped, 16);
        assert!(nat.stats.pool_exhausted.load(Ordering::Relaxed) >= 15);
    }

    #[test]
    fn migration_preserves_translations_and_pool_accounting() {
        // Open connections under an elastic RSS map, shrink 4 -> 2 (the
        // migration-heavy path), and verify: every export was imported
        // (no port can leak), both directions still translate, and
        // teardown still returns the port — through migrated entries.
        let map = CoreMap::elastic(DispatchMode::Rss, 4);
        let mut tables: LocalTables<NatEntry> = LocalTables::new(map.clone(), 1024);
        let nat = NatNf::new(NAT_IP, 10_000..10_128);

        let conns: Vec<FiveTuple> = (0..32u32)
            .map(|i| FiveTuple::tcp(CLIENT + i, 40_000, SERVER, 443))
            .collect();
        let mut ext = Vec::new();
        for c in &conns {
            let mut syn = PacketBuilder::new().tcp(*c, 0, 0, TcpFlags::SYN, b"");
            let core = map.designated_for_tuple(c);
            assert_eq!(
                nat.connection_packets(&mut syn, &mut tables.ctx(core)),
                Verdict::Forward
            );
            ext.push(syn.tuple().unwrap().src_port);
        }

        let new_map = map.rescaled(2);
        let moved = tables.rescale(new_map.clone(), &mut |key, state, _from, to| {
            nat.freeze_flow(key, state);
            nat.adopt_flow(key, state, to);
        });
        assert!(moved.migrated_flows > 0, "RSS shrink must migrate entries");
        assert_eq!(
            nat.stats.frozen.load(Ordering::Relaxed),
            moved.migrated_flows,
            "one export per migrated entry"
        );
        assert_eq!(
            nat.stats.frozen.load(Ordering::Relaxed),
            nat.stats.adopted.load(Ordering::Relaxed),
            "every exported entry must be imported (port-leak audit)"
        );

        // Both directions still translate through the migrated tables.
        for (c, port) in conns.iter().zip(&ext) {
            let mut data = PacketBuilder::new().tcp(*c, 1, 1, TcpFlags::ACK, b"req");
            assert_eq!(
                nat.regular_packets(&mut data, &mut tables.ctx(0)),
                Verdict::Forward
            );
            assert_eq!(data.tuple().unwrap().src_port, *port);
            let reply = FiveTuple::tcp(SERVER, 443, NAT_IP, *port);
            let mut rp = PacketBuilder::new().tcp(reply, 9, 2, TcpFlags::ACK, b"resp");
            assert_eq!(
                nat.regular_packets(&mut rp, &mut tables.ctx(1)),
                Verdict::Forward
            );
            assert_eq!(rp.tuple().unwrap().dst_addr, CLIENT + (c.src_addr - CLIENT));
        }

        // Teardown through the *new* designated core frees every port.
        assert_eq!(nat.pool_len(), 128 - 32);
        for c in &conns {
            let core = new_map.designated_for_tuple(c);
            let mut rst = PacketBuilder::new().tcp(*c, 2, 0, TcpFlags::RST, b"");
            assert_eq!(
                nat.connection_packets(&mut rst, &mut tables.ctx(core)),
                Verdict::Forward
            );
        }
        assert_eq!(nat.pool_len(), 128, "all ports back after teardown");
    }

    #[test]
    fn checksums_remain_valid_after_translation() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        h.run(&mut syn);
        let mut data = PacketBuilder::new().tcp(conn(), 1, 1, TcpFlags::ACK, b"payload");
        h.run(&mut data);
        // Reparsing verifies the IP checksum; verify TCP via pseudo-header.
        let reparsed = Packet::parse(data.bytes().to_vec()).unwrap();
        let l3 = reparsed.meta().l3_offset;
        let ip = sprayer_net::Ipv4Header::parse(&reparsed.bytes()[l3..]).unwrap();
        let l4 = l3 + ip.header_len();
        let seg = ip.total_len as usize - ip.header_len();
        assert!(sprayer_net::TcpHeader::verify_checksum(
            ip.pseudo_header(),
            &reparsed.bytes()[l4..l4 + seg]
        ));
    }

    #[test]
    fn replicate_ships_both_sides_of_the_translation() {
        // Tracked replication under SCR: the SYN installs both entries
        // → two Puts; a pure data read ships nothing; teardown removes
        // both entries → two Dels (the paired entry must not stay live
        // on peers).
        let map = CoreMap::new(DispatchMode::Scr, 8);
        let mut tables: LocalTables<NatEntry> = LocalTables::new(map, 1024);
        let nat = NatNf::new(NAT_IP, 10_000..10_128);
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        assert_eq!(
            nat.connection_packets(&mut syn, &mut tables.ctx(0)),
            Verdict::Forward
        );
        // The SYN left the handler rewritten: its tuple now hashes to
        // the Inward (translated) key only.
        let trans_key = syn.tuple().unwrap().key();
        let orig_key = conn().key();
        assert_ne!(trans_key, orig_key);

        let mut ops = Vec::new();
        nat.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert_eq!(ops.len(), 2, "the paired entry must ship too: {ops:?}");
        for key in [orig_key, trans_key] {
            let op = ops
                .iter()
                .find(|op| *op.key() == key)
                .expect("both sides shipped");
            match op {
                UpdateOp::Put(key, state) => {
                    assert_eq!(tables.ctx(0).get_local_flow(key).as_ref(), Some(state));
                }
                UpdateOp::Del(_) => panic!("live translation must ship Puts"),
            }
        }
        tables.clear_batch_log(0);

        // A data packet only reads the translation — nothing ships.
        let mut data = PacketBuilder::new().tcp(conn(), 1, 1, TcpFlags::ACK, b"req");
        assert_eq!(
            nat.regular_packets(&mut data, &mut tables.ctx(0)),
            Verdict::Forward
        );
        let mut ops = Vec::new();
        nat.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert!(ops.is_empty(), "reads must not ship: {ops:?}");

        // Teardown removes both entries and ships a Del for each.
        let mut rst = PacketBuilder::new().tcp(conn(), 2, 2, TcpFlags::RST, b"");
        nat.connection_packets(&mut rst, &mut tables.ctx(0));
        let mut ops = Vec::new();
        nat.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert_eq!(ops.len(), 2, "teardown must ship both Dels: {ops:?}");
        assert!(ops
            .iter()
            .any(|op| matches!(op, UpdateOp::Del(k) if *k == orig_key)));
        assert!(ops
            .iter()
            .any(|op| matches!(op, UpdateOp::Del(k) if *k == trans_key)));
    }

    #[test]
    fn merge_unions_outward_fins_and_never_removes() {
        let nat = NatNf::new(NAT_IP, 10_000..10_001);
        let k = conn().key();
        let mk = |fins| NatEntry::Outward {
            internal: (CLIENT, 40_000),
            external: (NAT_IP, 10_000),
            fins,
        };
        // Opposite half-closes union; the entry survives the merge (the
        // teardown path owns the pool) no matter which copy is newer.
        for newer in [true, false] {
            assert_eq!(
                nat.merge_replica(&k, Some(&mk(0b01)), &mk(0b10), newer),
                ReplicaMerge::Store(mk(0b11))
            );
        }
        // Non-Outward pairs fall back to last-writer-wins.
        let inw = NatEntry::Inward {
            external: (NAT_IP, 10_000),
            internal: (CLIENT, 40_000),
        };
        assert_eq!(
            nat.merge_replica(&k, Some(&mk(0b01)), &inw, true),
            ReplicaMerge::Store(inw.clone())
        );
        assert_eq!(
            nat.merge_replica(&k, Some(&mk(0b01)), &inw, false),
            ReplicaMerge::Keep
        );
    }

    #[test]
    fn duplicate_teardown_cannot_double_free_a_port() {
        let mut h = Harness::new();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        h.run(&mut syn);
        let port = syn.tuple().unwrap().src_port;
        assert_eq!(h.nat.pool_len(), 127);
        // A peer that saw the same completed FIN pair already returned
        // the port (under SCR teardown can run on two cores for one
        // connection); the local teardown's push must be a no-op.
        h.nat.pool.lock().push(port);
        let mut rst = PacketBuilder::new().tcp(conn(), 2, 0, TcpFlags::RST, b"");
        h.run(&mut rst);
        assert_eq!(h.nat.pool_len(), 128);
        assert_eq!(
            h.nat.pool.lock().iter().filter(|p| **p == port).count(),
            1,
            "the guarded push must not duplicate the port"
        );
    }
}
