//! An IPv4→IPv6 translator (stateful NAT64-style, RFC 6146 flavored).
//!
//! Shares Table 1's first row with the NAT: a **flow map** (per-flow,
//! read every packet, written at flow start/end) and a **pool of
//! IPs/ports** (global, written at flow start/end). The translator
//! rewrites IPv4 TCP packets from legacy clients into IPv6 packets
//! toward v6-only servers, tracking per-connection port bindings.
//!
//! Like the NAT, the designated-core discipline holds because both
//! directions of a binding are keyed and stored on the v4 connection's
//! designated core; the v6-side reverse lookup is by the allocated
//! (address, port) binding carried in the flow entry.
//!
//! The data path emits genuine IPv6 frames (via `sprayer-net`'s
//! [`sprayer_net::Ipv6Header`]) with recomputed TCP checksums over the
//! v6 pseudo-header.

use parking_lot::Mutex;
use sprayer::api::{
    Access, FlowStateApi, InsertOutcome, NetworkFunction, NfDescriptor, Scope, Verdict,
};
use sprayer_net::{EtherType, EthernetHeader, Ipv6Header, MacAddr, Packet, TcpFlags, TcpHeader};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-flow binding: the v6 source endpoint this v4 connection maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Translator-owned v6 source address for this binding.
    pub v6_src: [u8; 16],
    /// Allocated source port on the v6 side.
    pub v6_port: u16,
    /// FINs observed; removed at 2 or on RST.
    pub fins: u8,
}

/// The IPv4→IPv6 translator NF.
pub struct Nat64Nf {
    /// The translator's v6 prefix for synthesizing server addresses
    /// (RFC 6052's 96-bit prefix convention: server v6 = prefix ++ v4).
    prefix96: [u8; 12],
    /// The translator's own v6 address used as the source of translated
    /// packets.
    v6_self: [u8; 16],
    /// Free source ports on the v6 side (global pool, flow-writes only).
    pool: Mutex<Vec<u16>>,
    /// Connections translated.
    pub translations: AtomicU64,
    /// SYNs dropped on pool exhaustion.
    pub pool_exhausted: AtomicU64,
    /// Packets dropped for missing bindings.
    pub no_binding: AtomicU64,
}

impl Nat64Nf {
    /// A translator with the given RFC 6052 prefix and port range.
    pub fn new(prefix96: [u8; 12], v6_self: [u8; 16], ports: std::ops::Range<u16>) -> Self {
        Nat64Nf {
            prefix96,
            v6_self,
            pool: Mutex::new(ports.rev().collect()),
            translations: AtomicU64::new(0),
            pool_exhausted: AtomicU64::new(0),
            no_binding: AtomicU64::new(0),
        }
    }

    /// Free ports remaining.
    pub fn pool_len(&self) -> usize {
        self.pool.lock().len()
    }

    /// Synthesize the v6 address embedding a v4 server address.
    pub fn embed(&self, v4: u32) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..12].copy_from_slice(&self.prefix96);
        out[12..].copy_from_slice(&v4.to_be_bytes());
        out
    }

    /// Translate a v4 TCP packet into a fresh v6 frame.
    fn translate(&self, pkt: &Packet, binding: &Binding) -> Option<Packet> {
        let tuple = pkt.tuple()?;
        let l4 = pkt.meta().l4_offset?;
        let tcp = TcpHeader::parse(&pkt.bytes()[l4..]).ok()?;
        let payload = pkt.payload()?;

        let mut out_tcp = tcp.clone();
        out_tcp.src_port = binding.v6_port;
        // Destination port unchanged.
        let tcp_len = (out_tcp.header_len() + payload.len()) as u16;

        let ip6 = Ipv6Header::simple(binding.v6_src, self.embed(tuple.dst_addr), 6, tcp_len);
        let frame_len = 14 + sprayer_net::IPV6_HEADER_LEN + usize::from(tcp_len);
        let mut data = vec![0u8; frame_len.max(60)];
        EthernetHeader {
            dst: MacAddr::from_index(6),
            src: MacAddr::from_index(4),
            ethertype: EtherType::Ipv6,
        }
        .emit(&mut data)
        .ok()?;
        ip6.emit(&mut data[14..]).ok()?;
        let l4o = 14 + sprayer_net::IPV6_HEADER_LEN;
        let hlen = out_tcp
            .emit(&mut data[l4o..], ip6.pseudo_header(), payload)
            .ok()?;
        data[l4o + hlen..l4o + hlen + payload.len()].copy_from_slice(payload);
        Packet::parse(data).ok()
    }
}

impl NetworkFunction for Nat64Nf {
    type Flow = Binding;

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("IPv4 to IPv6")
            .with_state("Flow map", Scope::PerFlow, Access::Read, Access::ReadWrite)
            .with_state(
                "Pool of IPs/ports",
                Scope::Global,
                Access::None,
                Access::ReadWrite,
            )
    }

    fn connection_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<Binding>) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Forward;
        };
        let flags = pkt.meta().tcp_flags.unwrap_or_default();
        let key = tuple.key();

        if flags.contains(TcpFlags::RST) {
            if let Some(b) = ctx.remove_local_flow(&key) {
                self.pool.lock().push(b.v6_port);
            }
            return Verdict::Forward;
        }
        if flags.contains(TcpFlags::FIN) {
            let mut fins = 0;
            ctx.modify_local_flow(&key, &mut |b| {
                b.fins += 1;
                fins = b.fins;
            });
            let verdict = self.regular_packets(pkt, ctx);
            if fins >= 2 {
                if let Some(b) = ctx.remove_local_flow(&key) {
                    self.pool.lock().push(b.v6_port);
                }
            }
            return verdict;
        }
        if !flags.contains(TcpFlags::SYN) || flags.contains(TcpFlags::ACK) {
            return self.regular_packets(pkt, ctx);
        }
        if ctx.get_local_flow(&key).is_some() {
            return self.regular_packets(pkt, ctx); // retransmitted SYN
        }

        let Some(port) = self.pool.lock().pop() else {
            self.pool_exhausted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        };
        let binding = Binding {
            v6_src: self.v6_self,
            v6_port: port,
            fins: 0,
        };
        if ctx.insert_local_flow(key, binding.clone()) == InsertOutcome::TableFull {
            self.pool.lock().push(port);
            self.pool_exhausted.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }
        self.translations.fetch_add(1, Ordering::Relaxed);
        match self.translate(pkt, &binding) {
            Some(v6) => {
                *pkt = v6;
                Verdict::Forward
            }
            None => Verdict::Drop,
        }
    }

    fn regular_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<Binding>) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Forward;
        };
        match ctx.get_flow(&tuple.key()) {
            Some(binding) => match self.translate(pkt, &binding) {
                Some(v6) => {
                    *pkt = v6;
                    Verdict::Forward
                }
                None => Verdict::Drop,
            },
            None => {
                self.no_binding.fetch_add(1, Ordering::Relaxed);
                Verdict::Drop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::tables::LocalTables;
    use sprayer_net::{FiveTuple, PacketBuilder};

    const PREFIX: [u8; 12] = [0x00, 0x64, 0xff, 0x9b, 0, 0, 0, 0, 0, 0, 0, 0]; // 64:ff9b::/96
    const SELF6: [u8; 16] = [
        0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x64,
    ];

    fn harness() -> (Nat64Nf, LocalTables<Binding>, CoreMap) {
        let map = CoreMap::new(DispatchMode::Sprayer, 8);
        (
            Nat64Nf::new(PREFIX, SELF6, 20_000..20_100),
            LocalTables::new(map.clone(), 256),
            map,
        )
    }

    fn conn() -> FiveTuple {
        FiveTuple::tcp(0x0a00_0001, 40_000, 0x5db8_d822, 80)
    }

    #[test]
    fn syn_produces_an_ipv6_frame() {
        let (nf, mut tables, map) = harness();
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        let core = map.designated_for_tuple(&conn());
        assert_eq!(
            nf.connection_packets(&mut syn, &mut tables.ctx(core)),
            Verdict::Forward
        );

        assert_eq!(syn.meta().ethertype, EtherType::Ipv6);
        let ip6 = Ipv6Header::parse(&syn.bytes()[14..]).unwrap();
        assert_eq!(ip6.src, SELF6);
        assert_eq!(
            &ip6.dst[..12],
            &PREFIX,
            "server address embeds the RFC 6052 prefix"
        );
        assert_eq!(&ip6.dst[12..], &0x5db8_d822u32.to_be_bytes());
        assert_eq!(nf.pool_len(), 99);
    }

    #[test]
    fn translated_checksum_verifies_over_v6_pseudo_header() {
        let (nf, mut tables, map) = harness();
        let core = map.designated_for_tuple(&conn());
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        nf.connection_packets(&mut syn, &mut tables.ctx(core));
        let mut data = PacketBuilder::new().tcp(conn(), 5, 1, TcpFlags::ACK, b"hello v6");
        assert_eq!(
            nf.regular_packets(&mut data, &mut tables.ctx(0)),
            Verdict::Forward
        );

        let ip6 = Ipv6Header::parse(&data.bytes()[14..]).unwrap();
        let l4 = 14 + sprayer_net::IPV6_HEADER_LEN;
        let seg = usize::from(ip6.payload_len);
        assert!(TcpHeader::verify_checksum(
            ip6.pseudo_header(),
            &data.bytes()[l4..l4 + seg]
        ));
        // Payload carried through.
        assert!(data.bytes()[l4..].windows(8).any(|w| w == b"hello v6"));
    }

    #[test]
    fn regular_packets_translate_from_any_core() {
        let (nf, mut tables, map) = harness();
        let core = map.designated_for_tuple(&conn());
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        nf.connection_packets(&mut syn, &mut tables.ctx(core));
        let syn_ip6 = Ipv6Header::parse(&syn.bytes()[14..]).unwrap();
        let syn_tcp = TcpHeader::parse(&syn.bytes()[14 + sprayer_net::IPV6_HEADER_LEN..]).unwrap();

        for c in 0..8 {
            let mut data = PacketBuilder::new().tcp(conn(), 9, 1, TcpFlags::ACK, b"x");
            assert_eq!(
                nf.regular_packets(&mut data, &mut tables.ctx(c)),
                Verdict::Forward
            );
            let ip6 = Ipv6Header::parse(&data.bytes()[14..]).unwrap();
            let tcp = TcpHeader::parse(&data.bytes()[14 + sprayer_net::IPV6_HEADER_LEN..]).unwrap();
            assert_eq!(ip6.src, syn_ip6.src, "stable binding address");
            assert_eq!(tcp.src_port, syn_tcp.src_port, "stable binding port");
        }
    }

    #[test]
    fn unbound_traffic_is_dropped() {
        let (nf, mut tables, _) = harness();
        let mut stray = PacketBuilder::new().tcp(conn(), 1, 1, TcpFlags::ACK, b"");
        assert_eq!(
            nf.regular_packets(&mut stray, &mut tables.ctx(0)),
            Verdict::Drop
        );
        assert_eq!(nf.no_binding.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn teardown_returns_the_port() {
        let (nf, mut tables, map) = harness();
        let core = map.designated_for_tuple(&conn());
        let mut syn = PacketBuilder::new().tcp(conn(), 0, 0, TcpFlags::SYN, b"");
        nf.connection_packets(&mut syn, &mut tables.ctx(core));
        assert_eq!(nf.pool_len(), 99);
        let mut rst = PacketBuilder::new().tcp(conn(), 1, 0, TcpFlags::RST, b"");
        nf.connection_packets(&mut rst, &mut tables.ctx(core));
        assert_eq!(nf.pool_len(), 100);
        assert_eq!(tables.total_entries(), 0);
    }

    #[test]
    fn pool_exhaustion_drops_new_connections() {
        let map = CoreMap::new(DispatchMode::Sprayer, 8);
        let mut tables: LocalTables<Binding> = LocalTables::new(map.clone(), 256);
        let nf = Nat64Nf::new(PREFIX, SELF6, 30_000..30_002);
        let mut ok = 0;
        for i in 0..5u32 {
            let t = FiveTuple::tcp(0x0a00_0001 + i, 40_000, 0x5db8_d822, 80);
            let core = map.designated_for_tuple(&t);
            let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
            if nf.connection_packets(&mut syn, &mut tables.ctx(core)) == Verdict::Forward {
                ok += 1;
            }
        }
        assert_eq!(ok, 2, "two ports, two connections");
        assert_eq!(nf.pool_exhausted.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn descriptor_matches_table_1_row() {
        let (nf, _, _) = harness();
        let d = nf.descriptor();
        assert!(d.sprayer_compatible);
        assert!(!d.writes_flow_state_per_packet());
        assert_eq!(d.states.len(), 2);
    }
}
