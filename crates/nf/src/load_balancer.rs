//! An L4 load balancer (VIP → backend pool).
//!
//! Table 1 row "Load Balancer":
//! * **flow–server map** — per-flow, read per packet, written per flow;
//! * **pool of servers** — global, written per flow (health/occupancy);
//! * **statistics** — global, written per packet (loose consistency is
//!   acceptable, so counters are per-core-ish relaxed atomics).
//!
//! Deployment model: clients address a virtual IP (VIP); the balancer
//! rewrites the destination to a backend and forwards. Return traffic
//! uses direct server return (DSR) and does not traverse the balancer —
//! the common high-performance configuration, and the one that keeps the
//! flow keyed by the (client ↔ VIP) connection only.

use sprayer::api::{Access, FlowStateApi, NetworkFunction, NfDescriptor, Scope, Verdict};
use sprayer_net::{Packet, TcpFlags};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A backend server endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Backend address.
    pub addr: u32,
    /// Backend port.
    pub port: u16,
}

/// Per-flow state: the backend assigned at SYN time.
pub type FlowServer = Backend;

/// The load balancer NF.
pub struct LoadBalancerNf {
    vip: (u32, u16),
    backends: Vec<Backend>,
    /// Round-robin cursor (global pool state).
    next: AtomicUsize,
    /// Per-backend active-connection gauges (global pool state).
    active: Vec<AtomicU64>,
    /// Packets forwarded (global statistics, RW per packet, loose).
    pub packets: AtomicU64,
    /// Connections balanced.
    pub connections: AtomicU64,
    /// Packets without an assigned backend.
    pub stray_drops: AtomicU64,
}

impl LoadBalancerNf {
    /// A balancer for `vip` over `backends` (must be non-empty).
    pub fn new(vip: (u32, u16), backends: Vec<Backend>) -> Self {
        assert!(
            !backends.is_empty(),
            "a load balancer needs at least one backend"
        );
        let active = backends.iter().map(|_| AtomicU64::new(0)).collect();
        LoadBalancerNf {
            vip,
            backends,
            next: AtomicUsize::new(0),
            active,
            packets: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            stray_drops: AtomicU64::new(0),
        }
    }

    /// Current per-backend active-connection counts.
    pub fn active_connections(&self) -> Vec<u64> {
        self.active
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    fn pick_backend(&self) -> (usize, Backend) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.backends.len();
        (idx, self.backends[idx])
    }

    fn backend_index(&self, b: &Backend) -> Option<usize> {
        self.backends.iter().position(|x| x == b)
    }
}

impl NetworkFunction for LoadBalancerNf {
    type Flow = FlowServer;

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("Load Balancer")
            .with_state(
                "Flow-server map",
                Scope::PerFlow,
                Access::Read,
                Access::ReadWrite,
            )
            .with_state(
                "Pool of servers",
                Scope::Global,
                Access::None,
                Access::ReadWrite,
            )
            .with_state("Statistics", Scope::Global, Access::ReadWrite, Access::None)
    }

    fn connection_packets(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<FlowServer>,
    ) -> Verdict {
        self.packets.fetch_add(1, Ordering::Relaxed);
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Drop;
        };
        if (tuple.dst_addr, tuple.dst_port) != self.vip {
            // Not VIP traffic; pass through untouched.
            return Verdict::Forward;
        }
        let flags = pkt.meta().tcp_flags.unwrap_or_default();
        let key = tuple.key();

        if flags.intersects(TcpFlags::RST | TcpFlags::FIN) {
            if let Some(backend) = ctx.get_local_flow(&key) {
                pkt.rewrite_dst(backend.addr, backend.port)
                    .expect("TCP rewrite");
                // Connection ends: release the slot. (A FIN-pair refinement
                // as in the NAT would also work; LBs typically time out.)
                if flags.contains(TcpFlags::RST) || flags.contains(TcpFlags::FIN) {
                    ctx.remove_local_flow(&key);
                    if let Some(i) = self.backend_index(&backend) {
                        let _ = self.active[i].fetch_update(
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                            |v| v.checked_sub(1),
                        );
                    }
                }
                return Verdict::Forward;
            }
            self.stray_drops.fetch_add(1, Ordering::Relaxed);
            return Verdict::Drop;
        }

        // First SYN assigns a backend; retransmitted SYNs reuse it.
        let backend = match ctx.get_local_flow(&key) {
            Some(b) => b,
            None => {
                let (idx, b) = self.pick_backend();
                ctx.insert_local_flow(key, b);
                self.active[idx].fetch_add(1, Ordering::Relaxed);
                self.connections.fetch_add(1, Ordering::Relaxed);
                b
            }
        };
        pkt.rewrite_dst(backend.addr, backend.port)
            .expect("TCP rewrite");
        Verdict::Forward
    }

    fn regular_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<FlowServer>) -> Verdict {
        self.packets.fetch_add(1, Ordering::Relaxed);
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Drop;
        };
        if (tuple.dst_addr, tuple.dst_port) != self.vip {
            return Verdict::Forward;
        }
        match ctx.get_flow(&tuple.key()) {
            Some(backend) => {
                pkt.rewrite_dst(backend.addr, backend.port)
                    .expect("TCP rewrite");
                Verdict::Forward
            }
            None => {
                self.stray_drops.fetch_add(1, Ordering::Relaxed);
                Verdict::Drop
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::tables::LocalTables;
    use sprayer_net::{FiveTuple, PacketBuilder};

    const VIP: (u32, u16) = (0xc633_6401, 80);

    fn backends() -> Vec<Backend> {
        vec![
            Backend {
                addr: 0x0a00_0101,
                port: 8080,
            },
            Backend {
                addr: 0x0a00_0102,
                port: 8080,
            },
            Backend {
                addr: 0x0a00_0103,
                port: 8080,
            },
        ]
    }

    fn harness() -> (LoadBalancerNf, LocalTables<FlowServer>, CoreMap) {
        let map = CoreMap::new(DispatchMode::Sprayer, 8);
        (
            LoadBalancerNf::new(VIP, backends()),
            LocalTables::new(map.clone(), 1024),
            map,
        )
    }

    fn client(i: u32) -> FiveTuple {
        FiveTuple::tcp(0x0a01_0000 + i, 40_000, VIP.0, VIP.1)
    }

    #[test]
    fn syn_assigns_backend_round_robin() {
        let (lb, mut tables, map) = harness();
        let mut seen = Vec::new();
        for i in 0..6 {
            let t = client(i);
            let core = map.designated_for_tuple(&t);
            let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
            assert_eq!(
                lb.connection_packets(&mut syn, &mut tables.ctx(core)),
                Verdict::Forward
            );
            seen.push(syn.tuple().unwrap().dst_addr);
        }
        // Round-robin: 3 backends used twice each.
        for b in backends() {
            assert_eq!(seen.iter().filter(|&&a| a == b.addr).count(), 2);
        }
        assert_eq!(lb.active_connections(), vec![2, 2, 2]);
    }

    #[test]
    fn data_follows_the_assigned_backend_from_any_core() {
        let (lb, mut tables, map) = harness();
        let t = client(9);
        let core = map.designated_for_tuple(&t);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        lb.connection_packets(&mut syn, &mut tables.ctx(core));
        let assigned = syn.tuple().unwrap().dst_addr;

        for spray_core in 0..8 {
            let mut data = PacketBuilder::new().tcp(t, 1, 1, TcpFlags::ACK, b"req");
            assert_eq!(
                lb.regular_packets(&mut data, &mut tables.ctx(spray_core)),
                Verdict::Forward
            );
            assert_eq!(
                data.tuple().unwrap().dst_addr,
                assigned,
                "core {spray_core}"
            );
        }
    }

    #[test]
    fn retransmitted_syn_keeps_backend() {
        let (lb, mut tables, map) = harness();
        let t = client(1);
        let core = map.designated_for_tuple(&t);
        let mut syn1 = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        lb.connection_packets(&mut syn1, &mut tables.ctx(core));
        let mut syn2 = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        lb.connection_packets(&mut syn2, &mut tables.ctx(core));
        assert_eq!(
            syn1.tuple().unwrap().dst_addr,
            syn2.tuple().unwrap().dst_addr
        );
        assert_eq!(
            lb.connections.load(Ordering::Relaxed),
            1,
            "one logical connection"
        );
    }

    #[test]
    fn fin_releases_backend_slot() {
        let (lb, mut tables, map) = harness();
        let t = client(2);
        let core = map.designated_for_tuple(&t);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        lb.connection_packets(&mut syn, &mut tables.ctx(core));
        assert_eq!(lb.active_connections().iter().sum::<u64>(), 1);
        let mut fin = PacketBuilder::new().tcp(t, 5, 1, TcpFlags::FIN | TcpFlags::ACK, b"");
        assert_eq!(
            lb.connection_packets(&mut fin, &mut tables.ctx(core)),
            Verdict::Forward
        );
        assert_eq!(lb.active_connections().iter().sum::<u64>(), 0);
    }

    #[test]
    fn non_vip_traffic_passes_through() {
        let (lb, mut tables, _) = harness();
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let mut p = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, b"");
        assert_eq!(
            lb.regular_packets(&mut p, &mut tables.ctx(0)),
            Verdict::Forward
        );
        assert_eq!(p.tuple().unwrap(), t, "untouched");
    }

    #[test]
    fn stray_vip_data_is_dropped() {
        let (lb, mut tables, _) = harness();
        let mut p = PacketBuilder::new().tcp(client(7), 1, 1, TcpFlags::ACK, b"");
        assert_eq!(
            lb.regular_packets(&mut p, &mut tables.ctx(0)),
            Verdict::Drop
        );
        assert_eq!(lb.stray_drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backend_pool_rejected() {
        let _ = LoadBalancerNf::new(VIP, Vec::new());
    }
}
