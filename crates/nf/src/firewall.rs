//! A stateful firewall.
//!
//! Table 1 row "Firewall": connection context — per-flow, read on every
//! packet, written at flow start/end. The ACL itself is static
//! configuration, consulted only when connections open (a real firewall
//! does one ACL walk per connection, then fast-paths established flows —
//! exactly the pattern that makes it Sprayer-friendly).

use sprayer::api::{Access, FlowStateApi, NetworkFunction, NfDescriptor, Scope, Verdict};
use sprayer::scr::ReplicaMerge;
use sprayer_net::{FiveTuple, FlowKey, Packet, Protocol, TcpFlags};
use std::sync::atomic::{AtomicU64, Ordering};

/// Action of an ACL rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Admit the connection.
    Allow,
    /// Reject the connection.
    Deny,
}

/// One ACL rule; `None` fields are wildcards. First match wins.
#[derive(Debug, Clone, Copy)]
pub struct AclRule {
    /// Source prefix as (address, prefix length).
    pub src: Option<(u32, u8)>,
    /// Destination prefix.
    pub dst: Option<(u32, u8)>,
    /// Destination port.
    pub dst_port: Option<u16>,
    /// Protocol.
    pub protocol: Option<Protocol>,
    /// Verdict when matched.
    pub action: Action,
}

impl AclRule {
    /// Wildcard rule with the given action (use as the final default).
    pub fn default_action(action: Action) -> Self {
        AclRule {
            src: None,
            dst: None,
            dst_port: None,
            protocol: None,
            action,
        }
    }

    /// Allow traffic to a destination port.
    pub fn allow_dst_port(port: u16) -> Self {
        AclRule {
            dst_port: Some(port),
            ..Self::default_action(Action::Allow)
        }
    }

    fn prefix_match(prefix: (u32, u8), addr: u32) -> bool {
        let (net, len) = prefix;
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(len.min(32)));
        addr & mask == net & mask
    }

    fn matches(&self, t: &FiveTuple) -> bool {
        self.src.is_none_or(|p| Self::prefix_match(p, t.src_addr))
            && self.dst.is_none_or(|p| Self::prefix_match(p, t.dst_addr))
            && self.dst_port.is_none_or(|p| p == t.dst_port)
            && self.protocol.is_none_or(|p| p == t.protocol)
    }
}

/// Per-flow connection context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnContext {
    /// The connection passed the ACL at SYN time.
    pub allowed: bool,
    /// FIN directions observed, as a bitmask: bit 0 set when the
    /// canonical `lo` endpoint sent its FIN, bit 1 for `hi`. The
    /// context is removed at `0b11` (both directions closed) or on
    /// RST. A bitmask rather than a counter so replica merges are a
    /// commutative union — two half-closes racing through different
    /// cores under SCR cannot erase each other the way lost
    /// increments under last-writer-wins would.
    pub fins: u8,
}

/// Which half of the connection sent this directed packet: bit 0 for
/// the canonical `lo` endpoint, bit 1 for `hi` (shared with the
/// monitor, whose FIN bookkeeping has the same merge requirement).
pub(crate) fn fin_direction_bit(t: &FiveTuple, key: &FlowKey) -> u8 {
    if (t.src_addr, t.src_port) == key.lo {
        0b01
    } else {
        0b10
    }
}

/// The firewall NF.
pub struct FirewallNf {
    acl: Vec<AclRule>,
    /// Connections admitted.
    pub admitted: AtomicU64,
    /// Connections rejected by the ACL.
    pub rejected: AtomicU64,
    /// Packets dropped for lacking an admitted context.
    pub stray_drops: AtomicU64,
    /// Connection contexts moved by elastic reconfigurations (one count
    /// per [`NetworkFunction::freeze_flow`] /
    /// [`NetworkFunction::adopt_flow`] pair; the two hooks always run
    /// back-to-back per migrated entry).
    pub migrated_contexts: AtomicU64,
}

impl FirewallNf {
    /// A firewall with the given ACL (first match wins; unmatched
    /// connections are denied).
    pub fn new(acl: Vec<AclRule>) -> Self {
        FirewallNf {
            acl,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            stray_drops: AtomicU64::new(0),
            migrated_contexts: AtomicU64::new(0),
        }
    }

    fn acl_verdict(&self, t: &FiveTuple) -> Action {
        for rule in &self.acl {
            if rule.matches(t) {
                return rule.action;
            }
        }
        Action::Deny
    }

    /// The fast path for established traffic, with the stray counter
    /// accumulated by the caller so a batch touches the atomic once.
    fn admit_data(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<ConnContext>,
        stray: &mut u64,
    ) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Drop;
        };
        match ctx.get_flow(&tuple.key()) {
            Some(c) if c.allowed => Verdict::Forward,
            _ => {
                *stray += 1;
                Verdict::Drop
            }
        }
    }
}

impl NetworkFunction for FirewallNf {
    type Flow = ConnContext;

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("Firewall").with_state(
            "Connection context",
            Scope::PerFlow,
            Access::Read,
            Access::ReadWrite,
        )
    }

    fn connection_packets(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<ConnContext>,
    ) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Drop; // default-deny non-classifiable traffic
        };
        let flags = pkt.meta().tcp_flags.unwrap_or_default();
        let key = tuple.key();

        if flags.contains(TcpFlags::RST) {
            if ctx.remove_local_flow(&key).is_some() {
                return Verdict::Forward; // propagate the reset
            }
            return Verdict::Drop;
        }
        if flags.contains(TcpFlags::FIN) {
            let bit = fin_direction_bit(&tuple, &key);
            let mut fins = 0;
            let known = ctx.modify_local_flow(&key, &mut |c| {
                c.fins |= bit;
                fins = c.fins;
            });
            if !known {
                self.stray_drops.fetch_add(1, Ordering::Relaxed);
                return Verdict::Drop;
            }
            if fins == 0b11 {
                ctx.remove_local_flow(&key);
            }
            return Verdict::Forward;
        }
        // SYN (or SYN-ACK: the reverse direction shares the context).
        if let Some(c) = ctx.get_local_flow(&key) {
            return if c.allowed {
                Verdict::Forward
            } else {
                Verdict::Drop
            };
        }
        match self.acl_verdict(&tuple) {
            Action::Allow => {
                ctx.insert_local_flow(
                    key,
                    ConnContext {
                        allowed: true,
                        fins: 0,
                    },
                );
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Verdict::Forward
            }
            Action::Deny => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Verdict::Drop
            }
        }
    }

    fn regular_packets(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<ConnContext>,
    ) -> Verdict {
        let mut stray = 0;
        let verdict = self.admit_data(pkt, ctx, &mut stray);
        if stray > 0 {
            self.stray_drops.fetch_add(stray, Ordering::Relaxed);
        }
        verdict
    }

    fn handle_batch(
        &self,
        pkts: &mut [Packet],
        conn: &[bool],
        ctx: &mut dyn FlowStateApi<ConnContext>,
        out: &mut sprayer::api::VerdictSink,
    ) {
        debug_assert_eq!(pkts.len(), conn.len());
        // Regular packets dominate and only do a flow lookup; run them
        // through the fast path with one stray-counter flush per batch.
        // Connection packets (rare) take the scalar ACL machinery.
        let mut stray = 0u64;
        for (pkt, &is_conn) in pkts.iter_mut().zip(conn) {
            let verdict = if is_conn {
                self.connection_packets(pkt, ctx)
            } else {
                self.admit_data(pkt, ctx, &mut stray)
            };
            out.push(verdict);
        }
        if stray > 0 {
            self.stray_drops.fetch_add(stray, Ordering::Relaxed);
        }
    }

    fn merge_replica(
        &self,
        _key: &FlowKey,
        existing: Option<&ConnContext>,
        incoming: &ConnContext,
        _newer: bool,
    ) -> ReplicaMerge<ConnContext> {
        // FIN bits are a monotone set: union them regardless of which
        // update is newer, so half-closes racing through different
        // cores converge instead of losing one direction to
        // last-writer-wins. `allowed` is written once at SYN time and
        // never changes, so the incoming copy is authoritative.
        let fins = existing.map_or(0, |c| c.fins) | incoming.fins;
        if fins == 0b11 {
            // Both directions closed: the origin of whichever update
            // completed the pair removed the context locally; finish
            // the teardown here too.
            ReplicaMerge::Remove
        } else {
            ReplicaMerge::Store(ConnContext {
                allowed: incoming.allowed,
                fins,
            })
        }
    }

    fn freeze_flow(&self, _key: &sprayer_net::FlowKey, state: &mut ConnContext) {
        // The context travels verbatim: the ACL decision is made once at
        // SYN time and must NOT be re-evaluated on the new core — a rule
        // change between epochs would otherwise cut established flows,
        // which real firewalls guarantee against. Only a context that is
        // mid-teardown is worth flagging; it migrates too (the remaining
        // FIN may arrive after the rescale).
        debug_assert!(state.fins <= 0b11);
    }

    fn adopt_flow(&self, _key: &sprayer_net::FlowKey, _state: &mut ConnContext, _new_core: usize) {
        self.migrated_contexts.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::scr::UpdateOp;
    use sprayer::tables::LocalTables;
    use sprayer_net::PacketBuilder;

    fn harness() -> (FirewallNf, LocalTables<ConnContext>, CoreMap) {
        let acl = vec![
            AclRule::allow_dst_port(443),
            AclRule {
                src: Some((0x0a00_0000, 8)), // allow 10.0.0.0/8 anywhere
                ..AclRule::default_action(Action::Allow)
            },
            AclRule::default_action(Action::Deny),
        ];
        let map = CoreMap::new(DispatchMode::Sprayer, 8);
        (
            FirewallNf::new(acl),
            LocalTables::new(map.clone(), 1024),
            map,
        )
    }

    fn open(
        fw: &FirewallNf,
        tables: &mut LocalTables<ConnContext>,
        map: &CoreMap,
        t: FiveTuple,
    ) -> Verdict {
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        let core = map.designated_for_tuple(&t);
        fw.connection_packets(&mut syn, &mut tables.ctx(core))
    }

    #[test]
    fn allowed_port_admits_connection_and_data() {
        let (fw, mut tables, map) = harness();
        let t = FiveTuple::tcp(0xc0a8_0101, 50_000, 0x5db8_d822, 443);
        assert_eq!(open(&fw, &mut tables, &map, t), Verdict::Forward);

        // Data from a *different* core still passes (foreign read).
        let mut data = PacketBuilder::new().tcp(t, 1, 1, TcpFlags::ACK, b"x");
        let core = (map.designated_for_tuple(&t) + 1) % 8;
        assert_eq!(
            fw.regular_packets(&mut data, &mut tables.ctx(core)),
            Verdict::Forward
        );
        // Reverse direction too.
        let mut rev = PacketBuilder::new().tcp(t.reversed(), 2, 2, TcpFlags::ACK, b"y");
        assert_eq!(
            fw.regular_packets(&mut rev, &mut tables.ctx(core)),
            Verdict::Forward
        );
    }

    #[test]
    fn denied_connection_and_its_data_drop() {
        let (fw, mut tables, map) = harness();
        let t = FiveTuple::tcp(0xc0a8_0101, 50_000, 0x5db8_d822, 22);
        assert_eq!(open(&fw, &mut tables, &map, t), Verdict::Drop);
        assert_eq!(fw.rejected.load(Ordering::Relaxed), 1);

        let mut data = PacketBuilder::new().tcp(t, 1, 1, TcpFlags::ACK, b"x");
        assert_eq!(
            fw.regular_packets(&mut data, &mut tables.ctx(0)),
            Verdict::Drop
        );
        assert_eq!(fw.stray_drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn source_prefix_rule_matches() {
        let (fw, mut tables, map) = harness();
        let t = FiveTuple::tcp(0x0a01_0203, 1234, 0x5db8_d822, 9999);
        assert_eq!(
            open(&fw, &mut tables, &map, t),
            Verdict::Forward,
            "10/8 allowed"
        );
        let t2 = FiveTuple::tcp(0x0b01_0203, 1234, 0x5db8_d822, 9999);
        assert_eq!(
            open(&fw, &mut tables, &map, t2),
            Verdict::Drop,
            "11/8 denied"
        );
    }

    #[test]
    fn rst_removes_context() {
        let (fw, mut tables, map) = harness();
        let t = FiveTuple::tcp(0xc0a8_0101, 50_000, 0x5db8_d822, 443);
        open(&fw, &mut tables, &map, t);
        let core = map.designated_for_tuple(&t);
        let mut rst = PacketBuilder::new().tcp(t, 3, 0, TcpFlags::RST, b"");
        assert_eq!(
            fw.connection_packets(&mut rst, &mut tables.ctx(core)),
            Verdict::Forward
        );
        let mut data = PacketBuilder::new().tcp(t, 4, 0, TcpFlags::ACK, b"");
        assert_eq!(
            fw.regular_packets(&mut data, &mut tables.ctx(0)),
            Verdict::Drop
        );
    }

    #[test]
    fn fin_pair_closes_connection() {
        let (fw, mut tables, map) = harness();
        let t = FiveTuple::tcp(0xc0a8_0101, 50_000, 0x5db8_d822, 443);
        open(&fw, &mut tables, &map, t);
        let core = map.designated_for_tuple(&t);

        let mut fin1 = PacketBuilder::new().tcp(t, 5, 1, TcpFlags::FIN | TcpFlags::ACK, b"");
        assert_eq!(
            fw.connection_packets(&mut fin1, &mut tables.ctx(core)),
            Verdict::Forward
        );
        assert_eq!(tables.entries_on(core), 1, "context survives the first FIN");

        let mut fin2 =
            PacketBuilder::new().tcp(t.reversed(), 6, 6, TcpFlags::FIN | TcpFlags::ACK, b"");
        assert_eq!(
            fw.connection_packets(&mut fin2, &mut tables.ctx(core)),
            Verdict::Forward
        );
        assert_eq!(tables.entries_on(core), 0, "second FIN removes the context");
    }

    #[test]
    fn migrated_contexts_keep_their_acl_decision() {
        // Established flows survive an elastic rescale even if the rule
        // that admitted them would no longer match — the decision is
        // migrated, never re-evaluated. Half-closed flows migrate too.
        let acl = vec![AclRule::allow_dst_port(443)];
        let fw = FirewallNf::new(acl);
        let map = CoreMap::elastic(DispatchMode::Rss, 4);
        let mut tables: LocalTables<ConnContext> = LocalTables::new(map.clone(), 1024);

        let flows: Vec<FiveTuple> = (0..24u32)
            .map(|i| FiveTuple::tcp(0x0a00_0100 + i, 50_000, 0x5db8_d822, 443))
            .collect();
        for t in &flows {
            assert_eq!(open(&fw, &mut tables, &map, *t), Verdict::Forward);
        }
        // Half-close one flow before the rescale.
        let half = flows[0];
        let core = map.designated_for_tuple(&half);
        let mut fin = PacketBuilder::new().tcp(half, 5, 1, TcpFlags::FIN | TcpFlags::ACK, b"");
        fw.connection_packets(&mut fin, &mut tables.ctx(core));

        let new_map = map.rescaled(2);
        let moved = tables.rescale(new_map.clone(), &mut |key, state, _from, to| {
            fw.freeze_flow(key, state);
            fw.adopt_flow(key, state, to);
        });
        assert!(moved.migrated_flows > 0);
        assert_eq!(
            fw.migrated_contexts.load(Ordering::Relaxed),
            moved.migrated_flows
        );

        // Every admitted flow still passes data from any core.
        for t in &flows {
            let mut data = PacketBuilder::new().tcp(*t, 9, 9, TcpFlags::ACK, b"x");
            assert_eq!(
                fw.regular_packets(&mut data, &mut tables.ctx(1)),
                Verdict::Forward,
                "{t:?} lost its context in migration"
            );
        }
        // The half-closed flow's FIN count migrated with it: one more
        // FIN (from the peer) completes the close on the new core.
        let core = new_map.designated_for_tuple(&half);
        let mut fin2 =
            PacketBuilder::new().tcp(half.reversed(), 7, 6, TcpFlags::FIN | TcpFlags::ACK, b"");
        assert_eq!(
            fw.connection_packets(&mut fin2, &mut tables.ctx(core)),
            Verdict::Forward
        );
        let mut stray = PacketBuilder::new().tcp(half, 8, 7, TcpFlags::ACK, b"");
        assert_eq!(
            fw.regular_packets(&mut stray, &mut tables.ctx(0)),
            Verdict::Drop,
            "context must be gone after the second FIN"
        );
    }

    #[test]
    fn first_match_wins_ordering() {
        let acl = vec![
            AclRule {
                dst_port: Some(80),
                ..AclRule::default_action(Action::Deny)
            },
            AclRule::allow_dst_port(80),
        ];
        let fw = FirewallNf::new(acl);
        let t = FiveTuple::tcp(1, 2, 3, 80);
        assert_eq!(fw.acl_verdict(&t), Action::Deny);
    }

    #[test]
    fn prefix_matching_edges() {
        assert!(AclRule::prefix_match((0x0a000000, 8), 0x0aff_ffff));
        assert!(!AclRule::prefix_match((0x0a000000, 8), 0x0b00_0000));
        assert!(
            AclRule::prefix_match((0, 0), 0xdead_beef),
            "len 0 matches all"
        );
        assert!(AclRule::prefix_match((0x0a000001, 32), 0x0a000001));
        assert!(!AclRule::prefix_match((0x0a000001, 32), 0x0a000002));
    }

    #[test]
    fn replicate_ships_tracked_writes_and_skips_data_lookups() {
        // Under SCR the batch mutation log drives the default
        // `replicate_updates`: only keys the batch actually wrote or
        // removed ship — reads (data lookups, denied SYNs, stray
        // drops) must not, or a missing local entry would multicast a
        // `Del` that tombstones the flow on every replica.
        let acl = vec![AclRule::allow_dst_port(443)];
        let fw = FirewallNf::new(acl);
        let map = CoreMap::new(DispatchMode::Scr, 4);
        let mut tables: LocalTables<ConnContext> = LocalTables::new(map, 1024);
        let t = FiveTuple::tcp(0xc0a8_0101, 50_000, 0x5db8_d822, 443);

        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        assert_eq!(
            fw.connection_packets(&mut syn, &mut tables.ctx(0)),
            Verdict::Forward
        );
        // A data lookup on a flow this core never saw, and a denied
        // SYN: both read-only, neither may ship.
        let mut data =
            PacketBuilder::new().tcp(FiveTuple::tcp(7, 7, 7, 443), 1, 0, TcpFlags::ACK, b"x");
        assert_eq!(
            fw.regular_packets(&mut data, &mut tables.ctx(0)),
            Verdict::Drop
        );
        let mut denied =
            PacketBuilder::new().tcp(FiveTuple::tcp(8, 8, 8, 22), 0, 0, TcpFlags::SYN, b"");
        assert_eq!(
            fw.connection_packets(&mut denied, &mut tables.ctx(0)),
            Verdict::Drop
        );
        let mut ops = Vec::new();
        fw.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert!(matches!(&ops[..], [UpdateOp::Put(key, c)] if *key == t.key() && c.allowed));
        tables.clear_batch_log(0);

        // Full teardown (one FIN per direction) ships a Del.
        for tt in [t, t.reversed()] {
            let mut fin = PacketBuilder::new().tcp(tt, 5, 5, TcpFlags::FIN | TcpFlags::ACK, b"");
            fw.connection_packets(&mut fin, &mut tables.ctx(0));
        }
        let mut ops = Vec::new();
        fw.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert!(matches!(&ops[..], [UpdateOp::Del(key)] if *key == t.key()));
    }

    #[test]
    fn merge_unions_fin_directions() {
        let fw = FirewallNf::new(vec![]);
        let k = FiveTuple::tcp(1, 2, 3, 443).key();
        let lo_closed = ConnContext {
            allowed: true,
            fins: 0b01,
        };
        let hi_closed = ConnContext {
            allowed: true,
            fins: 0b10,
        };
        // Opposite half-closes complete the teardown no matter which
        // update the version guard calls newer.
        for newer in [true, false] {
            assert_eq!(
                fw.merge_replica(&k, Some(&lo_closed), &hi_closed, newer),
                ReplicaMerge::Remove
            );
        }
        // A duplicate of the same direction keeps the flow half-open.
        assert_eq!(
            fw.merge_replica(&k, Some(&lo_closed), &lo_closed, false),
            ReplicaMerge::Store(lo_closed)
        );
        // First sight of a flow stores the incoming context verbatim.
        assert_eq!(
            fw.merge_replica(&k, None, &hi_closed, true),
            ReplicaMerge::Store(hi_closed)
        );
    }

    #[test]
    fn same_direction_fin_retransmit_does_not_close() {
        let (fw, mut tables, map) = harness();
        let t = FiveTuple::tcp(0xc0a8_0101, 50_000, 0x5db8_d822, 443);
        open(&fw, &mut tables, &map, t);
        let core = map.designated_for_tuple(&t);
        // Two FINs from the same endpoint (a retransmit) are one
        // direction, not a closed connection.
        for seq in [5, 6] {
            let mut fin = PacketBuilder::new().tcp(t, seq, 1, TcpFlags::FIN | TcpFlags::ACK, b"");
            assert_eq!(
                fw.connection_packets(&mut fin, &mut tables.ctx(core)),
                Verdict::Forward
            );
        }
        assert_eq!(tables.entries_on(core), 1, "context must survive");
    }
}
