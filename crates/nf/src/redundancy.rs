//! Redundancy elimination (RE).
//!
//! Table 1 row "Redundancy Elimination": **packet cache** — global state,
//! read *and written* on every packet. This is the worst case for any
//! multicore middlebox (Sprayer or RSS alike, as §3.2 notes: shared
//! global state "is not specific to Sprayer"). The cache here is sharded
//! by fingerprint to bound contention, the standard mitigation.
//!
//! The NF computes Rabin-style rolling fingerprints over the payload and
//! consults the cache: payload regions already seen are counted as
//! "eliminated bytes" (a real RE middlebox would replace them with
//! shims; we keep the packet intact and export the savings statistics,
//! which is what the experiments observe).

use parking_lot::Mutex;
use sprayer::api::{Access, FlowStateApi, NetworkFunction, NfDescriptor, Scope, Verdict};
use sprayer_net::Packet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of cache shards (power of two).
const SHARDS: usize = 16;
/// Fingerprint window in bytes.
const WINDOW: usize = 32;

/// The redundancy-elimination NF.
pub struct RedundancyNf {
    shards: Vec<Mutex<HashMap<u64, u32>>>,
    capacity_per_shard: usize,
    /// Total payload bytes inspected.
    pub bytes_seen: AtomicU64,
    /// Bytes that matched the cache (would be eliminated).
    pub bytes_eliminated: AtomicU64,
}

impl RedundancyNf {
    /// An RE cache bounded to roughly `capacity` fingerprints.
    pub fn new(capacity: usize) -> Self {
        RedundancyNf {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard: (capacity / SHARDS).max(1),
            bytes_seen: AtomicU64::new(0),
            bytes_eliminated: AtomicU64::new(0),
        }
    }

    /// Fraction of inspected bytes that were redundant.
    pub fn savings(&self) -> f64 {
        let seen = self.bytes_seen.load(Ordering::Relaxed);
        if seen == 0 {
            return 0.0;
        }
        self.bytes_eliminated.load(Ordering::Relaxed) as f64 / seen as f64
    }

    fn fingerprint(window: &[u8]) -> u64 {
        // Polynomial hash over the window; a production RE would use a
        // rolling Rabin fingerprint, but windows here are sampled at
        // fixed stride so direct evaluation is equivalent.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in window {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn inspect(&self, payload: &[u8]) {
        self.bytes_seen
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if payload.len() < WINDOW {
            return;
        }
        let mut eliminated = 0u64;
        for chunk in payload.chunks_exact(WINDOW) {
            let fp = Self::fingerprint(chunk);
            let shard = &self.shards[(fp as usize) & (SHARDS - 1)];
            let mut cache = shard.lock();
            match cache.get_mut(&fp) {
                Some(count) => {
                    *count += 1;
                    eliminated += WINDOW as u64;
                }
                None => {
                    if cache.len() >= self.capacity_per_shard {
                        // Evict an arbitrary entry (clock/LRU elided; the
                        // eviction policy is orthogonal to the experiments).
                        if let Some(&victim) = cache.keys().next() {
                            cache.remove(&victim);
                        }
                    }
                    cache.insert(fp, 1);
                }
            }
        }
        if eliminated > 0 {
            self.bytes_eliminated
                .fetch_add(eliminated, Ordering::Relaxed);
        }
    }
}

impl NetworkFunction for RedundancyNf {
    type Flow = ();

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("Redundancy Elimination").with_state(
            "Packet cache",
            Scope::Global,
            Access::ReadWrite,
            Access::None,
        )
    }

    fn config(&self) -> sprayer::api::NfConfig {
        // No per-flow state: disable flow tables and redirection (§3.4).
        sprayer::api::NfConfig {
            stateless: true,
            ..Default::default()
        }
    }

    fn connection_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<()>) -> Verdict {
        self.regular_packets(pkt, ctx)
    }

    fn regular_packets(&self, pkt: &mut Packet, _ctx: &mut dyn FlowStateApi<()>) -> Verdict {
        if let Some(payload) = pkt.payload() {
            self.inspect(payload);
        }
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::tables::LocalTables;
    use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};

    fn run(re: &RedundancyNf, payload: &[u8]) {
        let map = CoreMap::new(DispatchMode::Sprayer, 2);
        let mut tables: LocalTables<()> = LocalTables::new(map, 4);
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let mut p = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, payload);
        re.regular_packets(&mut p, &mut tables.ctx(0));
    }

    #[test]
    fn repeated_content_is_detected() {
        let re = RedundancyNf::new(1024);
        let content = vec![7u8; 128]; // 4 windows
        run(&re, &content);
        assert_eq!(
            re.bytes_eliminated.load(Ordering::Relaxed),
            96,
            "3 of 4 identical windows"
        );
        run(&re, &content);
        assert_eq!(re.bytes_eliminated.load(Ordering::Relaxed), 96 + 128);
        assert!(re.savings() > 0.8);
    }

    #[test]
    fn unique_content_is_not_eliminated() {
        let re = RedundancyNf::new(4096);
        let content: Vec<u8> = (0..256u32).flat_map(|i| i.to_be_bytes()).collect();
        run(&re, &content);
        assert_eq!(re.bytes_eliminated.load(Ordering::Relaxed), 0);
        assert_eq!(re.bytes_seen.load(Ordering::Relaxed), 1024);
    }

    #[test]
    fn short_payloads_are_skipped() {
        let re = RedundancyNf::new(64);
        run(&re, b"tiny");
        assert_eq!(re.bytes_seen.load(Ordering::Relaxed), 4);
        assert_eq!(re.bytes_eliminated.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cache_capacity_is_bounded() {
        let re = RedundancyNf::new(SHARDS); // one entry per shard
        for i in 0..64u32 {
            let mut payload = vec![0u8; WINDOW];
            payload[..4].copy_from_slice(&i.to_be_bytes());
            run(&re, &payload);
        }
        let total: usize = re.shards.iter().map(|s| s.lock().len()).sum();
        assert!(
            total <= SHARDS,
            "cache must stay within capacity, has {total}"
        );
    }

    #[test]
    fn declares_stateless_config() {
        let re = RedundancyNf::new(16);
        assert!(
            re.config().stateless,
            "RE has no per-flow state: redirection disabled"
        );
    }
}
