//! Regenerates the paper's Table 1 from the NFs' own descriptors.
//!
//! Table 1 ("Example of state scope and access pattern of some popular
//! stateful NFs") is the empirical backbone of Sprayer's design: "Most
//! NFs only update flow states when connections start or finish." Here
//! the table is not transcribed but *derived* — each NF implementation
//! declares its state in its [`NfDescriptor`], and the audit renders the
//! same rows the paper prints, plus the compatibility verdict of §7.

use sprayer::api::NfDescriptor;

/// Descriptors of every NF in this crate, in the paper's row order.
pub fn all_descriptors() -> Vec<NfDescriptor> {
    use sprayer::api::NetworkFunction;
    vec![
        crate::nat::NatNf::new(0xc633_640a, 10_000..10_001).descriptor(),
        crate::nat64::Nat64Nf::new([0; 12], [0; 16], 1..2).descriptor(),
        crate::firewall::FirewallNf::new(Vec::new()).descriptor(),
        crate::load_balancer::LoadBalancerNf::new(
            (1, 80),
            vec![crate::load_balancer::Backend { addr: 2, port: 80 }],
        )
        .descriptor(),
        crate::monitor::MonitorNf::new(1).descriptor(),
        crate::redundancy::RedundancyNf::new(16).descriptor(),
        crate::dpi::DpiNf::new(&["x"]).descriptor(),
    ]
}

/// Render Table 1 as aligned text.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<20} {:<9} {:>7} {:>6}   {}\n",
        "NF", "State", "Scope", "packet", "flow", "sprayer-compatible"
    ));
    out.push_str(&"-".repeat(90));
    out.push('\n');
    for d in all_descriptors() {
        let compat = if d.sprayer_compatible {
            "yes"
        } else {
            "NO (§7)"
        };
        for (i, s) in d.states.iter().enumerate() {
            let nf_name = if i == 0 { d.name } else { "" };
            let compat = if i == 0 { compat } else { "" };
            out.push_str(&format!(
                "{:<24} {:<20} {:<9} {:>7} {:>6}   {}\n",
                nf_name,
                s.name,
                format!("{:?}", s.scope),
                s.per_packet.to_string(),
                s.per_flow.to_string(),
                compat,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::api::{Access, Scope};

    /// The key claim behind Sprayer's design, checked against the actual
    /// implementations: among the surveyed NFs, only DPI writes per-flow
    /// state on every packet.
    #[test]
    fn only_dpi_writes_flow_state_per_packet() {
        for d in all_descriptors() {
            let per_packet_flow_writes = d.writes_flow_state_per_packet();
            if d.name == "DPI" {
                assert!(per_packet_flow_writes);
                assert!(!d.sprayer_compatible);
            } else {
                assert!(
                    !per_packet_flow_writes,
                    "{} must not write per-flow state per packet",
                    d.name
                );
                assert!(d.sprayer_compatible, "{} should be compatible", d.name);
            }
        }
    }

    /// Spot-check rows against the paper's Table 1.
    #[test]
    fn rows_match_paper_table_1() {
        let ds = all_descriptors();
        let nat = ds.iter().find(|d| d.name == "NAT").unwrap();
        let flow_map = nat.states.iter().find(|s| s.name == "Flow map").unwrap();
        assert_eq!(flow_map.scope, Scope::PerFlow);
        assert_eq!(flow_map.per_packet, Access::Read);
        assert_eq!(flow_map.per_flow, Access::ReadWrite);
        let pool = nat
            .states
            .iter()
            .find(|s| s.name == "Pool of IPs/ports")
            .unwrap();
        assert_eq!(pool.scope, Scope::Global);
        assert_eq!(pool.per_packet, Access::None);
        assert_eq!(pool.per_flow, Access::ReadWrite);

        let lb = ds.iter().find(|d| d.name == "Load Balancer").unwrap();
        assert_eq!(
            lb.states.len(),
            3,
            "flow-server map, pool of servers, statistics"
        );
        let stats = lb.states.iter().find(|s| s.name == "Statistics").unwrap();
        assert_eq!(stats.scope, Scope::Global);
        assert_eq!(stats.per_packet, Access::ReadWrite);

        let re = ds
            .iter()
            .find(|d| d.name == "Redundancy Elimination")
            .unwrap();
        let cache = &re.states[0];
        assert_eq!(
            (cache.scope, cache.per_packet),
            (Scope::Global, Access::ReadWrite)
        );
    }

    #[test]
    fn render_produces_a_row_per_state() {
        let table = render_table1();
        let expected_rows: usize = all_descriptors().iter().map(|d| d.states.len()).sum();
        // Header + separator + state rows.
        assert_eq!(table.lines().count(), 2 + expected_rows);
        assert!(table.contains("NAT"));
        assert!(table.contains("Packet cache"));
        assert!(table.contains("NO (§7)"));
    }
}
