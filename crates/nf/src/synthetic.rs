//! The synthetic NF of the paper's evaluation (§5).
//!
//! "To systematically emulate NFs with different complexities, we
//! implement a simple NF on top of Sprayer. This NF creates a new entry
//! in the flow table at every new connection. Moreover, for every packet
//! it receives, it retrieves the flow state, modifies the header, and
//! busy loops for a given number of cycles."
//!
//! The busy loop has two representations:
//! * in the deterministic simulator, the loop's cost is charged by the
//!   cycle model (`MiddleboxConfig::nf_cycles`), so [`SyntheticNf`] is
//!   constructed with `spin: false` and does only the real work (state
//!   lookup + header modification);
//! * in the real-thread runtime, `spin: true` makes it actually burn the
//!   cycles, pinned against compiler elision via `std::hint::black_box`.

use sprayer::api::{Access, FlowStateApi, NetworkFunction, NfDescriptor, Scope, Verdict};
use sprayer_net::{Packet, TcpFlags};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-flow state: a counter the NF reads on every packet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynFlow {
    /// Packets seen when the entry was installed (always 0; present so
    /// the entry has realistic, non-zero size).
    pub opened_at: u64,
}

/// The synthetic evaluation NF.
pub struct SyntheticNf {
    /// Busy-loop iterations per packet (≈ cycles when spinning).
    pub cycles: u64,
    /// Actually spin (threads) vs. let the simulator charge the cost.
    pub spin: bool,
    /// Packets processed.
    pub processed: AtomicU64,
    /// Packets that found no flow state (forwarded anyway — the paper's
    /// NF does not police; it emulates work).
    pub missing_state: AtomicU64,
}

impl SyntheticNf {
    /// For the deterministic simulator: cost charged by the cycle model.
    pub fn for_simulator() -> Self {
        SyntheticNf {
            cycles: 0,
            spin: false,
            processed: AtomicU64::new(0),
            missing_state: AtomicU64::new(0),
        }
    }

    /// For the thread runtime: really burn `cycles` per packet.
    pub fn spinning(cycles: u64) -> Self {
        SyntheticNf {
            cycles,
            spin: true,
            processed: AtomicU64::new(0),
            missing_state: AtomicU64::new(0),
        }
    }

    fn busy_loop(&self) {
        if self.spin {
            let mut acc = 0u64;
            for i in 0..self.cycles {
                acc = std::hint::black_box(acc.wrapping_add(i));
            }
            std::hint::black_box(acc);
        }
    }
}

impl NetworkFunction for SyntheticNf {
    type Flow = SynFlow;

    fn descriptor(&self) -> NfDescriptor {
        // "Our NF does a flow-state lookup, updates the header, and
        // busy-loops" (§5 fn. 4) — the same shape as the firewall row.
        NfDescriptor::named("Synthetic (eval §5)").with_state(
            "Connection context",
            Scope::PerFlow,
            Access::Read,
            Access::ReadWrite,
        )
    }

    fn profile_label(&self) -> String {
        // The per-packet cost is the configuration, so the flame view
        // needs it to tell variants apart.
        if self.spin {
            format!("synthetic/spin:{}", self.cycles)
        } else {
            "synthetic/modelled".to_string()
        }
    }

    fn connection_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<SynFlow>) -> Verdict {
        self.lifecycle(pkt, ctx);
        self.touch(pkt, ctx)
    }

    fn regular_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<SynFlow>) -> Verdict {
        self.touch(pkt, ctx)
    }

    fn handle_batch(
        &self,
        pkts: &mut [Packet],
        conn: &[bool],
        ctx: &mut dyn FlowStateApi<SynFlow>,
        out: &mut sprayer::api::VerdictSink,
    ) {
        debug_assert_eq!(pkts.len(), conn.len());
        // Two atomic touches per batch instead of up to two per packet;
        // the lookup, header write, and busy loop remain per-packet (the
        // busy loop *is* the emulated work and must burn per packet).
        let mut missing = 0u64;
        for (pkt, &is_conn) in pkts.iter_mut().zip(conn) {
            if is_conn {
                self.lifecycle(pkt, ctx);
            }
            out.push(self.touch_with(pkt, ctx, &mut missing));
        }
        if missing > 0 {
            self.missing_state.fetch_add(missing, Ordering::Relaxed);
        }
        self.processed
            .fetch_add(pkts.len() as u64, Ordering::Relaxed);
    }

    // `replicate_updates` stays at the tracked default: only `lifecycle`
    // writes the table (SYN insert, FIN/RST remove), so the batch
    // mutation log ships connection keys alone — the per-packet body
    // reads, rewrites the header, and spins, and reads never ship. That
    // keeps the synthetic NF's SCR log cost scaling with flow arrival
    // rate — the knob the paper's evaluation sweeps.
}

impl SyntheticNf {
    /// The connection-lifecycle half of `connection_packets`: table entry
    /// creation at SYN, removal at FIN/RST.
    fn lifecycle(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<SynFlow>) {
        let Some(tuple) = pkt.tuple() else {
            return;
        };
        let flags = pkt.meta().tcp_flags.unwrap_or_default();
        let key = tuple.key();
        if flags.contains(TcpFlags::SYN) {
            // "creates a new entry in the flow table at every new
            // connection".
            if ctx.get_local_flow(&key).is_none() {
                ctx.insert_local_flow(key, SynFlow::default());
            }
        } else if flags.intersects(TcpFlags::FIN | TcpFlags::RST) {
            ctx.remove_local_flow(&key);
        }
    }

    /// The per-packet body: state lookup, header modification, busy loop.
    fn touch(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<SynFlow>) -> Verdict {
        let mut missing = 0;
        let verdict = self.touch_with(pkt, ctx, &mut missing);
        if missing > 0 {
            self.missing_state.fetch_add(missing, Ordering::Relaxed);
        }
        self.processed.fetch_add(1, Ordering::Relaxed);
        verdict
    }

    /// [`Self::touch`] with the counters accumulated by the caller.
    fn touch_with(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<SynFlow>,
        missing: &mut u64,
    ) -> Verdict {
        if let Some(tuple) = pkt.tuple() {
            if ctx.get_flow(&tuple.key()).is_none() {
                *missing += 1;
            }
        }
        // "modifies the header": decrement TTL like a router would.
        let _ = pkt.decrement_ttl();
        self.busy_loop();
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::scr::UpdateOp;
    use sprayer::tables::LocalTables;
    use sprayer_net::{FiveTuple, PacketBuilder};

    #[test]
    fn profile_label_encodes_the_cost_variant() {
        assert_eq!(
            SyntheticNf::for_simulator().profile_label(),
            "synthetic/modelled"
        );
        assert_eq!(
            SyntheticNf::spinning(5_000).profile_label(),
            "synthetic/spin:5000"
        );
    }

    #[test]
    fn modifies_header_and_counts() {
        let nf = SyntheticNf::for_simulator();
        let map = CoreMap::new(DispatchMode::Sprayer, 4);
        let mut tables = LocalTables::new(map.clone(), 64);
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let core = map.designated_for_tuple(&t);

        let mut syn = PacketBuilder::new()
            .ttl(64)
            .tcp(t, 0, 0, TcpFlags::SYN, b"");
        assert_eq!(
            nf.connection_packets(&mut syn, &mut tables.ctx(core)),
            Verdict::Forward
        );
        let l3 = syn.meta().l3_offset;
        assert_eq!(syn.bytes()[l3 + 8], 63, "TTL decremented");

        let mut data = PacketBuilder::new()
            .ttl(64)
            .tcp(t, 1, 0, TcpFlags::ACK, b"");
        nf.regular_packets(&mut data, &mut tables.ctx(0));
        assert_eq!(nf.processed.load(Ordering::Relaxed), 2);
        assert_eq!(
            nf.missing_state.load(Ordering::Relaxed),
            0,
            "state was found"
        );
    }

    #[test]
    fn missing_state_is_counted_not_dropped() {
        let nf = SyntheticNf::for_simulator();
        let map = CoreMap::new(DispatchMode::Sprayer, 4);
        let mut tables = LocalTables::new(map, 64);
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let mut data = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"");
        assert_eq!(
            nf.regular_packets(&mut data, &mut tables.ctx(0)),
            Verdict::Forward
        );
        assert_eq!(nf.missing_state.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fin_removes_the_entry() {
        let nf = SyntheticNf::for_simulator();
        let map = CoreMap::new(DispatchMode::Sprayer, 4);
        let mut tables = LocalTables::new(map.clone(), 64);
        let t = FiveTuple::tcp(9, 9, 9, 9);
        let core = map.designated_for_tuple(&t);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        nf.connection_packets(&mut syn, &mut tables.ctx(core));
        assert_eq!(tables.entries_on(core), 1);
        let mut fin = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::FIN | TcpFlags::ACK, b"");
        nf.connection_packets(&mut fin, &mut tables.ctx(core));
        assert_eq!(tables.entries_on(core), 0);
    }

    #[test]
    fn spinning_takes_longer_than_not() {
        let fast = SyntheticNf::spinning(0);
        let slow = SyntheticNf::spinning(2_000_000);
        let map = CoreMap::new(DispatchMode::Sprayer, 1);
        let mut tables = LocalTables::new(map, 64);
        let t = FiveTuple::tcp(1, 2, 3, 4);

        let timer = std::time::Instant::now();
        for _ in 0..10 {
            let mut p = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, b"");
            fast.regular_packets(&mut p, &mut tables.ctx(0));
        }
        let t_fast = timer.elapsed();

        let timer = std::time::Instant::now();
        for _ in 0..10 {
            let mut p = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, b"");
            slow.regular_packets(&mut p, &mut tables.ctx(0));
        }
        let t_slow = timer.elapsed();
        assert!(
            t_slow > t_fast,
            "busy loop must consume real time: {t_fast:?} vs {t_slow:?}"
        );
    }

    #[test]
    fn replicate_ships_lifecycle_writes_only() {
        // Under SCR the tracked default ships the SYN's insert and the
        // FIN's removal; the per-packet body (lookup + TTL + spin)
        // writes no flow state and ships nothing.
        let nf = SyntheticNf::for_simulator();
        let map = CoreMap::new(DispatchMode::Scr, 4);
        let mut tables = LocalTables::new(map, 64);
        let t = FiveTuple::tcp(0x0a000001, 4000, 0x0a000002, 80);

        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        nf.connection_packets(&mut syn, &mut tables.ctx(0));
        let mut data = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"");
        nf.regular_packets(&mut data, &mut tables.ctx(0));

        let mut ops = Vec::new();
        nf.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert!(matches!(&ops[..], [UpdateOp::Put(key, _)] if *key == t.key()));
        tables.clear_batch_log(0);

        let mut fin = PacketBuilder::new().tcp(t, 2, 0, TcpFlags::FIN, b"");
        nf.connection_packets(&mut fin, &mut tables.ctx(0));
        let mut ops = Vec::new();
        nf.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert!(matches!(&ops[..], [UpdateOp::Del(key)] if *key == t.key()));
    }
}
