//! A traffic monitor.
//!
//! Table 1 row "Traffic Monitor":
//! * **connection context** — per-flow, written at flow start/end only;
//! * **statistics** — global, written on every packet.
//!
//! The per-packet global statistics are exactly the case where the paper
//! appeals to *looser consistency* (§3.4): "These NFs can keep statistics
//! for all flows in every core and periodically aggregate them in their
//! designated cores — similar to the logging mechanism of existing
//! systems (e.g., Bro Cluster)." We implement that pattern literally:
//! per-core shards updated without synchronization beyond a relaxed
//! atomic, and an `aggregate()` that folds the shards on demand.

use crate::firewall::fin_direction_bit;
use sprayer::api::{Access, FlowStateApi, NetworkFunction, NfDescriptor, Scope, Verdict};
use sprayer::scr::ReplicaMerge;
use sprayer_net::{FlowKey, Packet, TcpFlags};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-flow connection context recorded at SYN time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnRecord {
    /// Canonical initiator endpoint.
    pub initiator: (u32, u16),
    /// FIN directions seen, as a bitmask: bit 0 for the canonical `lo`
    /// endpoint, bit 1 for `hi`. A bitmask so SCR replica merges union
    /// commutatively instead of losing increments (see
    /// [`crate::firewall::ConnContext::fins`]).
    pub fins: u8,
}

/// One core's statistics shard (cache-line padded in spirit; Rust lacks
/// a stable `#[repr(align)]` story for arrays of atomics without unsafe,
/// and false sharing does not affect correctness).
#[derive(Debug, Default)]
pub struct StatShard {
    /// Packets seen by this core.
    pub packets: AtomicU64,
    /// Bytes seen by this core.
    pub bytes: AtomicU64,
    /// Connection packets seen by this core.
    pub connection_packets: AtomicU64,
}

/// Aggregated view of the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorTotals {
    /// Total packets.
    pub packets: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Total connection packets.
    pub connection_packets: u64,
    /// Connections opened (SYN observed, deduplicated by flow table).
    pub connections_opened: u64,
    /// Connections closed (RST or FIN pair).
    pub connections_closed: u64,
}

/// The traffic monitor NF.
pub struct MonitorNf {
    shards: Vec<StatShard>,
    opened: AtomicU64,
    closed: AtomicU64,
}

impl MonitorNf {
    /// A monitor with one statistics shard per core.
    pub fn new(num_cores: usize) -> Self {
        MonitorNf {
            shards: (0..num_cores.max(1))
                .map(|_| StatShard::default())
                .collect(),
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
        }
    }

    /// Fold all shards into totals — the "periodic aggregation at the
    /// designated core" of §3.4, callable from anywhere at any time
    /// (loose consistency by design).
    pub fn aggregate(&self) -> MonitorTotals {
        let mut t = MonitorTotals {
            connections_opened: self.opened.load(Ordering::Relaxed),
            connections_closed: self.closed.load(Ordering::Relaxed),
            ..Default::default()
        };
        for s in &self.shards {
            t.packets += s.packets.load(Ordering::Relaxed);
            t.bytes += s.bytes.load(Ordering::Relaxed);
            t.connection_packets += s.connection_packets.load(Ordering::Relaxed);
        }
        t
    }

    /// Export the aggregated totals as a versioned telemetry document —
    /// the monitor's "periodic aggregation" output in the unified
    /// [`sprayer_obs::MetricsRegistry`] JSON format.
    pub fn export_metrics(&self) -> sprayer_obs::MetricsRegistry {
        let t = self.aggregate();
        let mut reg = sprayer_obs::MetricsRegistry::new();
        reg.set_str("nf", "monitor");
        reg.set_u64("packets", t.packets);
        reg.set_u64("bytes", t.bytes);
        reg.set_u64("connection_packets", t.connection_packets);
        reg.set_u64("connections_opened", t.connections_opened);
        reg.set_u64("connections_closed", t.connections_closed);
        reg
    }

    fn shard(&self, core: usize) -> &StatShard {
        &self.shards[core % self.shards.len()]
    }

    fn count(&self, pkt: &Packet, core: usize, conn: bool) {
        let s = self.shard(core);
        s.packets.fetch_add(1, Ordering::Relaxed);
        s.bytes.fetch_add(pkt.len() as u64, Ordering::Relaxed);
        if conn {
            s.connection_packets.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The flow-lifecycle half of [`NetworkFunction::connection_packets`]
    /// (everything but the statistics shard update), shared between the
    /// scalar handler and [`NetworkFunction::handle_batch`].
    fn lifecycle(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<ConnRecord>) {
        let Some(tuple) = pkt.tuple() else {
            return;
        };
        let flags = pkt.meta().tcp_flags.unwrap_or_default();
        let key = tuple.key();

        if flags.contains(TcpFlags::RST) {
            if ctx.remove_local_flow(&key).is_some() {
                self.closed.fetch_add(1, Ordering::Relaxed);
            }
        } else if flags.contains(TcpFlags::FIN) {
            let bit = fin_direction_bit(&tuple, &key);
            let mut fins = 0;
            ctx.modify_local_flow(&key, &mut |r| {
                r.fins |= bit;
                fins = r.fins;
            });
            if fins == 0b11 && ctx.remove_local_flow(&key).is_some() {
                self.closed.fetch_add(1, Ordering::Relaxed);
            }
        } else if flags.contains(TcpFlags::SYN) && ctx.get_local_flow(&key).is_none() {
            ctx.insert_local_flow(
                key,
                ConnRecord {
                    initiator: (tuple.src_addr, tuple.src_port),
                    fins: 0,
                },
            );
            self.opened.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl NetworkFunction for MonitorNf {
    type Flow = ConnRecord;

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("Traffic Monitor")
            .with_state(
                "Connection context",
                Scope::PerFlow,
                Access::None,
                Access::ReadWrite,
            )
            .with_state("Statistics", Scope::Global, Access::ReadWrite, Access::None)
    }

    fn connection_packets(
        &self,
        pkt: &mut Packet,
        ctx: &mut dyn FlowStateApi<ConnRecord>,
    ) -> Verdict {
        self.count(pkt, ctx.core_id(), true);
        self.lifecycle(pkt, ctx);
        Verdict::Forward
    }

    fn regular_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<ConnRecord>) -> Verdict {
        // Monitors never write per-flow state here — only the sharded
        // global counters. Forward unconditionally (passive NF).
        self.count(pkt, ctx.core_id(), false);
        Verdict::Forward
    }

    fn handle_batch(
        &self,
        pkts: &mut [Packet],
        conn: &[bool],
        ctx: &mut dyn FlowStateApi<ConnRecord>,
        out: &mut sprayer::api::VerdictSink,
    ) {
        debug_assert_eq!(pkts.len(), conn.len());
        // The whole batch runs on one core, and the statistics are
        // loosely consistent by design (§3.4) — so fold the shard update
        // into locals and touch the atomics once per batch instead of
        // three times per packet.
        let mut packets = 0u64;
        let mut bytes = 0u64;
        let mut conn_pkts = 0u64;
        for (pkt, &is_conn) in pkts.iter_mut().zip(conn) {
            packets += 1;
            bytes += pkt.len() as u64;
            if is_conn {
                conn_pkts += 1;
                self.lifecycle(pkt, ctx);
            }
            out.push(Verdict::Forward);
        }
        let s = self.shard(ctx.core_id());
        s.packets.fetch_add(packets, Ordering::Relaxed);
        s.bytes.fetch_add(bytes, Ordering::Relaxed);
        if conn_pkts > 0 {
            s.connection_packets.fetch_add(conn_pkts, Ordering::Relaxed);
        }
    }

    fn merge_replica(
        &self,
        _key: &FlowKey,
        existing: Option<&ConnRecord>,
        incoming: &ConnRecord,
        _newer: bool,
    ) -> ReplicaMerge<ConnRecord> {
        // Union the per-direction FIN bits (monotone set, commutative);
        // `initiator` is written once at SYN time, so the incoming copy
        // is authoritative. When the union completes the close, finish
        // the teardown here. The `connections_closed` counter stays
        // handler-driven: a close completed only by merging two
        // half-closes that landed on different cores is not counted —
        // an accepted undercount, matching the loosely-consistent
        // statistics contract of §3.4 (the counter is telemetry, not
        // forwarding state).
        let fins = existing.map_or(0, |r| r.fins) | incoming.fins;
        if fins == 0b11 {
            ReplicaMerge::Remove
        } else {
            ReplicaMerge::Store(ConnRecord {
                initiator: incoming.initiator,
                fins,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::scr::UpdateOp;
    use sprayer::tables::LocalTables;
    use sprayer_net::{FiveTuple, PacketBuilder};

    fn harness() -> (MonitorNf, LocalTables<ConnRecord>, CoreMap) {
        let map = CoreMap::new(DispatchMode::Sprayer, 4);
        (MonitorNf::new(4), LocalTables::new(map.clone(), 1024), map)
    }

    #[test]
    fn counts_packets_and_bytes_across_cores() {
        let (mon, mut tables, _) = harness();
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let mut total_bytes = 0;
        for core in 0..4 {
            let mut p = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, b"abcdef");
            total_bytes += p.len() as u64;
            mon.regular_packets(&mut p, &mut tables.ctx(core));
        }
        let agg = mon.aggregate();
        assert_eq!(agg.packets, 4);
        assert_eq!(agg.bytes, total_bytes);
        assert_eq!(agg.connection_packets, 0);
        // Each shard took exactly one packet.
        for s in &mon.shards {
            assert_eq!(s.packets.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn connection_lifecycle_tracked() {
        let (mon, mut tables, map) = harness();
        let t = FiveTuple::tcp(0x0a000001, 40_000, 0x0a000002, 80);
        let core = map.designated_for_tuple(&t);

        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        mon.connection_packets(&mut syn, &mut tables.ctx(core));
        assert_eq!(mon.aggregate().connections_opened, 1);

        // Retransmitted SYN doesn't double-count (flow table dedupes).
        let mut syn2 = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        mon.connection_packets(&mut syn2, &mut tables.ctx(core));
        assert_eq!(mon.aggregate().connections_opened, 1);

        let mut fin1 = PacketBuilder::new().tcp(t, 9, 1, TcpFlags::FIN | TcpFlags::ACK, b"");
        mon.connection_packets(&mut fin1, &mut tables.ctx(core));
        assert_eq!(mon.aggregate().connections_closed, 0);
        let mut fin2 =
            PacketBuilder::new().tcp(t.reversed(), 9, 10, TcpFlags::FIN | TcpFlags::ACK, b"");
        mon.connection_packets(&mut fin2, &mut tables.ctx(core));
        assert_eq!(mon.aggregate().connections_closed, 1);
    }

    #[test]
    fn rst_closes_once() {
        let (mon, mut tables, map) = harness();
        let t = FiveTuple::tcp(5, 6, 7, 8);
        let core = map.designated_for_tuple(&t);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        mon.connection_packets(&mut syn, &mut tables.ctx(core));
        for _ in 0..2 {
            let mut rst = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::RST, b"");
            mon.connection_packets(&mut rst, &mut tables.ctx(core));
        }
        assert_eq!(
            mon.aggregate().connections_closed,
            1,
            "duplicate RST is idempotent"
        );
    }

    #[test]
    fn export_metrics_carries_totals_and_schema_version() {
        let (mon, mut tables, map) = harness();
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        mon.connection_packets(&mut syn, &mut tables.ctx(map.designated_for_tuple(&t)));
        let mut p = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"xyz");
        mon.regular_packets(&mut p, &mut tables.ctx(0));

        let json = mon.export_metrics().to_json();
        let version = format!(
            "\"schema_version\":{}",
            sprayer_obs::TELEMETRY_SCHEMA_VERSION
        );
        for key in [
            version.as_str(),
            "\"nf\":\"monitor\"",
            "\"packets\":2",
            "\"connections_opened\":1",
            "\"connections_closed\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn monitor_never_drops() {
        let (mon, mut tables, _) = harness();
        let t = FiveTuple::tcp(1, 1, 1, 1);
        let mut p = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, b"");
        assert_eq!(
            mon.regular_packets(&mut p, &mut tables.ctx(0)),
            Verdict::Forward
        );
        let mut r = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::RST, b"");
        assert_eq!(
            mon.connection_packets(&mut r, &mut tables.ctx(0)),
            Verdict::Forward
        );
    }

    #[test]
    fn replicate_ships_connection_keys_only() {
        // Under SCR the tracked default ships only the batch's real
        // mutations: the SYN's insert, never the regular packets that
        // only bump the loosely-consistent shards.
        let mon = MonitorNf::new(4);
        let map = CoreMap::new(DispatchMode::Scr, 4);
        let mut tables: LocalTables<ConnRecord> = LocalTables::new(map, 1024);
        let t = FiveTuple::tcp(0x0a000001, 40_000, 0x0a000002, 80);
        let other = FiveTuple::tcp(9, 9, 9, 9);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        mon.connection_packets(&mut syn, &mut tables.ctx(0));
        let mut data = PacketBuilder::new().tcp(other, 1, 0, TcpFlags::ACK, b"xy");
        mon.regular_packets(&mut data, &mut tables.ctx(0));

        let mut ops = Vec::new();
        mon.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        // Only the SYN's key ships — the data packet wrote no flow state.
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            UpdateOp::Put(key, _) => {
                assert_eq!(*key, t.key());
                assert!(tables.ctx(0).get_local_flow(key).is_some());
            }
            UpdateOp::Del(_) => panic!("live flow must ship a Put"),
        }
        tables.clear_batch_log(0);

        // After RST teardown the same key ships a Del.
        let mut rst = PacketBuilder::new().tcp(t, 2, 0, TcpFlags::RST, b"");
        mon.connection_packets(&mut rst, &mut tables.ctx(0));
        let mut ops = Vec::new();
        mon.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert!(matches!(&ops[..], [UpdateOp::Del(key)] if *key == t.key()));
    }

    #[test]
    fn merge_unions_fin_directions_and_completes_close() {
        let mon = MonitorNf::new(2);
        let t = FiveTuple::tcp(0x0a000001, 40_000, 0x0a000002, 80);
        let k = t.key();
        let half = |fins| ConnRecord {
            initiator: (0x0a000001, 40_000),
            fins,
        };
        assert_eq!(
            mon.merge_replica(&k, Some(&half(0b01)), &half(0b10), false),
            ReplicaMerge::Remove
        );
        assert_eq!(
            mon.merge_replica(&k, Some(&half(0b01)), &half(0b01), true),
            ReplicaMerge::Store(half(0b01))
        );
        assert_eq!(
            mon.merge_replica(&k, None, &half(0b10), true),
            ReplicaMerge::Store(half(0b10))
        );
    }
}
