//! # sprayer-nf — network functions on the Sprayer API
//!
//! Implementations of the stateful NFs surveyed in the paper's Table 1,
//! written against [`sprayer::api::NetworkFunction`]:
//!
//! | NF | module | state (scope / access) |
//! |---|---|---|
//! | NAT | [`nat`] | flow map (per-flow, R/pkt, RW/flow); pool of IPs/ports (global, RW/flow) |
//! | IPv4→IPv6 | [`nat64`] | same row as NAT in Table 1 |
//! | Firewall | [`firewall`] | connection context (per-flow, R/pkt, RW/flow) |
//! | Load balancer | [`load_balancer`] | flow–server map (per-flow); pool of servers + statistics (global) |
//! | Traffic monitor | [`monitor`] | connection context (per-flow, RW/flow); statistics (global, RW/pkt, loose) |
//! | Redundancy elimination | [`redundancy`] | packet cache (global, RW/pkt) |
//! | DPI | [`dpi`] | automata (per-flow, RW/pkt) — **incompatible** with spraying (§7) |
//! | Synthetic | [`synthetic`] | the evaluation NF of §5: flow lookup + header update + busy loop |
//!
//! [`audit`] regenerates Table 1 from the NFs' own descriptors.
//!
//! Design note (NAT and the symmetric designated core): the paper relies
//! on both sides of a connection sharing a designated core. For a NAT the
//! *inbound* direction addresses the NAT's external endpoint, so its
//! five-tuple hash differs from the original connection's. We close the
//! gap the way the paper's port pool permits: `select_port` picks an
//! external port whose (translated) connection hashes to the *same*
//! designated core, so connection packets from either side always arrive
//! where the state lives (see [`nat`] for details and tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod dpi;
pub mod firewall;
pub mod load_balancer;
pub mod monitor;
pub mod nat;
pub mod nat64;
pub mod redundancy;
pub mod synthetic;

pub use audit::render_table1;
pub use dpi::DpiNf;
pub use firewall::FirewallNf;
pub use load_balancer::LoadBalancerNf;
pub use monitor::MonitorNf;
pub use nat::NatNf;
pub use nat64::Nat64Nf;
pub use redundancy::RedundancyNf;
pub use synthetic::SyntheticNf;
