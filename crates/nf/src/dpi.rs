//! Deep packet inspection with cross-packet pattern matching.
//!
//! Table 1 row "DPI": **automata** — per-flow state that is read *and
//! written on every packet*. That per-packet write is exactly what
//! Sprayer's write partition cannot accommodate (§7: DPI "would require
//! that cores share their state machines"), so this NF is flagged
//! [`sprayer::api::NfDescriptor::incompatible`] and is meant to run under
//! RSS dispatch. Running it under spraying is *detected*, not silently
//! wrong: the per-flow automaton state can only be updated on the
//! designated core, so regular packets landing elsewhere count as
//! `unscanned` — making the coverage loss measurable (see tests and the
//! ablation bench).
//!
//! The matcher is a from-scratch Aho–Corasick automaton (goto/fail links
//! over a byte trie), carrying match state across packet boundaries so
//! patterns split between segments are still found — the property that
//! requires the per-packet state write.

use sprayer::api::{Access, FlowStateApi, NetworkFunction, NfDescriptor, Scope, Verdict};
use sprayer_net::{Packet, TcpFlags};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// A compiled Aho–Corasick automaton.
#[derive(Debug, Clone)]
pub struct Automaton {
    /// goto[state][byte] → state (dense; fine for rule sets of hundreds).
    goto: Vec<[u32; 256]>,
    /// Pattern indices ending at each state.
    output: Vec<Vec<u32>>,
    patterns: Vec<Vec<u8>>,
}

impl Automaton {
    /// Compile `patterns` (empty patterns are ignored).
    pub fn compile<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        let patterns: Vec<Vec<u8>> = patterns
            .iter()
            .map(|p| p.as_ref().to_vec())
            .filter(|p| !p.is_empty())
            .collect();

        // Build the trie with a sentinel "no edge" marker.
        const NONE: u32 = u32::MAX;
        let mut trie: Vec<[u32; 256]> = vec![[NONE; 256]];
        let mut output: Vec<Vec<u32>> = vec![Vec::new()];
        for (idx, pat) in patterns.iter().enumerate() {
            let mut s = 0usize;
            for &b in pat {
                let next = trie[s][usize::from(b)];
                s = if next == NONE {
                    trie.push([NONE; 256]);
                    output.push(Vec::new());
                    let new = (trie.len() - 1) as u32;
                    trie[s][usize::from(b)] = new;
                    new as usize
                } else {
                    next as usize
                };
            }
            output[s].push(idx as u32);
        }

        // BFS to compute failure links and convert to a dense goto.
        let mut fail = vec![0u32; trie.len()];
        let mut queue = VecDeque::new();
        let mut goto: Vec<[u32; 256]> = vec![[0; 256]; trie.len()];
        for b in 0..256 {
            let next = trie[0][b];
            if next == NONE {
                goto[0][b] = 0;
            } else {
                goto[0][b] = next;
                fail[next as usize] = 0;
                queue.push_back(next as usize);
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s] as usize;
            // Merge output of the failure state (suffix matches).
            let inherited = output[f].clone();
            output[s].extend(inherited);
            for b in 0..256 {
                let next = trie[s][b];
                if next == NONE {
                    goto[s][b] = goto[f][b];
                } else {
                    fail[next as usize] = goto[f][b];
                    goto[s][b] = next;
                    queue.push_back(next as usize);
                }
            }
        }
        Automaton {
            goto,
            output,
            patterns,
        }
    }

    /// Number of automaton states.
    pub fn num_states(&self) -> usize {
        self.goto.len()
    }

    /// The compiled patterns.
    pub fn patterns(&self) -> &[Vec<u8>] {
        &self.patterns
    }

    /// Advance `state` over `bytes`, invoking `on_match(pattern_idx)` for
    /// every occurrence. Returns the final state — the cross-packet
    /// carry-over.
    pub fn scan(&self, mut state: u32, bytes: &[u8], on_match: &mut dyn FnMut(u32)) -> u32 {
        for &b in bytes {
            state = self.goto[state as usize][usize::from(b)];
            for &p in &self.output[state as usize] {
                on_match(p);
            }
        }
        state
    }
}

/// Per-flow DPI state: one automaton cursor per direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpiFlow {
    /// Automaton state for packets in canonical (lo→hi) direction.
    pub state_fwd: u32,
    /// Automaton state for the other direction.
    pub state_rev: u32,
}

/// The DPI NF.
pub struct DpiNf {
    automaton: Automaton,
    /// Pattern occurrences found.
    pub matches: AtomicU64,
    /// Payload bytes scanned.
    pub scanned_bytes: AtomicU64,
    /// Payload bytes that could NOT be scanned because the packet was
    /// processed away from the flow's designated core (spray mode).
    pub unscanned_bytes: AtomicU64,
    /// Flow cursors discarded by the table's eviction hook (idle aging
    /// or the LRU backstop): a pattern split across the eviction point
    /// will be missed, so the detection gap is counted, not silent.
    pub evicted_cursors: AtomicU64,
    /// Drop flows on match (IPS mode) instead of just counting (IDS mode).
    pub drop_on_match: bool,
}

impl DpiNf {
    /// An IDS-style DPI over `patterns`.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        DpiNf {
            automaton: Automaton::compile(patterns),
            matches: AtomicU64::new(0),
            scanned_bytes: AtomicU64::new(0),
            unscanned_bytes: AtomicU64::new(0),
            evicted_cursors: AtomicU64::new(0),
            drop_on_match: false,
        }
    }

    /// The compiled automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    fn scan_payload(&self, pkt: &Packet, ctx: &mut dyn FlowStateApi<DpiFlow>) -> (bool, Verdict) {
        let core = ctx.core_id();
        let mut acc = ScanAcc::default();
        let verdict = self.scan_payload_on(pkt, ctx, core, &mut acc);
        self.flush(&acc);
        (acc.hits > 0, verdict)
    }

    /// The per-packet scan body with the counters accumulated by the
    /// caller (one atomic flush per batch) and the core id hoisted out
    /// of the loop — it is constant for a whole batch.
    fn scan_payload_on(
        &self,
        pkt: &Packet,
        ctx: &mut dyn FlowStateApi<DpiFlow>,
        core: usize,
        acc: &mut ScanAcc,
    ) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Forward;
        };
        let Some(payload) = pkt.payload() else {
            return Verdict::Forward;
        };
        if payload.is_empty() {
            return Verdict::Forward;
        }
        let key = tuple.key();
        // The automaton state is per-flow and updated per packet: it can
        // only be written on the designated core.
        if ctx.designated_core(&key) != core {
            acc.unscanned += payload.len() as u64;
            return Verdict::Forward;
        }
        let canonical_dir = (tuple.src_addr, tuple.src_port) <= (tuple.dst_addr, tuple.dst_port);
        let mut hits = 0u64;
        let updated = ctx.modify_local_flow(&key, &mut |f| {
            let cursor = if canonical_dir {
                &mut f.state_fwd
            } else {
                &mut f.state_rev
            };
            *cursor = self.automaton.scan(*cursor, payload, &mut |_| hits += 1);
        });
        if !updated {
            // Unknown flow (no SYN seen): scan statelessly from state 0.
            self.automaton.scan(0, payload, &mut |_| hits += 1);
        }
        acc.scanned += payload.len() as u64;
        if hits > 0 {
            acc.hits += hits;
            if self.drop_on_match {
                return Verdict::Drop;
            }
        }
        Verdict::Forward
    }

    fn flush(&self, acc: &ScanAcc) {
        if acc.scanned > 0 {
            self.scanned_bytes.fetch_add(acc.scanned, Ordering::Relaxed);
        }
        if acc.unscanned > 0 {
            self.unscanned_bytes
                .fetch_add(acc.unscanned, Ordering::Relaxed);
        }
        if acc.hits > 0 {
            self.matches.fetch_add(acc.hits, Ordering::Relaxed);
        }
    }
}

/// Scan counters accumulated across a batch, flushed to the atomics once.
#[derive(Debug, Default)]
struct ScanAcc {
    scanned: u64,
    unscanned: u64,
    hits: u64,
}

impl NetworkFunction for DpiNf {
    type Flow = DpiFlow;

    fn descriptor(&self) -> NfDescriptor {
        NfDescriptor::named("DPI")
            .with_state("Automata", Scope::PerFlow, Access::ReadWrite, Access::None)
            .incompatible()
    }

    fn profile_label(&self) -> String {
        // Scan cost scales with the compiled pattern set; encode its
        // size so profiles from different rule sets stay comparable.
        format!("dpi/patterns:{}", self.automaton.patterns().len())
    }

    fn connection_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<DpiFlow>) -> Verdict {
        let Some(tuple) = pkt.tuple() else {
            return Verdict::Forward;
        };
        let flags = pkt.meta().tcp_flags.unwrap_or_default();
        let key = tuple.key();
        if flags.contains(TcpFlags::SYN) {
            if ctx.get_local_flow(&key).is_none() {
                ctx.insert_local_flow(key, DpiFlow::default());
            }
        } else if flags.intersects(TcpFlags::FIN | TcpFlags::RST) {
            // Scan any final payload, then drop the cursors.
            let (_, verdict) = self.scan_payload(pkt, ctx);
            if flags.contains(TcpFlags::RST) || flags.contains(TcpFlags::FIN) {
                ctx.remove_local_flow(&key);
            }
            return verdict;
        }
        Verdict::Forward
    }

    fn regular_packets(&self, pkt: &mut Packet, ctx: &mut dyn FlowStateApi<DpiFlow>) -> Verdict {
        self.scan_payload(pkt, ctx).1
    }

    fn handle_batch(
        &self,
        pkts: &mut [Packet],
        conn: &[bool],
        ctx: &mut dyn FlowStateApi<DpiFlow>,
        out: &mut sprayer::api::VerdictSink,
    ) {
        debug_assert_eq!(pkts.len(), conn.len());
        // One core-id read and one counter flush for the whole batch; the
        // automaton scans themselves are inherently per-packet (per-flow
        // cursors). Connection packets (table lifecycle + their own final
        // scan) stay scalar.
        let core = ctx.core_id();
        let mut acc = ScanAcc::default();
        for (pkt, &is_conn) in pkts.iter_mut().zip(conn) {
            let verdict = if is_conn {
                self.connection_packets(pkt, ctx)
            } else {
                self.scan_payload_on(pkt, ctx, core, &mut acc)
            };
            out.push(verdict);
        }
        self.flush(&acc);
    }

    // `replicate_updates` stays at the tracked default. DPI is the
    // write-per-packet NF SCR exists for: the automaton cursors advance
    // on every scanned payload, and every cursor advance is a
    // `modify_local_flow` the batch mutation log records — so scanned
    // keys ship exactly from the cores that wrote them. An unknown flow
    // is scanned statelessly (no table write) and ships nothing.

    fn evict_flow(
        &self,
        _key: &sprayer_net::FlowKey,
        _state: &mut DpiFlow,
        _reason: sprayer::api::EvictReason,
    ) {
        // Cursors hold no external resources — dropping them is the
        // whole cleanup. Count it: a mid-pattern cursor discarded here
        // is a real detection gap (the flow rescans from the automaton
        // root if it speaks again), and silent gaps are how an IDS rots.
        self.evicted_cursors.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer::config::DispatchMode;
    use sprayer::coremap::CoreMap;
    use sprayer::scr::UpdateOp;
    use sprayer::tables::LocalTables;
    use sprayer_net::{FiveTuple, PacketBuilder};

    #[test]
    fn profile_label_encodes_the_pattern_count() {
        let nf = DpiNf::new(&["attack", "exploit", "malware"]);
        assert_eq!(nf.profile_label(), "dpi/patterns:3");
    }

    #[test]
    fn automaton_finds_all_overlapping_matches() {
        let ac = Automaton::compile(&["he", "she", "his", "hers"]);
        let mut found = Vec::new();
        ac.scan(0, b"ushers", &mut |p| found.push(p));
        // "she" (1), "he" (0), "hers" (3).
        found.sort_unstable();
        assert_eq!(found, vec![0, 1, 3]);
    }

    #[test]
    fn automaton_state_carries_across_chunks() {
        let ac = Automaton::compile(&["malware"]);
        let mut found = 0;
        let s = ac.scan(0, b"...malw", &mut |_| found += 1);
        assert_eq!(found, 0, "split pattern not yet complete");
        ac.scan(s, b"are!...", &mut |_| found += 1);
        assert_eq!(found, 1, "cross-chunk match must be found");
        // Without carrying state it is missed:
        let mut missed = 0;
        ac.scan(0, b"are!...", &mut |_| missed += 1);
        assert_eq!(missed, 0);
    }

    #[test]
    fn automaton_repeated_pattern_counts_each() {
        let ac = Automaton::compile(&["ab"]);
        let mut n = 0;
        ac.scan(0, b"ababab", &mut |_| n += 1);
        assert_eq!(n, 3);
    }

    fn rss_harness() -> (DpiNf, LocalTables<DpiFlow>, CoreMap) {
        let map = CoreMap::new(DispatchMode::Rss, 4);
        (
            DpiNf::new(&["attack"]),
            LocalTables::new(map.clone(), 64),
            map,
        )
    }

    #[test]
    fn under_rss_split_payload_is_detected() {
        let (dpi, mut tables, map) = rss_harness();
        let t = FiveTuple::tcp(0x0a000001, 4000, 0x0a000002, 80);
        let core = map.designated_for_tuple(&t);

        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        dpi.connection_packets(&mut syn, &mut tables.ctx(core));

        let mut p1 = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"..att");
        dpi.regular_packets(&mut p1, &mut tables.ctx(core));
        assert_eq!(dpi.matches.load(Ordering::Relaxed), 0);

        let mut p2 = PacketBuilder::new().tcp(t, 6, 0, TcpFlags::ACK, b"ack..");
        dpi.regular_packets(&mut p2, &mut tables.ctx(core));
        assert_eq!(
            dpi.matches.load(Ordering::Relaxed),
            1,
            "cross-packet pattern found"
        );
    }

    #[test]
    fn directions_have_independent_cursors() {
        let (dpi, mut tables, map) = rss_harness();
        let t = FiveTuple::tcp(0x0a000001, 4000, 0x0a000002, 80);
        let core = map.designated_for_tuple(&t);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        dpi.connection_packets(&mut syn, &mut tables.ctx(core));

        // First half in one direction, second half in the other: no match.
        let mut p1 = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"att");
        dpi.regular_packets(&mut p1, &mut tables.ctx(core));
        let mut p2 = PacketBuilder::new().tcp(t.reversed(), 1, 0, TcpFlags::ACK, b"ack");
        dpi.regular_packets(&mut p2, &mut tables.ctx(core));
        assert_eq!(
            dpi.matches.load(Ordering::Relaxed),
            0,
            "directions must not share a cursor"
        );
    }

    #[test]
    fn spray_mode_counts_unscanned_bytes() {
        // Under spraying, packets on non-designated cores cannot update
        // the automaton: the NF must surface the coverage loss.
        let map = CoreMap::new(DispatchMode::Sprayer, 4);
        let dpi = DpiNf::new(&["attack"]);
        let mut tables: LocalTables<DpiFlow> = LocalTables::new(map.clone(), 64);
        let t = FiveTuple::tcp(0x0a000001, 4000, 0x0a000002, 80);
        let designated = map.designated_for_tuple(&t);
        let other = (designated + 1) % 4;

        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        dpi.connection_packets(&mut syn, &mut tables.ctx(designated));

        let mut p = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"attack");
        assert_eq!(
            dpi.regular_packets(&mut p, &mut tables.ctx(other)),
            Verdict::Forward
        );
        assert_eq!(dpi.matches.load(Ordering::Relaxed), 0);
        assert_eq!(dpi.unscanned_bytes.load(Ordering::Relaxed), 6);

        let mut p2 = PacketBuilder::new().tcp(t, 7, 0, TcpFlags::ACK, b"attack");
        dpi.regular_packets(&mut p2, &mut tables.ctx(designated));
        assert_eq!(dpi.matches.load(Ordering::Relaxed), 1);
        assert_eq!(dpi.scanned_bytes.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn ips_mode_drops_matching_packets() {
        let (mut dpi, mut tables, map) = {
            let (d, t, m) = rss_harness();
            (d, t, m)
        };
        dpi.drop_on_match = true;
        let t = FiveTuple::tcp(0x0a000001, 4000, 0x0a000002, 80);
        let core = map.designated_for_tuple(&t);
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        dpi.connection_packets(&mut syn, &mut tables.ctx(core));
        let mut evil = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"attack!");
        assert_eq!(
            dpi.regular_packets(&mut evil, &mut tables.ctx(core)),
            Verdict::Drop
        );
        let mut benign = PacketBuilder::new().tcp(t, 8, 0, TcpFlags::ACK, b"hello");
        assert_eq!(
            dpi.regular_packets(&mut benign, &mut tables.ctx(core)),
            Verdict::Forward
        );
    }

    #[test]
    fn descriptor_is_flagged_incompatible() {
        let dpi = DpiNf::new(&["x"]);
        let d = dpi.descriptor();
        assert!(!d.sprayer_compatible);
        assert!(d.writes_flow_state_per_packet());
    }

    #[test]
    fn unknown_flow_falls_back_to_stateless_scan() {
        let (dpi, mut tables, map) = rss_harness();
        let t = FiveTuple::tcp(0x0a000001, 4000, 0x0a000002, 80);
        let core = map.designated_for_tuple(&t);
        // No SYN: pattern within a single packet is still caught.
        let mut p = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"..attack..");
        dpi.regular_packets(&mut p, &mut tables.ctx(core));
        assert_eq!(dpi.matches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn replicate_ships_cursor_writes_only() {
        // Under SCR every core scans against its local replica; the
        // tracked default ships a key exactly when the scan advanced a
        // cursor (a table write), never for stateless scans.
        let dpi = DpiNf::new(&["attack"]);
        let map = CoreMap::new(DispatchMode::Scr, 4);
        let mut tables: LocalTables<DpiFlow> = LocalTables::new(map, 1024);
        let t = FiveTuple::tcp(0x0a000001, 4000, 0x0a000002, 80);

        // Core 0 holds the flow (SYN inserted locally): the data scan
        // advances the cursor, and the SYN's insert and the scan's
        // modify dedupe to one Put.
        let mut syn = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b"");
        dpi.connection_packets(&mut syn, &mut tables.ctx(0));
        let mut data = PacketBuilder::new().tcp(t, 1, 0, TcpFlags::ACK, b"..att");
        dpi.regular_packets(&mut data, &mut tables.ctx(0));
        let mut ops = Vec::new();
        dpi.replicate_updates(&[], &[], &tables.ctx(0), &mut ops);
        assert!(matches!(&ops[..], [UpdateOp::Put(key, _)] if *key == t.key()));

        // Core 1 has no replica of the flow yet: the same packet is
        // scanned statelessly, writes nothing, and ships nothing.
        let mut data2 = PacketBuilder::new().tcp(t, 6, 0, TcpFlags::ACK, b"ack..");
        dpi.regular_packets(&mut data2, &mut tables.ctx(1));
        let mut ops = Vec::new();
        dpi.replicate_updates(&[], &[], &tables.ctx(1), &mut ops);
        assert!(ops.is_empty(), "stateless scan must not ship: {ops:?}");
    }
}
