//! NFs running through the full middlebox runtimes, in both dispatch
//! modes: the crate-level proof that the Sprayer programming model works
//! for realistic NFs under packet spraying.

use sprayer::config::{DispatchMode, MiddleboxConfig};
use sprayer::runtime_sim::MiddleboxSim;
use sprayer::runtime_threads::ThreadedMiddlebox;
use sprayer_net::flow::splitmix64;
use sprayer_net::{FiveTuple, Packet, PacketBuilder, TcpFlags};
use sprayer_nf::firewall::{AclRule, FirewallNf};
use sprayer_nf::load_balancer::{Backend, LoadBalancerNf};
use sprayer_nf::monitor::MonitorNf;
use sprayer_nf::nat::NatNf;
use sprayer_sim::Time;

const NAT_IP: u32 = 0xc633_640a;
const SERVER: u32 = 0x5db8_d822;
const VIP: (u32, u16) = (0xc633_6401, 80);

fn client_tuple(i: u32) -> FiveTuple {
    // Distinct servers per flow so egress packets (whose client endpoint
    // has been rewritten away) remain attributable to their flow.
    FiveTuple::tcp(0x0a00_0000 + i, 40_000 + (i % 1000) as u16, SERVER + i, 443)
}

fn payload(i: u32) -> [u8; 8] {
    splitmix64(u64::from(i)).to_be_bytes()
}

/// Drive `flows` connections (SYN, data both ways, FIN pair) through a
/// simulated middlebox running the NAT; verify translation consistency
/// per flow on egress.
fn nat_scenario(mode: DispatchMode) {
    let config = MiddleboxConfig::paper_testbed_with_cycles(mode, 500);
    let mut mb = MiddleboxSim::new(config, NatNf::new(NAT_IP, 10_000..11_000));
    let flows = 24u32;
    let mut now = Time::ZERO;

    // Open all connections.
    for i in 0..flows {
        now += Time::from_us(3);
        mb.ingress(
            now,
            PacketBuilder::new().tcp(client_tuple(i), 0, 0, TcpFlags::SYN, b""),
        );
    }
    mb.run_until(now + Time::from_ms(5));
    let opened = mb.take_egress();
    assert_eq!(
        opened.len(),
        flows as usize,
        "every SYN must be translated and forwarded"
    );

    // Map each flow to its external port as seen on the translated SYN.
    let mut ext_port = std::collections::HashMap::new();
    for (_, pkt) in &opened {
        let t = pkt.tuple().unwrap();
        assert_eq!(t.src_addr, NAT_IP);
        ext_port.insert((t.dst_addr, t.dst_port), t.src_port);
    }

    // Data in both directions.
    now = mb.now();
    let per_flow = 40u32;
    for j in 0..per_flow {
        for i in 0..flows {
            now += Time::from_ns(800);
            let t = client_tuple(i);
            if j % 2 == 0 {
                mb.ingress(
                    now,
                    PacketBuilder::new().tcp(t, j, 0, TcpFlags::ACK, &payload(i * 1000 + j)),
                );
            } else {
                let port = ext_port[&(t.dst_addr, t.dst_port)];
                let back = FiveTuple::tcp(t.dst_addr, 443, NAT_IP, port);
                mb.ingress(
                    now,
                    PacketBuilder::new().tcp(back, j, 0, TcpFlags::ACK, &payload(i * 7 + j)),
                );
            }
        }
    }
    mb.run_until(now + Time::from_ms(50));
    let data_out = mb.take_egress();
    assert_eq!(
        data_out.len(),
        (flows * per_flow) as usize,
        "all data packets must translate ({} stats: {:?})",
        mode,
        mb.stats()
    );
    for (_, pkt) in &data_out {
        let t = pkt.tuple().unwrap();
        if t.src_addr == NAT_IP {
            // Outbound: source must be this flow's stable external port.
            assert_eq!(ext_port[&(t.dst_addr, t.dst_port)], t.src_port);
        } else {
            // Inbound: destination restored to an internal client.
            assert_eq!(t.dst_addr & 0xff00_0000, 0x0a00_0000);
        }
    }

    // Close everything: FIN from each side.
    now = mb.now();
    for i in 0..flows {
        now += Time::from_us(2);
        let t = client_tuple(i);
        mb.ingress(
            now,
            PacketBuilder::new().tcp(t, 99, 1, TcpFlags::FIN | TcpFlags::ACK, b""),
        );
        let port = ext_port[&(t.dst_addr, t.dst_port)];
        let back = FiveTuple::tcp(t.dst_addr, 443, NAT_IP, port);
        now += Time::from_us(2);
        mb.ingress(
            now,
            PacketBuilder::new().tcp(back, 99, 1, TcpFlags::FIN | TcpFlags::ACK, b""),
        );
    }
    mb.run_until(now + Time::from_ms(5));
    assert_eq!(
        mb.nf().pool_len(),
        1000,
        "all external ports must be returned"
    );
    assert_eq!(
        mb.tables().total_entries(),
        0,
        "all flow entries must be removed"
    );
    assert_eq!(mb.stats().unaccounted(), 0);
}

#[test]
fn nat_full_lifecycle_under_spraying() {
    nat_scenario(DispatchMode::Sprayer);
}

#[test]
fn nat_full_lifecycle_under_rss() {
    nat_scenario(DispatchMode::Rss);
}

#[test]
fn firewall_polices_identically_in_both_modes() {
    let acl = vec![AclRule::allow_dst_port(443)];
    let mut counts = Vec::new();
    for mode in [DispatchMode::Rss, DispatchMode::Sprayer] {
        let config = MiddleboxConfig::paper_testbed(mode);
        let mut mb = MiddleboxSim::new(config, FirewallNf::new(acl.clone()));
        let mut now = Time::ZERO;
        // 8 allowed flows (port 443) and 8 denied flows (port 22).
        for i in 0..16u32 {
            let dst_port = if i % 2 == 0 { 443 } else { 22 };
            let t = FiveTuple::tcp(0x0a00_0000 + i, 50_000, SERVER, dst_port);
            now += Time::from_us(5);
            mb.ingress(now, PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b""));
            for j in 0..10u32 {
                now += Time::from_us(1);
                mb.ingress(
                    now,
                    PacketBuilder::new().tcp(t, j + 1, 0, TcpFlags::ACK, &payload(i * 100 + j)),
                );
            }
        }
        mb.run_until(now + Time::from_ms(10));
        let s = mb.stats();
        counts.push((s.forwarded, s.nf_drops));
    }
    assert_eq!(
        counts[0], counts[1],
        "policy outcomes must not depend on dispatch"
    );
    // 8 allowed SYNs + 80 allowed data; 8 denied SYNs + 80 stray data.
    assert_eq!(counts[0], (88, 88));
}

#[test]
fn firewall_concurrent_fins_converge_under_scr() {
    // Under SCR the two FINs of a connection land on arbitrary (usually
    // different) cores. The per-direction FIN bitmask must union
    // commutatively through the replica merge so every core converges
    // to "connection closed" — a lost increment under plain
    // last-writer-wins would leak the context on every replica.
    let acl = vec![AclRule::allow_dst_port(443)];
    let config = MiddleboxConfig::paper_testbed_with_cycles(DispatchMode::Scr, 500);
    let num_cores = config.num_cores;
    let mut mb = MiddleboxSim::new(config, FirewallNf::new(acl));
    let flows = 16u32;
    let tuples: Vec<FiveTuple> = (0..flows)
        .map(|i| FiveTuple::tcp(0x0a00_0000 + i, 50_000, SERVER, 443))
        .collect();

    let mut now = Time::ZERO;
    for t in &tuples {
        now += Time::from_us(5);
        mb.ingress(now, PacketBuilder::new().tcp(*t, 0, 0, TcpFlags::SYN, b""));
    }
    // Let the SYNs' updates replicate: every core holds every context.
    mb.run_until(now + Time::from_ms(5));
    assert!(mb.is_idle());
    assert_eq!(
        mb.tables().total_entries(),
        flows as usize * num_cores,
        "full replication before the close"
    );

    // Close every connection with back-to-back FINs from both sides —
    // no settling time between the pair, so they race.
    now = mb.now();
    for t in &tuples {
        now += Time::from_us(1);
        mb.ingress(
            now,
            PacketBuilder::new().tcp(*t, 9, 1, TcpFlags::FIN | TcpFlags::ACK, b""),
        );
        now += Time::from_us(1);
        mb.ingress(
            now,
            PacketBuilder::new().tcp(t.reversed(), 9, 10, TcpFlags::FIN | TcpFlags::ACK, b""),
        );
    }
    mb.run_until(now + Time::from_ms(10));
    assert!(mb.is_idle());
    let s = mb.stats();
    assert_eq!(s.scr_replay_gap(), 0, "the update plane drains at rest");
    assert_eq!(s.unaccounted(), 0, "{s:?}");
    assert_eq!(
        mb.tables().total_entries(),
        0,
        "every replica must converge to the closed state"
    );

    // The contexts are really gone: post-close data strays on any core.
    let before = mb
        .nf()
        .stray_drops
        .load(std::sync::atomic::Ordering::Relaxed);
    now = mb.now();
    for (i, t) in tuples.iter().enumerate() {
        now += Time::from_us(1);
        mb.ingress(
            now,
            PacketBuilder::new().tcp(*t, 20, 11, TcpFlags::ACK, &payload(i as u32)),
        );
    }
    mb.run_until(now + Time::from_ms(5));
    assert_eq!(
        mb.nf()
            .stray_drops
            .load(std::sync::atomic::Ordering::Relaxed),
        before + u64::from(flows)
    );
}

#[test]
fn load_balancer_keeps_flow_affinity_under_spraying() {
    let backends = vec![
        Backend {
            addr: 0x0a00_0101,
            port: 8080,
        },
        Backend {
            addr: 0x0a00_0102,
            port: 8080,
        },
    ];
    let config = MiddleboxConfig::paper_testbed(DispatchMode::Sprayer);
    let mut mb = MiddleboxSim::new(config, LoadBalancerNf::new(VIP, backends));
    let mut now = Time::ZERO;
    let flows = 10u32;
    for i in 0..flows {
        let t = FiveTuple::tcp(0x0a01_0000 + i, 40_000, VIP.0, VIP.1);
        now += Time::from_us(5);
        mb.ingress(now, PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b""));
        for j in 0..20u32 {
            now += Time::from_us(1);
            mb.ingress(
                now,
                PacketBuilder::new().tcp(t, j + 1, 0, TcpFlags::ACK, &payload(i * 333 + j)),
            );
        }
    }
    mb.run_until(now + Time::from_ms(10));
    let egress = mb.take_egress();
    assert_eq!(egress.len(), (flows * 21) as usize);

    // Every packet of a flow must go to one backend, despite spraying.
    let mut assignment: std::collections::HashMap<(u32, u16), u32> =
        std::collections::HashMap::new();
    for (_, pkt) in egress {
        let t = pkt.tuple().unwrap();
        let client = (t.src_addr, t.src_port);
        let backend = t.dst_addr;
        if let Some(&prev) = assignment.get(&client) {
            assert_eq!(prev, backend, "flow affinity broken for {client:?}");
        } else {
            assignment.insert(client, backend);
        }
    }
    assert_eq!(assignment.len(), flows as usize);
}

#[test]
fn monitor_counts_every_packet_in_both_modes() {
    for mode in [DispatchMode::Rss, DispatchMode::Sprayer] {
        let config = MiddleboxConfig::paper_testbed(mode);
        let mut mb = MiddleboxSim::new(config, MonitorNf::new(8));
        let mut now = Time::ZERO;
        let flows = 6u32;
        for i in 0..flows {
            let t = client_tuple(i);
            now += Time::from_us(5);
            mb.ingress(now, PacketBuilder::new().tcp(t, 0, 0, TcpFlags::SYN, b""));
            for j in 0..30u32 {
                now += Time::from_us(1);
                mb.ingress(
                    now,
                    PacketBuilder::new().tcp(t, j, 0, TcpFlags::ACK, &payload(i * 47 + j)),
                );
            }
            now += Time::from_us(1);
            mb.ingress(now, PacketBuilder::new().tcp(t, 99, 0, TcpFlags::RST, b""));
        }
        mb.run_until(now + Time::from_ms(10));
        let totals = mb.nf().aggregate();
        assert_eq!(totals.packets, u64::from(flows) * 32, "{mode}");
        assert_eq!(totals.connections_opened, u64::from(flows));
        assert_eq!(totals.connections_closed, u64::from(flows));
        if mode == DispatchMode::Sprayer {
            // Loose-consistency shards: multiple cores contributed.
            let busy = mb.nf().aggregate();
            assert!(busy.packets > 0);
            let active_cores = mb
                .stats()
                .per_core
                .iter()
                .filter(|c| c.processed > 0)
                .count();
            assert!(active_cores >= 6, "spraying must spread the monitor's work");
        }
    }
}

#[test]
fn threaded_runtime_runs_the_nat() {
    let nat = NatNf::new(NAT_IP, 10_000..11_000);
    let flows = 12u32;
    let syns: Vec<Packet> = (0..flows)
        .map(|i| PacketBuilder::new().tcp(client_tuple(i), 0, 0, TcpFlags::SYN, b""))
        .collect();
    let mut data = Vec::new();
    for j in 0..10u32 {
        for i in 0..flows {
            data.push(PacketBuilder::new().tcp(
                client_tuple(i),
                j,
                0,
                TcpFlags::ACK,
                &payload(i * 99 + j),
            ));
        }
    }
    let out = ThreadedMiddlebox::process_phases(DispatchMode::Sprayer, 4, &nat, vec![syns, data]);
    assert_eq!(out.forwarded.len(), (flows + flows * 10) as usize);
    assert_eq!(out.nf_drops, 0);
    for pkt in &out.forwarded {
        assert_eq!(
            pkt.tuple().unwrap().src_addr,
            NAT_IP,
            "all egress is translated"
        );
    }
}
