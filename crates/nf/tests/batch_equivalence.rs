//! Batch-vs-scalar equivalence for every NF.
//!
//! [`NetworkFunction::handle_batch`] must be observationally identical to
//! the scalar handlers: same verdicts, same packet rewrites, same flow
//! tables, same counters. Overrides amortize atomic counter flushes and
//! hoist per-batch invariants — none of which may change outcomes. These
//! properties drive random packet scripts (SYN / SYN-ACK / data both
//! directions / FIN / RST across a small flow universe, with payloads
//! chosen to split DPI patterns over packet boundaries) through two
//! identical NF+table harnesses — one per-packet via the scalar
//! handlers, one via [`engine::run_nf_batch`] — and assert equality.
//!
//! Batches are formed the way the runtime forms them: connection packets
//! on the flow's designated core, regular packets sprayed to arbitrary
//! cores, one core per `handle_batch` call.

use proptest::prelude::*;
use sprayer::api::{NetworkFunction, Verdict, VerdictSink};
use sprayer::config::DispatchMode;
use sprayer::coremap::CoreMap;
use sprayer::engine;
use sprayer::tables::LocalTables;
use sprayer_net::{FiveTuple, Packet, PacketBuilder, TcpFlags};
use sprayer_nf::firewall::{AclRule, FirewallNf};
use sprayer_nf::load_balancer::Backend;
use sprayer_nf::{DpiNf, LoadBalancerNf, MonitorNf, Nat64Nf, NatNf, RedundancyNf, SyntheticNf};
use std::sync::atomic::Ordering;

const NUM_CORES: usize = 4;
const FLOWS: u8 = 8;
const CLIENT: u32 = 0x0a00_0001; // 10.0.0.1
const SERVER: u32 = 0xc633_6401; // 198.51.100.1 (also the LB's VIP)
const NAT_IP: u32 = 0xc633_640a;
const ALLOWED_PORT: u16 = 443;
const DENIED_PORT: u16 = 22;

/// Payload menu: empty, a full DPI pattern, the pattern split across two
/// packets, and a ≥32-byte block (a full redundancy-elimination window).
const PAYLOADS: [&[u8]; 5] = [
    b"",
    b"attack",
    b"..att",
    b"ack..",
    b"0123456789abcdef0123456789abcdef",
];

/// Even flows target the allowed port / the VIP; odd flows don't.
fn flow_tuple(flow: u8) -> FiveTuple {
    let flow = flow % FLOWS;
    let port = if flow.is_multiple_of(2) {
        ALLOWED_PORT
    } else {
        DENIED_PORT
    };
    FiveTuple::tcp(
        CLIENT + u32::from(flow),
        40_000 + u16::from(flow),
        SERVER,
        port,
    )
}

/// One scripted packet: (flow, kind, payload index).
type Step = (u8, u8, u8);

fn build_packet(step: Step, seq: u32) -> Packet {
    let (flow, kind, payload) = step;
    let t = flow_tuple(flow);
    let p = PAYLOADS[usize::from(payload) % PAYLOADS.len()];
    let b = PacketBuilder::new().ttl(64);
    match kind % 7 {
        0 => b.tcp(t, seq, 0, TcpFlags::SYN, b""),
        1 => b.tcp(t.reversed(), seq, seq, TcpFlags::SYN | TcpFlags::ACK, b""),
        2 => b.tcp(t, seq, seq, TcpFlags::ACK, p),
        3 => b.tcp(t.reversed(), seq, seq, TcpFlags::ACK, p),
        4 => b.tcp(t, seq, seq, TcpFlags::FIN | TcpFlags::ACK, p),
        5 => b.tcp(t.reversed(), seq, seq, TcpFlags::FIN | TcpFlags::ACK, b""),
        _ => b.tcp(t, seq, seq, TcpFlags::RST, b""),
    }
}

/// A generated script: per batch, a spray-core selector and the steps.
type Script = Vec<(u8, Vec<Step>)>;

fn script() -> impl Strategy<Value = Script> {
    prop::collection::vec(
        (
            any::<u8>(),
            prop::collection::vec((0u8..FLOWS, 0u8..7, 0u8..PAYLOADS.len() as u8), 1..=16),
        ),
        1..=12,
    )
}

/// Turn a script into runtime-shaped batches: connection packets land on
/// their designated core (the redirect has already happened by the time
/// the engine invokes the NF), regular packets go wherever the NIC
/// sprayed them. One `(core, packets)` entry per `handle_batch` call.
fn form_batches(map: &CoreMap, script: &Script) -> Vec<(usize, Vec<Packet>)> {
    let mut batches = Vec::new();
    let mut seq = 0u32;
    for (core_sel, steps) in script {
        let mut per_core: Vec<Vec<Packet>> = vec![Vec::new(); NUM_CORES];
        for (i, &step) in steps.iter().enumerate() {
            let pkt = build_packet(step, seq);
            seq += 1;
            let tuple = pkt.tuple().expect("script packets are TCP");
            let core = if pkt.is_connection_packet() {
                map.designated_for_tuple(&tuple)
            } else {
                (usize::from(*core_sel) + i) % NUM_CORES
            };
            per_core[core].push(pkt);
        }
        for (core, pkts) in per_core.into_iter().enumerate() {
            if !pkts.is_empty() {
                batches.push((core, pkts));
            }
        }
    }
    batches
}

/// What both executions must agree on, packet for packet.
#[derive(Debug, PartialEq)]
struct Outcome {
    verdicts: Vec<Verdict>,
    bytes: Vec<Vec<u8>>,
}

fn run_scalar<NF: NetworkFunction>(
    nf: &NF,
    tables: &mut LocalTables<NF::Flow>,
    batches: &[(usize, Vec<Packet>)],
) -> Outcome
where
    NF::Flow: Clone,
{
    let mut out = Outcome {
        verdicts: Vec::new(),
        bytes: Vec::new(),
    };
    for (core, pkts) in batches {
        for pkt in pkts {
            let mut pkt = pkt.clone();
            let is_conn = pkt.is_connection_packet();
            let mut ctx = tables.ctx(*core);
            let v = if is_conn {
                nf.connection_packets(&mut pkt, &mut ctx)
            } else {
                nf.regular_packets(&mut pkt, &mut ctx)
            };
            out.verdicts.push(v);
            out.bytes.push(pkt.bytes().to_vec());
        }
    }
    out
}

fn run_batched<NF: NetworkFunction>(
    nf: &NF,
    tables: &mut LocalTables<NF::Flow>,
    batches: &[(usize, Vec<Packet>)],
) -> Outcome
where
    NF::Flow: Clone,
{
    let mut out = Outcome {
        verdicts: Vec::new(),
        bytes: Vec::new(),
    };
    let mut sink = VerdictSink::new();
    for (core, pkts) in batches {
        let mut pkts: Vec<Packet> = pkts.clone();
        let conn: Vec<bool> = pkts.iter().map(Packet::is_connection_packet).collect();
        let mut ctx = tables.ctx(*core);
        engine::run_nf_batch(nf, &mut pkts, &conn, &mut ctx, &mut sink);
        out.verdicts.extend_from_slice(sink.verdicts());
        for p in &pkts {
            out.bytes.push(p.bytes().to_vec());
        }
    }
    out
}

/// Run the same script scalar and batched and assert full equivalence:
/// verdicts, rewritten bytes, flow-table shape and contents, and the
/// NF's own counters (via `counters`, which must read every public one).
fn check_equivalence<NF: NetworkFunction>(
    mode: DispatchMode,
    make: impl Fn() -> NF,
    script: &Script,
    counters: impl Fn(&NF) -> Vec<u64>,
) -> Result<(), TestCaseError>
where
    NF::Flow: Clone + PartialEq + std::fmt::Debug,
{
    let map = CoreMap::new(mode, NUM_CORES);
    let batches = form_batches(&map, script);
    let capacity = 1024;

    let nf_a = make();
    let mut tables_a: LocalTables<NF::Flow> = LocalTables::new(map.clone(), capacity);
    let scalar = run_scalar(&nf_a, &mut tables_a, &batches);

    let nf_b = make();
    let mut tables_b: LocalTables<NF::Flow> = LocalTables::new(map.clone(), capacity);
    let batched = run_batched(&nf_b, &mut tables_b, &batches);

    prop_assert_eq!(&scalar.verdicts, &batched.verdicts);
    prop_assert_eq!(&scalar.bytes, &batched.bytes, "packet rewrites diverged");
    for core in 0..NUM_CORES {
        prop_assert_eq!(
            tables_a.entries_on(core),
            tables_b.entries_on(core),
            "table population diverged on core {}",
            core
        );
        for flow in 0..FLOWS {
            let key = flow_tuple(flow).key();
            prop_assert_eq!(
                tables_a.peek(core, &key),
                tables_b.peek(core, &key),
                "flow state diverged for flow {} on core {}",
                flow,
                core
            );
        }
    }
    prop_assert_eq!(counters(&nf_a), counters(&nf_b), "NF counters diverged");
    Ok(())
}

fn acl() -> Vec<AclRule> {
    vec![
        AclRule::allow_dst_port(ALLOWED_PORT),
        AclRule::default_action(sprayer_nf::firewall::Action::Deny),
    ]
}

proptest! {
    #[test]
    fn firewall_batch_matches_scalar(s in script(), rss in any::<bool>()) {
        let mode = if rss { DispatchMode::Rss } else { DispatchMode::Sprayer };
        check_equivalence(mode, || FirewallNf::new(acl()), &s, |fw| vec![
            fw.admitted.load(Ordering::Relaxed),
            fw.rejected.load(Ordering::Relaxed),
            fw.stray_drops.load(Ordering::Relaxed),
            fw.migrated_contexts.load(Ordering::Relaxed),
        ])?;
    }

    #[test]
    fn nat_batch_matches_scalar(s in script(), rss in any::<bool>()) {
        let mode = if rss { DispatchMode::Rss } else { DispatchMode::Sprayer };
        check_equivalence(mode, || NatNf::new(NAT_IP, 10_000..10_128), &s, |nat| vec![
            nat.stats.translations.load(Ordering::Relaxed),
            nat.stats.pool_exhausted.load(Ordering::Relaxed),
            nat.stats.no_translation.load(Ordering::Relaxed),
            nat.stats.teardowns.load(Ordering::Relaxed),
            nat.pool_len() as u64,
        ])?;
    }

    #[test]
    fn dpi_batch_matches_scalar(s in script(), ips in any::<bool>()) {
        // IDS (count) and IPS (drop) modes; RSS is DPI's supported mode
        // but the sprayed case must stay equivalent too — run both.
        for mode in [DispatchMode::Rss, DispatchMode::Sprayer] {
            check_equivalence(mode, || {
                let mut dpi = DpiNf::new(&["attack", "attack2"]);
                dpi.drop_on_match = ips;
                dpi
            }, &s, |dpi| vec![
                dpi.matches.load(Ordering::Relaxed),
                dpi.scanned_bytes.load(Ordering::Relaxed),
                dpi.unscanned_bytes.load(Ordering::Relaxed),
            ])?;
        }
    }

    #[test]
    fn monitor_batch_matches_scalar(s in script()) {
        check_equivalence(DispatchMode::Sprayer, || MonitorNf::new(NUM_CORES), &s, |mon| {
            let t = mon.aggregate();
            vec![
                t.packets,
                t.bytes,
                t.connection_packets,
                t.connections_opened,
                t.connections_closed,
            ]
        })?;
    }

    #[test]
    fn synthetic_batch_matches_scalar(s in script()) {
        check_equivalence(DispatchMode::Sprayer, SyntheticNf::for_simulator, &s, |nf| vec![
            nf.processed.load(Ordering::Relaxed),
            nf.missing_state.load(Ordering::Relaxed),
        ])?;
    }

    // The remaining NFs use the default (provided) handle_batch; these
    // pin the default loop itself to scalar semantics, so any future
    // override starts from a tested contract.

    #[test]
    fn load_balancer_batch_matches_scalar(s in script()) {
        let backends = vec![
            Backend { addr: 0x0a00_0101, port: 8080 },
            Backend { addr: 0x0a00_0102, port: 8080 },
            Backend { addr: 0x0a00_0103, port: 8081 },
        ];
        check_equivalence(
            DispatchMode::Sprayer,
            || LoadBalancerNf::new((SERVER, ALLOWED_PORT), backends.clone()),
            &s,
            |lb| {
                let mut c = vec![
                    lb.packets.load(Ordering::Relaxed),
                    lb.connections.load(Ordering::Relaxed),
                    lb.stray_drops.load(Ordering::Relaxed),
                ];
                c.extend(lb.active_connections());
                c
            },
        )?;
    }

    #[test]
    fn nat64_batch_matches_scalar(s in script()) {
        let prefix96 = [0x00, 0x64, 0xff, 0x9b, 0, 0, 0, 0, 0, 0, 0, 0];
        let v6_self = [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x64];
        check_equivalence(
            DispatchMode::Sprayer,
            move || Nat64Nf::new(prefix96, v6_self, 20_000..20_064),
            &s,
            |nf| vec![
                nf.translations.load(Ordering::Relaxed),
                nf.pool_exhausted.load(Ordering::Relaxed),
                nf.no_binding.load(Ordering::Relaxed),
                nf.pool_len() as u64,
            ],
        )?;
    }

    #[test]
    fn redundancy_batch_matches_scalar(s in script()) {
        check_equivalence(DispatchMode::Sprayer, || RedundancyNf::new(256), &s, |re| vec![
            re.bytes_seen.load(Ordering::Relaxed),
            re.bytes_eliminated.load(Ordering::Relaxed),
        ])?;
    }
}
