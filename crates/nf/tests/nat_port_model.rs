//! Model-based test for NAT external-port conservation under the flow
//! lifecycle.
//!
//! The NAT's port pool is the one piece of global state a flow-table
//! eviction must release (via `evict_flow`) — and the one place a
//! duplicate delivery could corrupt: a port freed twice serves two
//! flows at once. The realizable duplicate orderings are
//!
//! * an idle/backstop eviction whose hook fires twice (SCR ships the
//!   eviction `Del` to every replica; two cores can stage it before the
//!   first hook's effect replicates);
//! * an eviction racing a FIN/RST teardown for the same flow (the
//!   teardown frees inline, then the already-staged hook fires on the
//!   removed state).
//!
//! Against arbitrary interleavings of connection setup, FIN pairs,
//! RSTs from either side, pair evictions (with duplicate hook
//! delivery), and teardown-then-stale-hook races — over a pool small
//! enough that exhaustion and immediate reuse are routine — the pool
//! must conserve ports exactly: `pool_len + live translations ==
//! pool size` after every operation, no port handed to two flows, and
//! `ports_reclaimed` counting each lifecycle free exactly once.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;
use sprayer::api::{EvictReason, FlowStateApi, NetworkFunction, Verdict};
use sprayer::config::DispatchMode;
use sprayer::coremap::CoreMap;
use sprayer::tables::LocalTables;
use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};
use sprayer_nf::nat::NatEntry;
use sprayer_nf::NatNf;
use std::sync::atomic::Ordering;

const CORES: usize = 4;
const FLOWS: u8 = 10;
const CLIENT: u32 = 0x0a00_0001; // 10.0.0.1
const SERVER: u32 = 0x5db8_d822; // 93.184.216.34
const NAT_IP: u32 = 0xc633_640a; // 198.51.100.10
/// Fewer ports than flows: exhaustion and freed-port reuse both happen
/// constantly, so a double-free would quickly hand one port to two
/// flows and break the conservation count.
const POOL: u16 = 8;

fn client_tuple(f: u8) -> FiveTuple {
    let f = f % FLOWS;
    FiveTuple::tcp(CLIENT + u32::from(f), 40_000 + u16::from(f), SERVER, 443)
}

fn server_tuple(ext_port: u16) -> FiveTuple {
    FiveTuple::tcp(SERVER, 443, NAT_IP, ext_port)
}

#[derive(Debug, Clone)]
enum NatOp {
    /// SYN from the client (retransmits translate as regular packets).
    Open(u8),
    /// FIN from the client side.
    FinClient(u8),
    /// FIN from the server side (addresses the external endpoint).
    FinServer(u8),
    /// RST from the client side.
    RstClient(u8),
    /// RST from the server side.
    RstServer(u8),
    /// Lifecycle reclaim of the translation pair, sweep order (Outward
    /// then Inward). `true` delivers the Outward hook twice — the SCR
    /// duplicate-eviction race.
    EvictPair(u8, bool),
    /// The eviction-racing-teardown ordering: an RST teardown frees the
    /// port inline, then the staged hooks fire on the stale states.
    TeardownThenStaleEvict(u8),
}

fn arb_nat_op() -> impl Strategy<Value = NatOp> {
    prop_oneof![
        any::<u8>().prop_map(NatOp::Open),
        any::<u8>().prop_map(NatOp::FinClient),
        any::<u8>().prop_map(NatOp::FinServer),
        any::<u8>().prop_map(NatOp::RstClient),
        any::<u8>().prop_map(NatOp::RstServer),
        (any::<u8>(), any::<bool>()).prop_map(|(f, dup)| NatOp::EvictPair(f, dup)),
        any::<u8>().prop_map(NatOp::TeardownThenStaleEvict),
    ]
}

struct Fixture {
    nat: NatNf,
    tables: LocalTables<NatEntry>,
    map: CoreMap,
    /// Live translations: flow → (external port, FIN direction bits).
    open: BTreeMap<u8, (u16, u8)>,
    /// Lifecycle frees the fixture has performed (must equal the NF's
    /// `ports_reclaimed` counter at all times).
    reclaims: u64,
}

impl Fixture {
    fn new() -> Self {
        let map = CoreMap::new(DispatchMode::Sprayer, CORES);
        Fixture {
            nat: NatNf::new(NAT_IP, 50_000..50_000 + POOL),
            tables: LocalTables::new(map.clone(), 1024),
            map,
            open: BTreeMap::new(),
            reclaims: 0,
        }
    }

    /// Run a connection packet on its designated core, as the runtime
    /// routes it. `select_port` pins the translated tuple to the same
    /// core, so both directions of a flow land on one core.
    fn conn(&mut self, tuple: FiveTuple, flags: TcpFlags) -> Verdict {
        let core = self.map.designated_for_tuple(&tuple);
        let mut pkt = PacketBuilder::new().tcp(tuple, 0, 0, flags, b"");
        let mut ctx = self.tables.ctx(core);
        self.nat.connection_packets(&mut pkt, &mut ctx)
    }

    /// Remove the pair from the table (what a sweep or the backstop
    /// does) and return the states for hook delivery.
    fn reclaim_pair(&mut self, f: u8, port: u16) -> (Option<NatEntry>, Option<NatEntry>) {
        let orig_key = client_tuple(f).key();
        let trans_key = server_tuple(port).key();
        let core = self.map.designated_for_key(&orig_key);
        let mut ctx = self.tables.ctx(core);
        let outward = ctx.remove_local_flow(&orig_key);
        let inward = ctx.remove_local_flow(&trans_key);
        (outward, inward)
    }

    fn check(&self) -> Result<(), TestCaseError> {
        // Port conservation: every port is either free or owned by
        // exactly one live translation — a double-free would push
        // `pool_len` past `POOL - open`, a leak would leave it short.
        prop_assert_eq!(
            self.nat.pool_len() + self.open.len(),
            usize::from(POOL),
            "pool out of balance: {} free + {} open",
            self.nat.pool_len(),
            self.open.len()
        );
        prop_assert_eq!(
            self.nat.stats.ports_reclaimed.load(Ordering::Relaxed),
            self.reclaims,
            "a duplicate eviction slipped past the reclaim guard"
        );
        Ok(())
    }
}

proptest! {
    /// The satellite property: across arbitrary interleavings of
    /// setup, teardown, eviction, and every realizable duplicate
    /// ordering, the port pool conserves exactly — duplicate eviction
    /// of a NAT entry cannot double-free its port.
    #[test]
    fn nat_port_pool_conserves_under_eviction_races(ops in vec(arb_nat_op(), 0..200)) {
        let mut fx = Fixture::new();

        for op in &ops {
            match *op {
                NatOp::Open(f) => {
                    let f = f % FLOWS;
                    let already_open = fx.open.contains_key(&f);
                    let tuple = client_tuple(f);
                    let core = fx.map.designated_for_tuple(&tuple);
                    let mut pkt = PacketBuilder::new().tcp(tuple, 0, 0, TcpFlags::SYN, b"");
                    let verdict = {
                        let mut ctx = fx.tables.ctx(core);
                        fx.nat.connection_packets(&mut pkt, &mut ctx)
                    };
                    if already_open {
                        // Retransmitted SYN: translates, allocates nothing.
                        prop_assert_eq!(verdict, Verdict::Forward);
                    } else if verdict == Verdict::Forward {
                        let port = pkt.tuple().unwrap().src_port;
                        // The pool may never hand a port to two flows.
                        prop_assert!(
                            !fx.open.values().any(|(p, _)| *p == port),
                            "port {} double-allocated",
                            port
                        );
                        fx.open.insert(f, (port, 0));
                    }
                    // Drop == pool exhausted (or no core-preserving
                    // port): no state change.
                }
                NatOp::FinClient(f) => {
                    let f = f % FLOWS;
                    fx.conn(client_tuple(f), TcpFlags::FIN | TcpFlags::ACK);
                    if let Some((port, fins)) = fx.open.get(&f).copied() {
                        let fins = fins | 0b01;
                        if fins == 0b11 {
                            fx.open.remove(&f);
                            let _ = port;
                        } else {
                            fx.open.insert(f, (port, fins));
                        }
                    }
                }
                NatOp::FinServer(f) => {
                    let f = f % FLOWS;
                    // The server addresses the external endpoint; only
                    // meaningful when a translation (or its lingering
                    // Inward half) exists.
                    if let Some((port, fins)) = fx.open.get(&f).copied() {
                        fx.conn(server_tuple(port), TcpFlags::FIN | TcpFlags::ACK);
                        let fins = fins | 0b10;
                        if fins == 0b11 {
                            fx.open.remove(&f);
                        } else {
                            fx.open.insert(f, (port, fins));
                        }
                    }
                }
                NatOp::RstClient(f) => {
                    let f = f % FLOWS;
                    fx.conn(client_tuple(f), TcpFlags::RST);
                    fx.open.remove(&f);
                }
                NatOp::RstServer(f) => {
                    let f = f % FLOWS;
                    if let Some((port, _)) = fx.open.get(&f).copied() {
                        fx.conn(server_tuple(port), TcpFlags::RST);
                        fx.open.remove(&f);
                    }
                }
                NatOp::EvictPair(f, dup) => {
                    let f = f % FLOWS;
                    let Some((port, _)) = fx.open.get(&f).copied() else {
                        continue;
                    };
                    let (outward, inward) = fx.reclaim_pair(f, port);
                    let orig_key = client_tuple(f).key();
                    let trans_key = server_tuple(port).key();
                    if let Some(mut state) = outward {
                        // First delivery frees the port…
                        fx.nat.evict_flow(&orig_key, &mut state.clone(), EvictReason::Idle);
                        fx.reclaims += 1;
                        if dup {
                            // …the duplicate must hit the guard.
                            fx.nat.evict_flow(&orig_key, &mut state, EvictReason::Capacity);
                        }
                    }
                    if let Some(mut state) = inward {
                        // The Inward half deliberately frees nothing.
                        fx.nat.evict_flow(&trans_key, &mut state, EvictReason::Idle);
                    }
                    fx.open.remove(&f);
                }
                NatOp::TeardownThenStaleEvict(f) => {
                    let f = f % FLOWS;
                    let Some((port, _)) = fx.open.get(&f).copied() else {
                        continue;
                    };
                    // Peek the states the sweep would have staged…
                    let orig_key = client_tuple(f).key();
                    let trans_key = server_tuple(port).key();
                    let core = fx.map.designated_for_key(&orig_key);
                    let staged_out = fx.tables.peek(core, &orig_key).cloned();
                    let staged_in = fx.tables.peek(core, &trans_key).cloned();
                    // …the RST teardown wins the race and frees inline…
                    fx.conn(client_tuple(f), TcpFlags::RST);
                    fx.open.remove(&f);
                    // …then the stale hooks fire and must free nothing.
                    if let Some(mut state) = staged_out {
                        fx.nat.evict_flow(&orig_key, &mut state, EvictReason::Idle);
                    }
                    if let Some(mut state) = staged_in {
                        fx.nat.evict_flow(&trans_key, &mut state, EvictReason::Idle);
                    }
                }
            }
            fx.check()?;
        }

        // Drain: evict everything still open; the pool must end full.
        let still_open: Vec<(u8, u16)> =
            fx.open.iter().map(|(f, (p, _))| (*f, *p)).collect();
        for (f, port) in still_open {
            let (outward, inward) = fx.reclaim_pair(f, port);
            if let Some(mut state) = outward {
                fx.nat.evict_flow(&client_tuple(f).key(), &mut state, EvictReason::Idle);
                fx.reclaims += 1;
            }
            if let Some(mut state) = inward {
                fx.nat.evict_flow(&server_tuple(port).key(), &mut state, EvictReason::Idle);
            }
            fx.open.remove(&f);
        }
        fx.check()?;
        prop_assert_eq!(fx.nat.pool_len(), usize::from(POOL));
    }
}
