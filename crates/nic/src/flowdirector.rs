//! Intel Flow Director as a rule-table model.
//!
//! Flow Director is the 82599 feature intended to pin specific flows to
//! specific queues. A *perfect filter* matches five-tuple fields plus an
//! optional 16-bit "flex word" at a configurable byte offset into the
//! packet; the filter table holds at most 8 K perfect filters.
//!
//! Sprayer uses it "in an unconventional manner" (§4): instead of
//! matching flows, it points the flex word at the **TCP checksum field**
//! and installs one rule per value of the checksum's low *k* bits, where
//! `2^k >= num_queues`. Since the checksum looks random, TCP packets
//! spread uniformly over queues regardless of their flow. Masking to the
//! low bits is what keeps the rule count at `2^k` instead of 64 K — the
//! paper's answer to the limited rule space.
//!
//! Packets that match no rule fall back to RSS (handled by [`crate::nic`]).

use serde::{Deserialize, Serialize};
use sprayer_net::{Packet, Protocol};

/// Maximum number of perfect filters (82599 datasheet: 8 K).
pub const FDIR_PERFECT_CAPACITY: usize = 8192;

/// Byte offset of the checksum field within a TCP header.
const TCP_CHECKSUM_OFFSET: usize = 16;

/// Match criteria of one Flow Director perfect filter.
///
/// `None` fields are wildcards. The flex word matches
/// `(flex_word & flex_mask) == flex_value` where the flex word is read
/// big-endian at `flex_offset` bytes into the *transport header*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdirFilter {
    /// Transport protocol to match.
    pub protocol: Option<Protocol>,
    /// Exact source address.
    pub src_addr: Option<u32>,
    /// Exact destination address.
    pub dst_addr: Option<u32>,
    /// Exact source port.
    pub src_port: Option<u16>,
    /// Exact destination port.
    pub dst_port: Option<u16>,
    /// Flex-word match: (offset into L4 header, mask, expected value).
    pub flex: Option<FlexMatch>,
}

/// A masked 16-bit match at a byte offset into the transport header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlexMatch {
    /// Byte offset of the big-endian 16-bit word within the L4 header.
    pub offset: usize,
    /// Mask applied before comparison.
    pub mask: u16,
    /// Expected value (already masked).
    pub value: u16,
}

impl FdirFilter {
    /// A filter that matches nothing but the protocol.
    pub fn for_protocol(protocol: Protocol) -> Self {
        FdirFilter {
            protocol: Some(protocol),
            src_addr: None,
            dst_addr: None,
            src_port: None,
            dst_port: None,
            flex: None,
        }
    }

    /// Does `packet` satisfy every non-wildcard criterion?
    pub fn matches(&self, packet: &Packet) -> bool {
        let Some(tuple) = packet.tuple() else {
            // Non-IP / fragmented packets never match perfect filters.
            return false;
        };
        if let Some(p) = self.protocol {
            if tuple.protocol != p {
                return false;
            }
        }
        if let Some(a) = self.src_addr {
            if tuple.src_addr != a {
                return false;
            }
        }
        if let Some(a) = self.dst_addr {
            if tuple.dst_addr != a {
                return false;
            }
        }
        if let Some(p) = self.src_port {
            if tuple.src_port != p {
                return false;
            }
        }
        if let Some(p) = self.dst_port {
            if tuple.dst_port != p {
                return false;
            }
        }
        if let Some(flex) = self.flex {
            let Some(l4) = packet.meta().l4_offset else {
                return false;
            };
            let off = l4 + flex.offset;
            let bytes = packet.bytes();
            if off + 2 > bytes.len() {
                return false;
            }
            let word = u16::from_be_bytes([bytes[off], bytes[off + 1]]);
            if word & flex.mask != flex.value {
                return false;
            }
        }
        true
    }
}

/// One installed rule: filter → target queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdirRule {
    /// Match criteria.
    pub filter: FdirFilter,
    /// Receive queue packets matching this rule are steered to.
    pub queue: u8,
}

/// Errors installing Flow Director rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdirError {
    /// The perfect-filter table is full (8 K rules).
    TableFull,
}

impl core::fmt::Display for FdirError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FdirError::TableFull => write!(f, "flow director perfect-filter table is full"),
        }
    }
}

impl std::error::Error for FdirError {}

/// The Flow Director rule table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowDirector {
    rules: Vec<FdirRule>,
    /// Lookup counters for diagnostics.
    matched: u64,
    missed: u64,
}

impl FlowDirector {
    /// An empty rule table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install one rule. Fails when the 8 K perfect-filter table is full.
    pub fn install(&mut self, rule: FdirRule) -> Result<(), FdirError> {
        if self.rules.len() >= FDIR_PERFECT_CAPACITY {
            return Err(FdirError::TableFull);
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Remove all rules.
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// Lookups that matched / missed since construction.
    pub fn counters(&self) -> (u64, u64) {
        (self.matched, self.missed)
    }

    /// Install Sprayer's checksum-spray rules (§4).
    ///
    /// Uses the least-significant `k` bits of the TCP checksum, with
    /// `k = ceil(log2(num_queues))`, installing `2^k` rules that exhaust
    /// every masked value — so *every* TCP packet matches some rule and
    /// none spill into the RSS path. Values are assigned to queues
    /// round-robin, which for non-power-of-two queue counts gives the
    /// residual imbalance real hardware would have.
    ///
    /// Returns the number of rules installed.
    pub fn install_checksum_spray(&mut self, num_queues: usize) -> Result<usize, FdirError> {
        assert!((1..=128).contains(&num_queues));
        let k = usize::BITS - (num_queues - 1).leading_zeros(); // ceil(log2)
        let values = 1usize << k;
        let mask = (values - 1) as u16;
        if self.rules.len() + values > FDIR_PERFECT_CAPACITY {
            return Err(FdirError::TableFull);
        }
        for v in 0..values {
            let rule = FdirRule {
                filter: FdirFilter {
                    flex: Some(FlexMatch {
                        offset: TCP_CHECKSUM_OFFSET,
                        mask,
                        value: v as u16,
                    }),
                    ..FdirFilter::for_protocol(Protocol::Tcp)
                },
                queue: (v % num_queues) as u8,
            };
            self.install(rule)?;
        }
        Ok(values)
    }

    /// Look up the queue for `packet`: first matching rule wins (the
    /// hardware reports a single match). `None` means fall back to RSS.
    pub fn lookup(&mut self, packet: &Packet) -> Option<u8> {
        for rule in &self.rules {
            if rule.filter.matches(packet) {
                self.matched += 1;
                return Some(rule.queue);
            }
        }
        self.missed += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};

    fn tcp_packet(payload: &[u8]) -> Packet {
        let t = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
        PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, payload)
    }

    #[test]
    fn spray_rules_cover_every_tcp_packet() {
        let mut fdir = FlowDirector::new();
        let n = fdir.install_checksum_spray(8).unwrap();
        assert_eq!(n, 8);
        for i in 0..200u32 {
            let p = tcp_packet(&i.to_be_bytes());
            assert!(
                fdir.lookup(&p).is_some(),
                "packet {i} must match a spray rule"
            );
        }
        let (matched, missed) = fdir.counters();
        assert_eq!(matched, 200);
        assert_eq!(missed, 0);
    }

    #[test]
    fn spray_queue_equals_checksum_low_bits() {
        let mut fdir = FlowDirector::new();
        fdir.install_checksum_spray(8).unwrap();
        for i in 0..64u32 {
            let p = tcp_packet(&i.to_be_bytes());
            let checksum = p.meta().tcp_checksum.unwrap();
            assert_eq!(fdir.lookup(&p), Some((checksum & 0x7) as u8));
        }
    }

    #[test]
    fn spray_rules_ignore_udp() {
        let mut fdir = FlowDirector::new();
        fdir.install_checksum_spray(8).unwrap();
        let t = FiveTuple::udp(0x0a000001, 5000, 0x0a000002, 53);
        let p = PacketBuilder::new().udp(t, b"x");
        assert_eq!(fdir.lookup(&p), None, "non-TCP must fall back to RSS");
    }

    #[test]
    fn non_power_of_two_queue_counts_round_robin() {
        let mut fdir = FlowDirector::new();
        let n = fdir.install_checksum_spray(6).unwrap();
        assert_eq!(n, 8, "k=3 for 6 queues");
        // Values 0..5 -> queues 0..5, values 6,7 -> queues 0,1.
        let mut queues_seen = std::collections::HashSet::new();
        for i in 0..512u32 {
            let p = tcp_packet(&i.to_be_bytes());
            let q = fdir.lookup(&p).unwrap();
            assert!(q < 6);
            queues_seen.insert(q);
        }
        assert_eq!(queues_seen.len(), 6);
    }

    #[test]
    fn table_capacity_is_enforced() {
        let mut fdir = FlowDirector::new();
        let rule = FdirRule {
            filter: FdirFilter::for_protocol(Protocol::Tcp),
            queue: 0,
        };
        for _ in 0..FDIR_PERFECT_CAPACITY {
            fdir.install(rule).unwrap();
        }
        assert_eq!(fdir.install(rule), Err(FdirError::TableFull));
    }

    #[test]
    fn five_tuple_perfect_filter_matches_exactly() {
        let mut fdir = FlowDirector::new();
        let t = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
        fdir.install(FdirRule {
            filter: FdirFilter {
                protocol: Some(Protocol::Tcp),
                src_addr: Some(t.src_addr),
                dst_addr: Some(t.dst_addr),
                src_port: Some(t.src_port),
                dst_port: Some(t.dst_port),
                flex: None,
            },
            queue: 5,
        })
        .unwrap();
        let hit = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, b"");
        assert_eq!(fdir.lookup(&hit), Some(5));
        let other = FiveTuple::tcp(t.src_addr, 40001, t.dst_addr, 443);
        let miss = PacketBuilder::new().tcp(other, 0, 0, TcpFlags::ACK, b"");
        assert_eq!(fdir.lookup(&miss), None);
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut fdir = FlowDirector::new();
        fdir.install(FdirRule {
            filter: FdirFilter::for_protocol(Protocol::Tcp),
            queue: 1,
        })
        .unwrap();
        fdir.install(FdirRule {
            filter: FdirFilter::for_protocol(Protocol::Tcp),
            queue: 2,
        })
        .unwrap();
        assert_eq!(fdir.lookup(&tcp_packet(b"")), Some(1));
    }

    #[test]
    fn spray_respects_remaining_capacity() {
        let mut fdir = FlowDirector::new();
        let rule = FdirRule {
            filter: FdirFilter::for_protocol(Protocol::Udp),
            queue: 0,
        };
        for _ in 0..FDIR_PERFECT_CAPACITY - 4 {
            fdir.install(rule).unwrap();
        }
        assert_eq!(fdir.install_checksum_spray(8), Err(FdirError::TableFull));
        assert_eq!(fdir.install_checksum_spray(4).unwrap(), 4);
    }
}
