//! Receive-Side Scaling: hash + indirection table → queue.

use crate::toeplitz::{RssKey, ToeplitzLut, SYMMETRIC_KEY};
use sprayer_net::{FiveTuple, FiveTupleV6, Protocol};

/// Number of entries in the RSS indirection table (the 82599 has 128).
pub const INDIRECTION_TABLE_SIZE: usize = 128;

/// RSS configuration: hash key plus the indirection table mapping the low
/// 7 bits of the hash to a receive queue.
///
/// The key is held as a precomputed [`ToeplitzLut`] so per-packet hashing
/// is a table lookup per input byte rather than the bit-serial slide; the
/// table is built once here, at configuration time.
#[derive(Debug, Clone)]
pub struct RssConfig {
    lut: ToeplitzLut,
    table: Vec<u8>,
}

impl RssConfig {
    /// The paper's configuration: the *symmetric* key (so both directions
    /// of a connection land on the same core) and an equal-share
    /// round-robin indirection table over `num_queues` queues.
    pub fn symmetric(num_queues: usize) -> Self {
        Self::with_key(SYMMETRIC_KEY, num_queues)
    }

    /// RSS with an arbitrary key and round-robin indirection table.
    pub fn with_key(key: RssKey, num_queues: usize) -> Self {
        assert!(
            (1..=256).contains(&num_queues),
            "82599 supports up to 128 queues; sanity cap 256"
        );
        let table = (0..INDIRECTION_TABLE_SIZE)
            .map(|i| (i % num_queues) as u8)
            .collect();
        RssConfig {
            lut: ToeplitzLut::new(key),
            table,
        }
    }

    /// Replace the indirection table (length must be
    /// [`INDIRECTION_TABLE_SIZE`]); entries are queue indices.
    pub fn set_table(&mut self, table: Vec<u8>) {
        assert_eq!(table.len(), INDIRECTION_TABLE_SIZE);
        self.table = table;
    }

    /// The hash key in use.
    pub fn key(&self) -> &RssKey {
        self.lut.key()
    }

    /// The 32-bit RSS hash for a packet's tuple (TCP/UDP use the
    /// four-tuple hash; other IP packets hash addresses only).
    pub fn hash(&self, tuple: &FiveTuple) -> u32 {
        match tuple.protocol {
            Protocol::Tcp | Protocol::Udp => self.lut.hash_v4_tuple(tuple),
            Protocol::Other(_) => self.lut.hash_v4_addrs(tuple.src_addr, tuple.dst_addr),
        }
    }

    /// The receive queue for a tuple: hash low bits → indirection table.
    pub fn queue_for(&self, tuple: &FiveTuple) -> u8 {
        let h = self.hash(tuple);
        self.table[(h as usize) % INDIRECTION_TABLE_SIZE]
    }

    /// The queue for a non-IP or address-only classification.
    pub fn queue_for_addrs(&self, src: u32, dst: u32) -> u8 {
        let h = self.lut.hash_v4_addrs(src, dst);
        self.table[(h as usize) % INDIRECTION_TABLE_SIZE]
    }

    /// The receive queue for an IPv6 tuple (the `TCP_IPV6`-style 36-byte
    /// four-tuple hash through the same indirection table).
    pub fn queue_for_v6(&self, tuple: &FiveTupleV6) -> u8 {
        let h = self.lut.hash_v6_tuple(tuple);
        self.table[(h as usize) % INDIRECTION_TABLE_SIZE]
    }

    /// The current indirection table (queue index per hash bucket) —
    /// read-only; reprogram with [`RssConfig::set_table`].
    pub fn table(&self) -> &[u8] {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_share_a_queue_under_symmetric_key() {
        let rss = RssConfig::symmetric(8);
        for i in 0..200u32 {
            let t = FiveTuple::tcp(0x0a00_0000 + i, 1000 + (i as u16), 0xc0a8_0001, 443);
            assert_eq!(rss.queue_for(&t), rss.queue_for(&t.reversed()), "flow {i}");
        }
    }

    #[test]
    fn queues_are_within_bounds() {
        let rss = RssConfig::symmetric(5);
        for i in 0..500u32 {
            let t = FiveTuple::tcp(i, (i % 65536) as u16, !i, 80);
            assert!(rss.queue_for(&t) < 5);
        }
    }

    #[test]
    fn distribution_over_queues_is_roughly_uniform_for_many_flows() {
        let rss = RssConfig::symmetric(8);
        let mut counts = [0u32; 8];
        let n = 20_000u32;
        for i in 0..n {
            // Random-looking endpoints; sequential inputs correlate the
            // symmetric key's hash bits (the key is 16-bit periodic), which
            // is not the regime RSS is designed for.
            let r = sprayer_net::flow::splitmix64(u64::from(i));
            let t = FiveTuple::tcp((r >> 32) as u32, (r >> 16) as u16 | 1024, 0xc0a8_0001, 443);
            counts[rss.queue_for(&t) as usize] += 1;
        }
        let expected = n as f64 / 8.0;
        for (q, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.10, "queue {q} has {c} ({dev:.3} deviation)");
        }
    }

    #[test]
    fn same_flow_always_same_queue() {
        let rss = RssConfig::symmetric(8);
        let t = FiveTuple::tcp(0x01020304, 1234, 0x05060708, 80);
        let q = rss.queue_for(&t);
        for _ in 0..10 {
            assert_eq!(rss.queue_for(&t), q);
        }
    }

    #[test]
    fn custom_indirection_table_is_honored() {
        let mut rss = RssConfig::symmetric(8);
        rss.set_table(vec![3; INDIRECTION_TABLE_SIZE]);
        let t = FiveTuple::tcp(1, 2, 3, 4);
        assert_eq!(rss.queue_for(&t), 3);
    }

    #[test]
    fn non_tcp_udp_hashes_addresses_only() {
        let rss = RssConfig::symmetric(8);
        let a = FiveTuple {
            protocol: Protocol::Other(47),
            ..FiveTuple::tcp(9, 1, 10, 2)
        };
        let b = FiveTuple {
            protocol: Protocol::Other(47),
            ..FiveTuple::tcp(9, 7, 10, 9)
        };
        // Ports differ but addresses match: same queue.
        assert_eq!(rss.queue_for(&a), rss.queue_for(&b));
    }
}
