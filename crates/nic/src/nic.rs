//! The assembled NIC receive path.
//!
//! Mirrors the 82599 pipeline order: Flow Director perfect filters are
//! consulted first; packets that match no rule fall back to RSS. The
//! [`Nic`] here is a *classifier with counters* — queue storage and
//! timing live in the runtime (deterministic simulator or real threads),
//! which also enforces the Flow Director rate limitation surfaced in
//! [`NicConfig::fdir_rate_cap_pps`].

use crate::flowdirector::FlowDirector;
use crate::rss::RssConfig;
use serde::{Deserialize, Serialize};
use sprayer_net::Packet;

/// A receive-queue index.
pub type QueueId = u8;

/// How a packet was steered to its queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RxSteering {
    /// Matched a Flow Director perfect filter.
    FlowDirector,
    /// Fell back to RSS hashing.
    Rss,
    /// Non-IP frame: delivered to queue 0 (the default queue).
    DefaultQueue,
}

/// Static NIC configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicConfig {
    /// Number of receive queues (== number of middlebox cores).
    pub num_queues: usize,
    /// Spray TCP packets by checksum via Flow Director (Sprayer mode)
    /// instead of classifying every packet with RSS (baseline mode).
    pub spray_tcp: bool,
    /// Packets-per-second ceiling observed on the 82599 when Flow
    /// Director perfect filters are active (§5: "Sprayer's processing
    /// rate is limited to about 10 Mpps ... a limitation of the 82599 NIC
    /// when using Flow Director"). `None` disables the cap (the paper
    /// calls the limit "not fundamental").
    pub fdir_rate_cap_pps: Option<f64>,
    /// Spray each flow over only `k` of the queues (§7: "it may be wise
    /// to only spray packets from a particular flow to a limited subset
    /// of cores"). The subset is the `k` queues starting at the flow's
    /// RSS queue; the checksum bits pick within it. `None` (the paper's
    /// implementation) sprays over all queues. Subset spraying needs a
    /// programmable NIC, so no rate cap is implied by it.
    pub spray_subset_k: Option<usize>,
}

impl NicConfig {
    /// Baseline configuration: RSS with the symmetric key, as the paper's
    /// RSS experiments are configured.
    pub fn rss(num_queues: usize) -> Self {
        NicConfig {
            num_queues,
            spray_tcp: false,
            fdir_rate_cap_pps: None,
            spray_subset_k: None,
        }
    }

    /// Sprayer configuration: checksum spraying with the 82599's observed
    /// 10 Mpps Flow Director ceiling.
    pub fn sprayer(num_queues: usize) -> Self {
        NicConfig {
            num_queues,
            spray_tcp: true,
            fdir_rate_cap_pps: Some(10.0e6),
            spray_subset_k: None,
        }
    }

    /// Sprayer configuration without the hardware rate cap (models the
    /// "not fundamental" case / a better NIC).
    pub fn sprayer_uncapped(num_queues: usize) -> Self {
        NicConfig {
            num_queues,
            spray_tcp: true,
            fdir_rate_cap_pps: None,
            spray_subset_k: None,
        }
    }

    /// Subset spraying on a programmable NIC (§7): spray each flow over
    /// `k` queues starting at its RSS queue.
    pub fn sprayer_subset(num_queues: usize, k: usize) -> Self {
        assert!((1..=num_queues).contains(&k));
        NicConfig {
            num_queues,
            spray_tcp: true,
            fdir_rate_cap_pps: None,
            spray_subset_k: Some(k),
        }
    }
}

/// Per-queue receive counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Packets steered to this queue.
    pub packets: u64,
    /// Bytes steered to this queue.
    pub bytes: u64,
}

/// The modeled NIC: classifier state plus counters.
#[derive(Debug, Clone)]
pub struct Nic {
    config: NicConfig,
    rss: RssConfig,
    fdir: FlowDirector,
    queue_counters: Vec<QueueCounters>,
    /// Frames discarded in hardware because they failed to parse
    /// (truncated, garbage headers, bad checksums). Real NICs drop
    /// these before they reach any queue; the runtimes call
    /// [`Nic::note_malformed`] from their raw-frame ingress path.
    malformed: u64,
}

impl Nic {
    /// Build a NIC per `config`. In spray mode this installs the
    /// checksum-spray rules exactly as `sprayer`'s modified ixgbe driver
    /// would at startup.
    pub fn new(config: NicConfig) -> Self {
        assert!((1..=128).contains(&config.num_queues));
        let rss = RssConfig::symmetric(config.num_queues);
        let mut fdir = FlowDirector::new();
        if config.spray_tcp {
            fdir.install_checksum_spray(config.num_queues)
                .expect("spray rules always fit an empty 8K table");
        }
        let queue_counters = vec![QueueCounters::default(); config.num_queues];
        Nic {
            config,
            rss,
            fdir,
            queue_counters,
            malformed: 0,
        }
    }

    /// The configuration this NIC was built with.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Number of receive queues.
    pub fn num_queues(&self) -> usize {
        self.config.num_queues
    }

    /// Classify a received packet: returns the queue it is steered to and
    /// which pipeline stage made the decision. Updates counters.
    pub fn steer(&mut self, packet: &Packet) -> (QueueId, RxSteering) {
        let (queue, how) = self.classify(packet);
        let c = &mut self.queue_counters[usize::from(queue)];
        c.packets += 1;
        c.bytes += packet.len() as u64;
        (queue, how)
    }

    /// Classification without counter updates (for tests / what-if).
    pub fn classify(&mut self, packet: &Packet) -> (QueueId, RxSteering) {
        if let Some(q) = self.fdir.lookup(packet) {
            if let Some(k) = self.config.spray_subset_k {
                // Programmable-NIC subset spraying: the checksum picks one
                // of k queues anchored at the flow's RSS queue, so a flow
                // touches at most k cores (reduced reordering, §7).
                let tuple = packet.tuple().expect("fdir only matches classified TCP");
                let base = usize::from(self.rss.queue_for(&tuple));
                let queue = (base + usize::from(q) % k) % self.config.num_queues;
                return (queue as QueueId, RxSteering::FlowDirector);
            }
            return (q, RxSteering::FlowDirector);
        }
        match packet.tuple() {
            Some(tuple) => (self.rss.queue_for(&tuple), RxSteering::Rss),
            None => (0, RxSteering::DefaultQueue),
        }
    }

    /// Per-queue counters.
    pub fn queue_counters(&self) -> &[QueueCounters] {
        &self.queue_counters
    }

    /// Record a frame the hardware discarded as unparseable.
    pub fn note_malformed(&mut self) {
        self.malformed += 1;
    }

    /// Frames discarded as unparseable ([`Nic::note_malformed`]).
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Reset per-queue counters (between experiment phases).
    pub fn reset_counters(&mut self) {
        for c in &mut self.queue_counters {
            *c = QueueCounters::default();
        }
        self.malformed = 0;
    }

    /// The RSS configuration (for tests and the fairness experiment).
    pub fn rss(&self) -> &RssConfig {
        &self.rss
    }

    /// The Flow Director table (for diagnostics).
    pub fn flow_director(&self) -> &FlowDirector {
        &self.fdir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer_net::{FiveTuple, MacAddr, PacketBuilder, TcpFlags};

    fn tcp_pkt(tuple: FiveTuple, payload: &[u8]) -> Packet {
        PacketBuilder::new().tcp(tuple, 0, 0, TcpFlags::ACK, payload)
    }

    #[test]
    fn rss_mode_keeps_flows_on_one_queue() {
        let mut nic = Nic::new(NicConfig::rss(8));
        let t = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
        let mut queues = std::collections::HashSet::new();
        for i in 0..100u32 {
            let (q, how) = nic.steer(&tcp_pkt(t, &i.to_be_bytes()));
            assert_eq!(how, RxSteering::Rss);
            queues.insert(q);
        }
        assert_eq!(queues.len(), 1, "RSS must pin a flow to a single queue");
    }

    #[test]
    fn spray_mode_spreads_single_flow_across_all_queues() {
        let mut nic = Nic::new(NicConfig::sprayer(8));
        let t = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
        let mut queues = std::collections::HashSet::new();
        for i in 0..512u32 {
            let (q, how) = nic.steer(&tcp_pkt(t, &i.to_be_bytes()));
            assert_eq!(how, RxSteering::FlowDirector);
            queues.insert(q);
        }
        assert_eq!(
            queues.len(),
            8,
            "spraying must reach every queue from one flow"
        );
    }

    #[test]
    fn spray_mode_sends_udp_through_rss() {
        let mut nic = Nic::new(NicConfig::sprayer(8));
        let t = FiveTuple::udp(0x0a000001, 5000, 0x0a000002, 53);
        let mut queues = std::collections::HashSet::new();
        for i in 0..64u16 {
            let p = PacketBuilder::new().udp(t, &i.to_be_bytes());
            let (q, how) = nic.steer(&p);
            assert_eq!(how, RxSteering::Rss, "non-TCP falls back to RSS (§4)");
            queues.insert(q);
        }
        assert_eq!(queues.len(), 1, "a UDP flow stays on its RSS queue");
    }

    #[test]
    fn spray_distribution_is_roughly_uniform() {
        let mut nic = Nic::new(NicConfig::sprayer(8));
        let t = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
        let n = 16_000u32;
        for i in 0..n {
            // Vary payload so checksums vary (MoonGen does the same).
            nic.steer(&tcp_pkt(t, &i.to_be_bytes()));
        }
        let expected = f64::from(n) / 8.0;
        for (q, c) in nic.queue_counters().iter().enumerate() {
            let dev = (c.packets as f64 - expected).abs() / expected;
            assert!(
                dev < 0.10,
                "queue {q}: {} packets, deviation {dev:.3}",
                c.packets
            );
        }
    }

    #[test]
    fn non_ip_frames_hit_default_queue() {
        let mut nic = Nic::new(NicConfig::sprayer(8));
        let mut data = vec![0u8; 60];
        sprayer_net::EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_index(3),
            ethertype: sprayer_net::EtherType::Arp,
        }
        .emit(&mut data)
        .unwrap();
        let p = Packet::parse(data).unwrap();
        assert_eq!(nic.steer(&p), (0, RxSteering::DefaultQueue));
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut nic = Nic::new(NicConfig::rss(4));
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let p = tcp_pkt(t, b"abc");
        let (q, _) = nic.steer(&p);
        nic.steer(&p);
        let c = nic.queue_counters()[usize::from(q)];
        assert_eq!(c.packets, 2);
        assert_eq!(c.bytes, 2 * p.len() as u64);
        nic.reset_counters();
        assert_eq!(nic.queue_counters()[usize::from(q)].packets, 0);
    }

    #[test]
    fn malformed_counter_accumulates_and_resets() {
        let mut nic = Nic::new(NicConfig::sprayer(4));
        assert_eq!(nic.malformed(), 0);
        nic.note_malformed();
        nic.note_malformed();
        assert_eq!(nic.malformed(), 2);
        nic.reset_counters();
        assert_eq!(nic.malformed(), 0);
    }

    #[test]
    fn subset_spraying_confines_a_flow_to_k_queues() {
        for k in [1usize, 2, 4, 8] {
            let mut nic = Nic::new(NicConfig::sprayer_subset(8, k));
            let t = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
            let mut queues = std::collections::HashSet::new();
            for i in 0..1024u32 {
                let r = sprayer_net::flow::splitmix64(u64::from(i)).to_be_bytes();
                let (q, how) = nic.steer(&tcp_pkt(t, &r));
                assert_eq!(how, RxSteering::FlowDirector);
                queues.insert(q);
            }
            assert_eq!(queues.len(), k, "k={k} must touch exactly k queues");
        }
    }

    #[test]
    fn subset_spraying_still_separates_flows() {
        // Different flows get different subsets (anchored at their RSS
        // queue), so aggregate load still covers all queues.
        let mut nic = Nic::new(NicConfig::sprayer_subset(8, 2));
        let mut queues = std::collections::HashSet::new();
        for f in 0..64u32 {
            let t = FiveTuple::tcp(0x0a000000 + f, 40000, 0x0a000002, 443);
            for i in 0..16u32 {
                let r = sprayer_net::flow::splitmix64(u64::from(f * 100 + i)).to_be_bytes();
                let (q, _) = nic.steer(&tcp_pkt(t, &r));
                queues.insert(q);
            }
        }
        assert_eq!(queues.len(), 8, "many flows' subsets must cover all queues");
    }

    #[test]
    fn both_directions_same_queue_in_rss_mode() {
        // The paper explicitly configures RSS so upstream and downstream
        // of one connection share a core (§5).
        let mut nic = Nic::new(NicConfig::rss(8));
        let t = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
        let (q1, _) = nic.steer(&tcp_pkt(t, b""));
        let (q2, _) = nic.steer(&tcp_pkt(t.reversed(), b""));
        assert_eq!(q1, q2);
    }
}
