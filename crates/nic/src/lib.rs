//! # sprayer-nic — a model of a multi-queue commodity NIC
//!
//! Models the receive-side packet classification of an Intel 82599-class
//! NIC, the hardware the Sprayer paper runs on:
//!
//! * [`toeplitz`] — the Toeplitz hash used by Receive-Side Scaling,
//!   verified against the Microsoft test vectors, with both the standard
//!   key and the *symmetric* key (`0x6d5a` repeated) that maps both
//!   directions of a connection to the same queue — the paper configures
//!   its RSS baseline this way (§5, citing Woo et al.),
//! * [`rss`] — RSS proper: key + 128-entry indirection table,
//! * [`flowdirector`] — Intel Flow Director as a rule table with perfect
//!   filters, flex-word matching, and the documented 8 K rule capacity.
//!   Sprayer's trick (§4) — rules that match the low bits of the TCP
//!   *checksum* field so packets spread over queues regardless of flow —
//!   is [`flowdirector::FlowDirector::install_checksum_spray`],
//! * [`nic`] — the assembled receive path: Flow Director first (as in the
//!   82599 pipeline), RSS as fallback, per-queue counters, and the
//!   empirically observed ~10 Mpps Flow Director rate limitation exposed
//!   as a model parameter for the simulator.
//!
//! The classifier consumes real wire bytes via `sprayer-net`'s
//! [`sprayer_net::Packet`], so the checksum bits it sprays on are the
//! genuine article.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flowdirector;
pub mod nic;
pub mod rss;
pub mod toeplitz;

pub use flowdirector::{FdirFilter, FdirRule, FlowDirector, FDIR_PERFECT_CAPACITY};
pub use nic::{Nic, NicConfig, QueueId, RxSteering};
pub use rss::{RssConfig, INDIRECTION_TABLE_SIZE};
pub use toeplitz::{
    hash_v6_tuple, toeplitz_hash, RssKey, ToeplitzLut, MICROSOFT_KEY, SYMMETRIC_KEY,
};
