//! The Toeplitz hash used by Receive-Side Scaling.
//!
//! RSS computes a 32-bit hash over the five-tuple fields; the hash's low
//! bits index an indirection table that picks the receive queue. The hash
//! is defined by a 40-byte secret key: for each set bit *i* of the input,
//! the result XORs in the 32-bit window of the key starting at bit *i*.
//!
//! Two keys matter for this reproduction:
//!
//! * [`MICROSOFT_KEY`] — the de-facto standard default key, for which the
//!   RSS specification publishes verification vectors (tested below);
//! * [`SYMMETRIC_KEY`] — `0x6d5a` repeated. Because the key is periodic
//!   with the period of the port fields (16 bits) and address fields
//!   (32 bits), swapping (src ↔ dst) leaves the hash unchanged, so both
//!   directions of a connection reach the same core. The paper's RSS
//!   baseline is configured this way (§5, citing Woo et al. [44]).

use sprayer_net::{FiveTuple, FiveTupleV6};

/// The longest input a 40-byte key supports: the 36-byte IPv6 four-tuple
/// (36 bytes of input plus the trailing 32-bit window fill the key).
pub const MAX_INPUT_LEN: usize = 36;

/// A 40-byte RSS hash key (enough for IPv6 four-tuples: 36 bytes of input
/// plus the 32-bit window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssKey(pub [u8; 40]);

/// The default key from the Microsoft RSS verification suite.
pub const MICROSOFT_KEY: RssKey = RssKey([
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
]);

/// The symmetric key of Woo & Park: `0x6d5a` repeated 20 times. Maps both
/// directions of a connection to the same hash value.
pub const SYMMETRIC_KEY: RssKey = RssKey([
    0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
    0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
    0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
]);

/// Compute the Toeplitz hash of `data` under `key`.
///
/// Bit-serial reference implementation: clear, obviously correct, and
/// fast enough for a simulator (the real NIC does this in silicon).
pub fn toeplitz_hash(key: &RssKey, data: &[u8]) -> u32 {
    assert!(
        data.len() + 4 <= key.0.len(),
        "input of {} bytes needs a key of at least {} bytes",
        data.len(),
        data.len() + 4
    );
    let mut result = 0u32;
    // The 32-bit key window starting at bit 0.
    let mut window = u32::from_be_bytes([key.0[0], key.0[1], key.0[2], key.0[3]]);
    let mut next_key_bit = 32usize;
    for &byte in data {
        for bit in 0..8 {
            if byte & (0x80 >> bit) != 0 {
                result ^= window;
            }
            // Slide the window one bit left, pulling in the next key bit.
            let incoming = (key.0[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1;
            window = (window << 1) | u32::from(incoming);
            next_key_bit += 1;
        }
    }
    result
}

/// The RSS-specified input layout for an IPv4 four-tuple:
/// src addr, dst addr, src port, dst port, all big-endian.
fn v4_tuple_input(tuple: &FiveTuple) -> [u8; 12] {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&tuple.src_addr.to_be_bytes());
    input[4..8].copy_from_slice(&tuple.dst_addr.to_be_bytes());
    input[8..10].copy_from_slice(&tuple.src_port.to_be_bytes());
    input[10..12].copy_from_slice(&tuple.dst_port.to_be_bytes());
    input
}

/// The input layout for the address-only "IPv4" hash type.
fn v4_addrs_input(src: u32, dst: u32) -> [u8; 8] {
    let mut input = [0u8; 8];
    input[0..4].copy_from_slice(&src.to_be_bytes());
    input[4..8].copy_from_slice(&dst.to_be_bytes());
    input
}

/// The 36-byte input layout for the `TCP_IPV6`/`UDP_IPV6` hash types.
fn v6_tuple_input(tuple: &FiveTupleV6) -> [u8; 36] {
    let mut input = [0u8; 36];
    input[0..16].copy_from_slice(&tuple.src_addr);
    input[16..32].copy_from_slice(&tuple.dst_addr);
    input[32..34].copy_from_slice(&tuple.src_port.to_be_bytes());
    input[34..36].copy_from_slice(&tuple.dst_port.to_be_bytes());
    input
}

/// Hash an IPv4 four-tuple (src addr, dst addr, src port, dst port) —
/// the input layout mandated by the RSS specification.
pub fn hash_v4_tuple(key: &RssKey, tuple: &FiveTuple) -> u32 {
    toeplitz_hash(key, &v4_tuple_input(tuple))
}

/// Hash only the IPv4 address pair (the RSS "IPv4" hash type, used for
/// fragments and non-TCP/UDP IP packets).
pub fn hash_v4_addrs(key: &RssKey, src: u32, dst: u32) -> u32 {
    toeplitz_hash(key, &v4_addrs_input(src, dst))
}

/// Hash an IPv6 four-tuple (src addr, dst addr, src port, dst port): the
/// 36-byte input layout the RSS specification mandates for the
/// `TCP_IPV6`/`UDP_IPV6` hash types. This is the maximum input the
/// 40-byte key supports (36 bytes plus the 32-bit window).
pub fn hash_v6_tuple(key: &RssKey, tuple: &FiveTupleV6) -> u32 {
    toeplitz_hash(key, &v6_tuple_input(tuple))
}

/// A byte-at-a-time Toeplitz evaluator: for every input byte position and
/// byte value, the 32-bit XOR contribution is precomputed, so hashing is
/// one table load and one XOR per input byte instead of eight
/// test-and-shift steps. This is how software RSS implementations (DPDK's
/// `rte_thash`, for one) make the hash cheap enough for a per-packet hot
/// path; the table costs 36 KiB per key and is built once at config time.
///
/// Produces bit-identical results to [`toeplitz_hash`], which stays as
/// the executable specification (asserted against the published
/// verification vectors and by the equivalence proptests).
#[derive(Clone)]
pub struct ToeplitzLut {
    key: RssKey,
    /// `table[pos][b]` = XOR contribution of byte value `b` at input
    /// byte position `pos`.
    table: Box<[[u32; 256]; MAX_INPUT_LEN]>,
}

impl ToeplitzLut {
    /// Precompute the per-position contribution tables for `key`.
    pub fn new(key: RssKey) -> Self {
        let mut table = Box::new([[0u32; 256]; MAX_INPUT_LEN]);
        // Slide the 32-bit key window bit by bit, exactly as the
        // reference does, capturing the window at each of the 8 bit
        // offsets within every byte position.
        let mut window = u32::from_be_bytes([key.0[0], key.0[1], key.0[2], key.0[3]]);
        let mut next_key_bit = 32usize;
        for row in table.iter_mut() {
            let mut bit_windows = [0u32; 8];
            for bw in bit_windows.iter_mut() {
                *bw = window;
                let incoming = (key.0[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1;
                window = (window << 1) | u32::from(incoming);
                next_key_bit += 1;
            }
            // A byte's contribution is the XOR of the windows its set
            // bits select (XOR is linear, so all 256 values follow from
            // the 8 single-bit windows).
            for (value, slot) in row.iter_mut().enumerate().skip(1) {
                let mut h = 0u32;
                for (bit, bw) in bit_windows.iter().enumerate() {
                    if value & (0x80 >> bit) != 0 {
                        h ^= bw;
                    }
                }
                *slot = h;
            }
        }
        ToeplitzLut { key, table }
    }

    /// The key the table was built from.
    pub fn key(&self) -> &RssKey {
        &self.key
    }

    /// Hash `data` — one table row per input byte, XOR-folded.
    pub fn hash(&self, data: &[u8]) -> u32 {
        assert!(
            data.len() <= MAX_INPUT_LEN,
            "input of {} bytes exceeds the {MAX_INPUT_LEN}-byte table",
            data.len()
        );
        let mut h = 0u32;
        for (row, &b) in self.table.iter().zip(data) {
            h ^= row[usize::from(b)];
        }
        h
    }

    /// LUT counterpart of [`hash_v4_tuple`].
    pub fn hash_v4_tuple(&self, tuple: &FiveTuple) -> u32 {
        self.hash(&v4_tuple_input(tuple))
    }

    /// LUT counterpart of [`hash_v4_addrs`].
    pub fn hash_v4_addrs(&self, src: u32, dst: u32) -> u32 {
        self.hash(&v4_addrs_input(src, dst))
    }

    /// LUT counterpart of [`hash_v6_tuple`].
    pub fn hash_v6_tuple(&self, tuple: &FiveTupleV6) -> u32 {
        self.hash(&v6_tuple_input(tuple))
    }
}

impl std::fmt::Debug for ToeplitzLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The 36 KiB table is derived data; show only the key.
        f.debug_struct("ToeplitzLut")
            .field("key", &self.key)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Endpoint = (u32, u16);

    /// The Microsoft RSS verification suite, IPv4 with ports.
    /// (dst addr:port, src addr:port, expected 4-tuple hash)
    const MSFT_VECTORS_4TUPLE: &[(Endpoint, Endpoint, u32)] = &[
        // 161.142.100.80:1766  <- 66.9.149.187:2794
        (
            ((161 << 24) | (142 << 16) | (100 << 8) | 80, 1766),
            ((66 << 24) | (9 << 16) | (149 << 8) | 187, 2794),
            0x51ccc178,
        ),
        // 65.69.140.83:4739 <- 199.92.111.2:14230
        (
            ((65 << 24) | (69 << 16) | (140 << 8) | 83, 4739),
            ((199 << 24) | (92 << 16) | (111 << 8) | 2, 14230),
            0xc626b0ea,
        ),
        // 12.22.207.184:38024 <- 24.19.198.95:12898
        (
            ((12 << 24) | (22 << 16) | (207 << 8) | 184, 38024),
            ((24 << 24) | (19 << 16) | (198 << 8) | 95, 12898),
            0x5c2b394a,
        ),
        // 209.142.163.6:2217 <- 38.27.205.30:48228
        (
            ((209 << 24) | (142 << 16) | (163 << 8) | 6, 2217),
            ((38 << 24) | (27 << 16) | (205 << 8) | 30, 48228),
            0xafc7327f,
        ),
        // 202.188.127.2:1303 <- 153.39.163.191:44251
        (
            ((202 << 24) | (188 << 16) | (127 << 8) | 2, 1303),
            ((153 << 24) | (39 << 16) | (163 << 8) | 191, 44251),
            0x10e828a2,
        ),
    ];

    /// Same suite, 2-tuple (addresses only) hashes.
    const MSFT_VECTORS_2TUPLE: &[(u32, u32, u32)] = &[
        (
            (161 << 24) | (142 << 16) | (100 << 8) | 80,
            (66 << 24) | (9 << 16) | (149 << 8) | 187,
            0x323e8fc2,
        ),
        (
            (65 << 24) | (69 << 16) | (140 << 8) | 83,
            (199 << 24) | (92 << 16) | (111 << 8) | 2,
            0xd718262a,
        ),
        (
            (12 << 24) | (22 << 16) | (207 << 8) | 184,
            (24 << 24) | (19 << 16) | (198 << 8) | 95,
            0xd2d0a5de,
        ),
        (
            (209 << 24) | (142 << 16) | (163 << 8) | 6,
            (38 << 24) | (27 << 16) | (205 << 8) | 30,
            0x82989176,
        ),
        (
            (202 << 24) | (188 << 16) | (127 << 8) | 2,
            (153 << 24) | (39 << 16) | (163 << 8) | 191,
            0x5d1809c5,
        ),
    ];

    #[test]
    fn microsoft_4tuple_vectors() {
        for &((dst, dport), (src, sport), expected) in MSFT_VECTORS_4TUPLE {
            let tuple = FiveTuple::tcp(src, sport, dst, dport);
            assert_eq!(
                hash_v4_tuple(&MICROSOFT_KEY, &tuple),
                expected,
                "vector {src:#x}:{sport} -> {dst:#x}:{dport}"
            );
        }
    }

    #[test]
    fn microsoft_2tuple_vectors() {
        for &(dst, src, expected) in MSFT_VECTORS_2TUPLE {
            assert_eq!(hash_v4_addrs(&MICROSOFT_KEY, src, dst), expected);
        }
    }

    #[test]
    fn symmetric_key_is_direction_insensitive() {
        let tuples = [
            FiveTuple::tcp(0xc0a8_0001, 40000, 0x0a00_002a, 443),
            FiveTuple::tcp(0x0102_0304, 1, 0x0506_0708, 65535),
            FiveTuple::udp(0xdead_beef, 53, 0xcafe_babe, 5353),
        ];
        for t in tuples {
            assert_eq!(
                hash_v4_tuple(&SYMMETRIC_KEY, &t),
                hash_v4_tuple(&SYMMETRIC_KEY, &t.reversed()),
                "symmetric key must hash both directions identically: {t}"
            );
        }
    }

    #[test]
    fn microsoft_key_is_not_symmetric() {
        // Sanity check: the standard key does NOT have the symmetric
        // property; this is exactly why the paper swaps keys.
        let t = FiveTuple::tcp(0xc0a8_0001, 40000, 0x0a00_002a, 443);
        assert_ne!(
            hash_v4_tuple(&MICROSOFT_KEY, &t),
            hash_v4_tuple(&MICROSOFT_KEY, &t.reversed())
        );
    }

    #[test]
    fn symmetric_key_is_direction_insensitive_for_v6() {
        let a = [
            0x3f, 0xfe, 0x25, 0x01, 0x02, 0x00, 0x00, 0x03, 0, 0, 0, 0, 0, 0, 0, 1,
        ];
        let b = [
            0x3f, 0xfe, 0x25, 0x01, 0x02, 0x00, 0x1f, 0xff, 0, 0, 0, 0, 0, 0, 0, 7,
        ];
        let tuples = [
            FiveTupleV6::tcp(a, 1766, b, 2794),
            // Port 0 and identical-endpoint corner cases must stay
            // symmetric too (the coremap edge cases).
            FiveTupleV6::tcp(a, 0, b, 443),
            FiveTupleV6::udp(a, 9, a, 9),
        ];
        for t in tuples {
            assert_eq!(
                hash_v6_tuple(&SYMMETRIC_KEY, &t),
                hash_v6_tuple(&SYMMETRIC_KEY, &t.reversed()),
                "symmetric key must hash both v6 directions identically"
            );
        }
    }

    #[test]
    fn v6_input_fills_the_key_exactly() {
        // 36 bytes of input is the documented maximum; the assert in
        // toeplitz_hash admits it and a 37th byte would panic.
        let t = FiveTupleV6::tcp([0xff; 16], 65535, [0xaa; 16], 1);
        let _ = hash_v6_tuple(&MICROSOFT_KEY, &t);
    }

    #[test]
    fn zero_input_hashes_to_zero() {
        assert_eq!(toeplitz_hash(&MICROSOFT_KEY, &[0u8; 12]), 0);
    }

    #[test]
    #[should_panic(expected = "needs a key")]
    fn oversized_input_panics() {
        let _ = toeplitz_hash(&MICROSOFT_KEY, &[0u8; 37]);
    }

    #[test]
    fn lut_reproduces_the_microsoft_vectors() {
        let lut = ToeplitzLut::new(MICROSOFT_KEY);
        for &((dst, dport), (src, sport), expected) in MSFT_VECTORS_4TUPLE {
            let tuple = FiveTuple::tcp(src, sport, dst, dport);
            assert_eq!(lut.hash_v4_tuple(&tuple), expected);
        }
        for &(dst, src, expected) in MSFT_VECTORS_2TUPLE {
            assert_eq!(lut.hash_v4_addrs(src, dst), expected);
        }
    }

    #[test]
    fn lut_matches_bit_serial_reference_at_every_length() {
        for key in [MICROSOFT_KEY, SYMMETRIC_KEY] {
            let lut = ToeplitzLut::new(key);
            // A deterministic but bit-diverse input stream.
            let data: Vec<u8> = (0..MAX_INPUT_LEN as u64)
                .map(|i| (sprayer_net::flow::splitmix64(i) >> 13) as u8)
                .collect();
            for len in 0..=MAX_INPUT_LEN {
                assert_eq!(
                    lut.hash(&data[..len]),
                    toeplitz_hash(&key, &data[..len]),
                    "length {len}"
                );
            }
        }
    }

    #[test]
    fn lut_matches_reference_for_v6_tuples() {
        let lut = ToeplitzLut::new(MICROSOFT_KEY);
        let t = FiveTupleV6::tcp([0x3f; 16], 1766, [0xbe; 16], 2794);
        assert_eq!(lut.hash_v6_tuple(&t), hash_v6_tuple(&MICROSOFT_KEY, &t));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn lut_oversized_input_panics() {
        let _ = ToeplitzLut::new(MICROSOFT_KEY).hash(&[0u8; 37]);
    }

    #[test]
    fn single_bit_inputs_select_key_windows() {
        // Input with only the top bit set hashes to the first 32 key bits.
        let mut input = [0u8; 12];
        input[0] = 0x80;
        assert_eq!(toeplitz_hash(&MICROSOFT_KEY, &input), 0x6d5a56da);
        // Only the second bit: window starting at bit 1 is the key
        // shifted left one bit, pulling in bit 32 of the key (0x25's MSB,
        // which is 0): 0x6d5a56da << 1 = 0xdab4adb4.
        input[0] = 0x40;
        assert_eq!(toeplitz_hash(&MICROSOFT_KEY, &input), 0xdab4adb4);
    }
}
