//! Property-based tests for the NIC model.

use proptest::prelude::*;
use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags};
use sprayer_nic::toeplitz::{
    hash_v4_tuple, toeplitz_hash, RssKey, ToeplitzLut, MAX_INPUT_LEN, SYMMETRIC_KEY,
};
use sprayer_nic::{Nic, NicConfig, RssConfig, RxSteering};

fn arb_tcp_tuple() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u16>(), any::<u32>(), any::<u16>())
        .prop_map(|(sa, sp, da, dp)| FiveTuple::tcp(sa, sp, da, dp))
}

proptest! {
    /// The symmetric key is symmetric for every tuple, not just samples.
    #[test]
    fn symmetric_key_symmetry(t in arb_tcp_tuple()) {
        prop_assert_eq!(
            hash_v4_tuple(&SYMMETRIC_KEY, &t),
            hash_v4_tuple(&SYMMETRIC_KEY, &t.reversed())
        );
    }

    /// RSS never emits a queue index out of range, for any queue count.
    #[test]
    fn rss_queue_in_range(t in arb_tcp_tuple(), queues in 1usize..=32) {
        let rss = RssConfig::symmetric(queues);
        prop_assert!(usize::from(rss.queue_for(&t)) < queues);
    }

    /// In spray mode every TCP packet is steered by Flow Director, to the
    /// queue given by the checksum's low bits mod queue count.
    #[test]
    fn spray_covers_all_tcp(
        t in arb_tcp_tuple(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        queues in 1usize..=16,
    ) {
        let mut nic = Nic::new(NicConfig::sprayer(queues));
        let p = PacketBuilder::new().tcp(t, 0, 0, TcpFlags::ACK, &payload);
        let (q, how) = nic.steer(&p);
        prop_assert_eq!(how, RxSteering::FlowDirector);
        let k = usize::BITS - (queues - 1).leading_zeros();
        let mask = ((1usize << k) - 1) as u16;
        let expect = (p.meta().tcp_checksum.unwrap() & mask) as usize % queues;
        prop_assert_eq!(usize::from(q), expect);
    }

    /// The precomputed-LUT Toeplitz evaluator is bit-identical to the
    /// bit-serial reference for arbitrary keys and input lengths.
    #[test]
    fn toeplitz_lut_matches_reference(
        key_bytes in proptest::collection::vec(any::<u8>(), 40),
        data in proptest::collection::vec(any::<u8>(), 0..=MAX_INPUT_LEN),
    ) {
        let mut k = [0u8; 40];
        k.copy_from_slice(&key_bytes);
        let key = RssKey(k);
        let lut = ToeplitzLut::new(key);
        prop_assert_eq!(lut.hash(&data), toeplitz_hash(&key, &data));
    }

    /// The hot-path hash in RssConfig (LUT) agrees with the free-function
    /// reference for every TCP tuple.
    #[test]
    fn rss_config_hash_matches_reference(t in arb_tcp_tuple()) {
        let rss = RssConfig::symmetric(8);
        prop_assert_eq!(rss.hash(&t), hash_v4_tuple(&SYMMETRIC_KEY, &t));
    }

    /// RSS steering is deterministic: same packet, same queue, always.
    #[test]
    fn steering_is_deterministic(t in arb_tcp_tuple(), spray in any::<bool>()) {
        let config = if spray { NicConfig::sprayer(8) } else { NicConfig::rss(8) };
        let mut a = Nic::new(config.clone());
        let mut b = Nic::new(config);
        let p = PacketBuilder::new().tcp(t, 9, 9, TcpFlags::ACK, b"same");
        prop_assert_eq!(a.steer(&p), b.steer(&p));
    }
}
