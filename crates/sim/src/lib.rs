//! # sprayer-sim — a deterministic discrete-event simulation engine
//!
//! The Sprayer paper's evaluation ran on a two-server 10 GbE testbed with
//! an 8-core middlebox. This crate provides the substrate that replaces
//! that hardware: a deterministic discrete-event engine with
//!
//! * [`time`] — picosecond-resolution simulated time, with conversions to
//!   CPU cycles at a configurable clock (the paper's Xeons run at 2.0 GHz),
//! * [`engine`] — a generic event loop: user models define an event type
//!   and a handler; ties are broken deterministically,
//! * [`queue`] — bounded FIFOs with drop accounting (NIC rx queues,
//!   inter-core descriptor rings),
//! * [`stats`] — streaming mean/variance, exact-percentile reservoirs and
//!   log-binned histograms for latency tails,
//! * [`rng`] — a small, pinned PRNG (SplitMix64 core) with uniform /
//!   exponential / shuffling helpers so experiments reproduce bit-for-bit
//!   across platforms and `rand` version bumps.
//!
//! Determinism is a design goal: the same model + seed always produces
//! the same trajectory, which the experiment harness relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Model, Scheduler, Simulation};
pub use queue::BoundedFifo;
pub use rng::SimRng;
pub use stats::{Histogram, Reservoir, Welford};
pub use time::{ClockFreq, Time};
