//! Simulated time with picosecond resolution.
//!
//! Picoseconds in a `u64` cover ~213 days of simulated time, far beyond
//! any experiment here, while representing a single 2.0 GHz CPU cycle
//! (500 ps) and a 64-byte slot on 10 GbE (67.2 ns) exactly.

use serde::{Deserialize, Serialize};

/// An instant (or span) of simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time(0);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000_000)
    }

    /// Picoseconds since time zero.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// As fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction (spans never go negative).
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Scale a span by a float factor (rounds to nearest picosecond).
    pub fn mul_f64(self, factor: f64) -> Time {
        assert!(factor >= 0.0, "time cannot be scaled by a negative factor");
        Time((self.0 as f64 * factor).round() as u64)
    }
}

impl core::ops::Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl core::ops::AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl core::ops::Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl core::fmt::Display for Time {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// A CPU clock frequency, for converting cycle counts to simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockFreq {
    /// Frequency in kilohertz (kHz keeps cycle→ps conversions exact for
    /// common clocks: 2.0 GHz → 500 ps/cycle).
    pub khz: u64,
}

impl ClockFreq {
    /// The paper's middlebox clock: 2.0 GHz Xeon E5-2650.
    pub const PAPER_2GHZ: ClockFreq = ClockFreq::from_mhz(2_000);

    /// Construct from megahertz.
    pub const fn from_mhz(mhz: u64) -> ClockFreq {
        ClockFreq { khz: mhz * 1_000 }
    }

    /// Construct from gigahertz.
    pub const fn from_ghz(ghz: u64) -> ClockFreq {
        ClockFreq {
            khz: ghz * 1_000_000,
        }
    }

    /// Frequency in hertz.
    pub fn hz(self) -> u64 {
        self.khz * 1_000
    }

    /// The simulated duration of `cycles` CPU cycles.
    ///
    /// Exact when `10^9` is divisible by `khz` (e.g. 2.0 GHz → 500 ps);
    /// otherwise rounds *up* to the next picosecond, which keeps
    /// [`ClockFreq::time_to_cycles`] a left inverse for any clock.
    pub fn cycles_to_time(self, cycles: u64) -> Time {
        // ps = cycles * 1e12 / hz = cycles * 1e9 / khz, rounded up.
        let num = u128::from(cycles) * 1_000_000_000u128;
        Time(num.div_ceil(u128::from(self.khz)) as u64)
    }

    /// How many whole cycles fit in `span`.
    pub fn time_to_cycles(self, span: Time) -> u64 {
        // cycles = ps * khz / 1e9; compute in u128 to avoid overflow.
        ((u128::from(span.0) * u128::from(self.khz)) / 1_000_000_000) as u64
    }
}

/// Link speeds, for serialization-time computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpeed {
    /// Bits per second.
    pub bps: u64,
}

impl LinkSpeed {
    /// 10 Gigabit Ethernet, as in the paper's testbed.
    pub const TEN_GBE: LinkSpeed = LinkSpeed {
        bps: 10_000_000_000,
    };
    /// 1 Gigabit Ethernet (the MAWI backbone link of §2).
    pub const ONE_GBE: LinkSpeed = LinkSpeed { bps: 1_000_000_000 };

    /// Wire time for a frame of `frame_bytes`, including Ethernet preamble
    /// (8 B), FCS (4 B) and inter-frame gap (12 B) — 24 bytes of overhead,
    /// so a 60-byte frame occupies 84 byte-times — minus nothing else.
    pub fn frame_time(self, frame_bytes: usize) -> Time {
        let wire_bytes = frame_bytes as u64 + 24;
        // ps = bits * 1e12 / bps
        Time((u128::from(wire_bytes * 8) * 1_000_000_000_000u128 / u128::from(self.bps)) as u64)
    }

    /// Maximum frame rate for a given frame size (e.g. 64-byte frames on
    /// 10 GbE → 14.88 Mpps).
    pub fn max_pps(self, frame_bytes: usize) -> f64 {
        let wire_bits = (frame_bytes as f64 + 24.0) * 8.0;
        self.bps as f64 / wire_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
    }

    #[test]
    fn cycle_conversion_is_exact_at_2ghz() {
        let clk = ClockFreq::PAPER_2GHZ;
        assert_eq!(clk.cycles_to_time(1), Time::from_ps(500));
        assert_eq!(clk.cycles_to_time(10_000), Time::from_us(5));
        assert_eq!(clk.time_to_cycles(Time::from_us(5)), 10_000);
    }

    #[test]
    fn cycle_conversion_round_trips() {
        let clk = ClockFreq::from_mhz(2_400);
        for cycles in [0u64, 1, 7, 1_000, 123_456_789] {
            assert_eq!(clk.time_to_cycles(clk.cycles_to_time(cycles)), cycles);
        }
    }

    #[test]
    fn ten_gbe_64b_is_14_88_mpps() {
        let pps = LinkSpeed::TEN_GBE.max_pps(60);
        // 64 B on the wire is a 60 B frame (no FCS in our buffers) + 4 B FCS
        // + 20 B preamble/IFG = 84 B => 14.88 Mpps.
        assert!((pps / 1e6 - 14.88).abs() < 0.01, "got {pps}");
    }

    #[test]
    fn frame_time_matches_rate() {
        let t = LinkSpeed::TEN_GBE.frame_time(60);
        assert_eq!(t, Time::from_ps(67_200)); // 84 B * 8 / 10 Gbps = 67.2 ns
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Time::from_ns(5);
        let b = Time::from_ns(3);
        assert_eq!(a + b, Time::from_ns(8));
        assert_eq!(a - b, Time::from_ns(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert!(b < a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Time::from_ps(5).to_string(), "5ps");
        assert_eq!(Time::from_ns(1500).to_string(), "1.500us");
        assert_eq!(Time::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(Time::from_ns(100).mul_f64(0.7), Time::from_ns(70));
        assert_eq!(Time::from_ns(1).mul_f64(0.0), Time::ZERO);
    }
}
