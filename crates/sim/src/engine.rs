//! The generic discrete-event loop.
//!
//! A simulation is a [`Model`] — a state machine with an event type — run
//! by [`Simulation`]. Handlers schedule future events through a
//! [`Scheduler`]; the engine orders them by time, breaking ties by
//! insertion order so runs are fully deterministic.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A user-defined simulation model.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle `event` occurring at `now`; schedule follow-ups on `sched`.
    fn handle(&mut self, now: Time, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handed to event handlers for scheduling future events.
pub struct Scheduler<E> {
    pending: Vec<(Time, E)>,
    now: Time,
    stop: bool,
}

impl<E> Scheduler<E> {
    /// Schedule `event` at absolute time `at` (must not be in the past).
    pub fn at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.pending.push((at, event));
    }

    /// Schedule `event` after a delay from now.
    pub fn after(&mut self, delay: Time, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Schedule `event` immediately (still after the current handler
    /// returns, and after previously scheduled same-time events).
    pub fn now(&mut self, event: E) {
        self.pending.push((self.now, event));
    }

    /// The current simulated time.
    pub fn time(&self) -> Time {
        self.now
    }

    /// Request that the simulation stop once the current handler returns.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

struct HeapEntry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event loop driving a [`Model`].
pub struct Simulation<M: Model> {
    model: M,
    heap: BinaryHeap<Reverse<HeapEntry<M::Event>>>,
    now: Time,
    seq: u64,
    events_processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Wrap `model` with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            events_processed: 0,
        }
    }

    /// Schedule an initial event before running.
    pub fn schedule(&mut self, at: Time, event: M::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Access the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for wiring up probes between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Process a single event. Returns `false` if the queue was empty or a
    /// handler requested a stop.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(entry)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "event heap yielded a past event");
        self.now = entry.at;
        let mut sched = Scheduler {
            pending: Vec::new(),
            now: self.now,
            stop: false,
        };
        self.model.handle(self.now, entry.event, &mut sched);
        self.events_processed += 1;
        let stop = sched.stop;
        for (at, event) in sched.pending {
            self.heap.push(Reverse(HeapEntry {
                at,
                seq: self.seq,
                event,
            }));
            self.seq += 1;
        }
        !stop
    }

    /// Run until the queue is empty or a handler stops the simulation.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time would exceed `deadline` (events at exactly
    /// `deadline` are processed), the queue empties, or a handler stops.
    pub fn run_until(&mut self, deadline: Time) {
        loop {
            match self.heap.peek() {
                Some(Reverse(e)) if e.at <= deadline => {
                    if !self.step() {
                        return;
                    }
                }
                _ => {
                    // Advance the clock to the deadline so throughput
                    // denominators are well-defined even if the system
                    // went idle early.
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records (time, id) of every event it sees and can
    /// chain follow-up events.
    struct Recorder {
        seen: Vec<(Time, u32)>,
        chain: u32,
    }

    enum Ev {
        Mark(u32),
        Chain(u32),
        Stop,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: Time, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Mark(id) => self.seen.push((now, id)),
                Ev::Chain(n) => {
                    self.seen.push((now, n));
                    if n < self.chain {
                        sched.after(Time::from_ns(10), Ev::Chain(n + 1));
                    }
                }
                Ev::Stop => sched.stop(),
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            chain: 0,
        });
        sim.schedule(Time::from_ns(30), Ev::Mark(3));
        sim.schedule(Time::from_ns(10), Ev::Mark(1));
        sim.schedule(Time::from_ns(20), Ev::Mark(2));
        sim.run();
        assert_eq!(
            sim.model().seen,
            vec![
                (Time::from_ns(10), 1),
                (Time::from_ns(20), 2),
                (Time::from_ns(30), 3),
            ]
        );
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            chain: 0,
        });
        for id in 0..50 {
            sim.schedule(Time::from_ns(5), Ev::Mark(id));
        }
        sim.run();
        let ids: Vec<u32> = sim.model().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            chain: 5,
        });
        sim.schedule(Time::ZERO, Ev::Chain(0));
        sim.run();
        assert_eq!(sim.model().seen.len(), 6);
        assert_eq!(sim.now(), Time::from_ns(50));
    }

    #[test]
    fn stop_halts_immediately() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            chain: 0,
        });
        sim.schedule(Time::from_ns(1), Ev::Stop);
        sim.schedule(Time::from_ns(2), Ev::Mark(9));
        sim.run();
        assert!(sim.model().seen.is_empty());
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let mut sim = Simulation::new(Recorder {
            seen: vec![],
            chain: 0,
        });
        sim.schedule(Time::from_ns(10), Ev::Mark(1));
        sim.schedule(Time::from_ns(100), Ev::Mark(2));
        sim.run_until(Time::from_ns(50));
        assert_eq!(sim.model().seen, vec![(Time::from_ns(10), 1)]);
        assert_eq!(sim.now(), Time::from_ns(50));
        // The later event is still queued.
        sim.run();
        assert_eq!(sim.model().seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: Time, _: (), sched: &mut Scheduler<()>) {
                sched.at(now.saturating_sub(Time::from_ns(1)), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule(Time::from_ns(5), ());
        sim.run();
    }
}
