//! Streaming statistics for experiment probes.
//!
//! * [`Welford`] — numerically stable mean/variance,
//! * [`Reservoir`] — exact percentiles over bounded sample counts (RTT
//!   distributions in Fig. 8 involve at most a few hundred thousand
//!   samples, well within memory),
//! * [`Histogram`] — log-binned counts for unbounded streams,
//! * [`jain_fairness_index`] — the fairness metric of Fig. 9.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Exact-percentile sample store.
///
/// Keeps every sample up to `max_samples`; beyond that, falls back to
/// uniform reservoir sampling (Vitter's algorithm R) so percentiles remain
/// unbiased estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    samples: Vec<f64>,
    max_samples: usize,
    seen: u64,
    /// Tiny embedded LCG for reservoir replacement decisions; decoupled
    /// from model RNGs so adding a probe never perturbs a simulation.
    rng_state: u64,
}

impl Reservoir {
    /// A reservoir holding up to `max_samples` values.
    pub fn new(max_samples: usize) -> Self {
        assert!(max_samples > 0);
        Reservoir {
            samples: Vec::new(),
            max_samples,
            seen: 0,
            rng_state: 0x853c_49e6_748f_ea9b,
        }
    }

    /// Record an observation.
    pub fn add(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.max_samples {
            self.samples.push(x);
        } else {
            // Algorithm R: replace a random slot with probability k/seen.
            self.rng_state = self
                .rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (self.rng_state >> 16) % self.seen;
            if (j as usize) < self.max_samples {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total observations offered (not just retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (`0.0..=1.0`) by linear interpolation, or `None`
    /// if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Median shortcut.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th percentile shortcut (the paper reports p99 RTTs).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Minimum retained sample.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).expect("NaN"))
    }

    /// Maximum retained sample.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).expect("NaN"))
    }

    /// Mean of retained samples.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// Log-binned histogram for unbounded positive streams.
///
/// Bins are half-open intervals `[2^(k/sub), 2^((k+1)/sub))` — i.e. `sub`
/// sub-buckets per octave — giving bounded relative error on quantiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    sub: u32,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram with `sub` sub-buckets per power of two (8 gives ≤ ~9 %
    /// relative quantile error).
    pub fn new(sub: u32) -> Self {
        assert!(sub >= 1);
        Histogram {
            counts: vec![0; 64 * sub as usize],
            sub,
            underflow: 0,
            total: 0,
        }
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        // NaN deliberately lands in the underflow bin too.
        if x.is_nan() || x < 1.0 {
            return None;
        }
        let idx = (x.log2() * f64::from(self.sub)).floor() as usize;
        Some(idx.min(self.counts.len() - 1))
    }

    /// Record an observation (values `< 1.0` land in the underflow bin).
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        match self.bucket_of(x) {
            Some(b) => self.counts[b] += 1,
            None => self.underflow += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate `q`-quantile: the geometric midpoint of the bucket in
    /// which the quantile falls.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if rank <= cum {
            return Some(0.5);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if rank <= cum {
                let lo = 2f64.powf(i as f64 / f64::from(self.sub));
                let hi = 2f64.powf((i + 1) as f64 / f64::from(self.sub));
                return Some((lo * hi).sqrt());
            }
        }
        None
    }
}

/// Jain's fairness index over per-flow throughputs (Fig. 9).
///
/// `(Σx)² / (n · Σx²)`: 1.0 when all shares are equal, `1/n` in the worst
/// case. Empty input and all-zero input return 1.0 (vacuously fair).
pub fn jain_fairness_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance is 4.0 * 8/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn reservoir_exact_quantiles_small_n() {
        let mut r = Reservoir::new(1000);
        for i in 1..=100 {
            r.add(f64::from(i));
        }
        assert_eq!(r.median(), Some(50.5));
        assert!((r.quantile(0.99).unwrap() - 99.01).abs() < 1e-9);
        assert_eq!(r.min(), Some(1.0));
        assert_eq!(r.max(), Some(100.0));
        assert_eq!(r.quantile(0.0), Some(1.0));
        assert_eq!(r.quantile(1.0), Some(100.0));
    }

    #[test]
    fn reservoir_subsamples_beyond_capacity() {
        let mut r = Reservoir::new(100);
        for i in 0..10_000 {
            r.add(f64::from(i));
        }
        assert_eq!(r.seen(), 10_000);
        // The median of uniform 0..10000 should be near 5000.
        let med = r.median().unwrap();
        assert!((med - 5000.0).abs() < 1500.0, "median {med} too far off");
    }

    #[test]
    fn histogram_quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new(8);
        for i in 1..=100_000u32 {
            h.add(f64::from(i));
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 / 50_000.0 - 1.0).abs() < 0.10, "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 / 99_000.0 - 1.0).abs() < 0.10, "p99 {p99}");
    }

    #[test]
    fn histogram_underflow_bin() {
        let mut h = Histogram::new(4);
        h.add(0.25);
        h.add(0.5);
        h.add(16.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.quantile(0.1), Some(0.5));
    }

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        let idx = jain_fairness_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_index_known_value() {
        // Classic example: shares 1,2,3 -> 36 / (3*14) = 6/7.
        let idx = jain_fairness_index(&[1.0, 2.0, 3.0]);
        assert!((idx - 6.0 / 7.0).abs() < 1e-12);
    }
}
