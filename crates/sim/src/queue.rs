//! Bounded FIFO queues with drop accounting.
//!
//! Models NIC receive queues and the inter-core descriptor rings Sprayer
//! uses to redirect connection packets (§3.3). Overflow behaviour matches
//! hardware: the *newly arriving* item is dropped (tail drop) and counted.

use std::collections::VecDeque;

/// A bounded FIFO with tail-drop semantics and occupancy statistics.
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    enqueued: u64,
    dropped: u64,
    high_watermark: usize,
}

impl<T> BoundedFifo<T> {
    /// A queue holding at most `capacity` items (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enqueued: 0,
            dropped: 0,
            high_watermark: 0,
        }
    }

    /// Try to enqueue; on overflow the item is dropped, counted, and
    /// returned to the caller as `Err`.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.enqueued += 1;
        self.high_watermark = self.high_watermark.max(self.items.len());
        Ok(())
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Dequeue up to `max` items into a batch — Sprayer processes packets
    /// in batches wherever possible (§3.3).
    pub fn pop_batch(&mut self, max: usize) -> Vec<T> {
        let n = self.items.len().min(max);
        self.items.drain(..n).collect()
    }

    /// Peek at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items successfully enqueued over the queue's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Items dropped on overflow over the queue's lifetime.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// Highest occupancy ever observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Drop all queued items (counts them as neither enqueued nor dropped;
    /// used when tearing down a run).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = BoundedFifo::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_tail_drops_and_counts() {
        let mut q = BoundedFifo::new(2);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.total_dropped(), 1);
        assert_eq!(q.total_enqueued(), 2);
        // The earlier items survive (tail drop, not head drop).
        assert_eq!(q.pop(), Some('a'));
    }

    #[test]
    fn batch_dequeue_respects_order_and_max() {
        let mut q = BoundedFifo::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(100), vec![4, 5, 6, 7, 8, 9]);
        assert!(q.pop_batch(4).is_empty());
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut q = BoundedFifo::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedFifo::<u8>::new(0);
    }

    #[test]
    fn full_and_empty_flags() {
        let mut q = BoundedFifo::new(1);
        assert!(q.is_empty() && !q.is_full());
        q.push(0).unwrap();
        assert!(!q.is_empty() && q.is_full());
    }
}
