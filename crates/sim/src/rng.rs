//! A small, pinned pseudo-random number generator.
//!
//! Experiments must reproduce bit-for-bit across machines and across
//! dependency upgrades, so the simulator carries its own generator — a
//! SplitMix64-seeded xoshiro256++ — rather than depending on `rand`'s
//! evolving defaults. (Workload generation in `sprayer-trafficgen` uses
//! `rand` where statistical quality matters more than pinning.)

/// xoshiro256++ with SplitMix64 seeding. Deterministic and fast.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed deterministically from a single `u64`.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method (unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry to avoid modulo bias.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival processes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        // Avoid ln(0); 1 - U is in (0, 1].
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut rng = SimRng::seed_from(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.05 * mean,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "overwhelmingly unlikely to be identity");
    }

    #[test]
    fn uniformity_rough_check() {
        // Chi-square-ish sanity check on 16 buckets.
        let mut rng = SimRng::seed_from(1234);
        let n = 160_000;
        let mut buckets = [0u32; 16];
        for _ in 0..n {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SimRng::seed_from(0);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
