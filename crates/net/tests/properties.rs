//! Property-based tests for the wire-format crate.

use proptest::prelude::*;
use sprayer_net::checksum::{incremental_update16, internet_checksum, Checksum};
use sprayer_net::flow::{FiveTuple, Protocol};
use sprayer_net::ipv4::{proto, Ipv4Header};
use sprayer_net::packet::{Packet, PacketBuilder};
use sprayer_net::tcp::{TcpFlags, TcpHeader};

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|(sa, sp, da, dp, is_tcp)| {
            if is_tcp {
                FiveTuple::tcp(sa, sp, da, dp)
            } else {
                FiveTuple::udp(sa, sp, da, dp)
            }
        })
}

proptest! {
    /// Splitting the input at any point must not change the checksum.
    #[test]
    fn checksum_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let whole = internet_checksum(&data);
        let at = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut c = Checksum::new();
        c.add_bytes(&data[..at]);
        c.add_bytes(&data[at..]);
        prop_assert_eq!(c.finish(), whole);
    }

    /// The wide-word (8-bytes-per-step) summation in `add_bytes` must be
    /// bit-identical to the byte-pair definition of RFC 1071 for any
    /// input, including inputs fed in odd-length fragments (which shift
    /// the word alignment seen by the wide loop).
    #[test]
    fn checksum_wide_path_matches_bytepair_definition(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        // Reference: the RFC's definition, one 16-bit word at a time.
        let mut reference = 0u64;
        for pair in data.chunks(2) {
            let word = if pair.len() == 2 {
                u16::from_be_bytes([pair[0], pair[1]])
            } else {
                u16::from_be_bytes([pair[0], 0])
            };
            reference += u64::from(word);
        }
        while reference >> 16 != 0 {
            reference = (reference & 0xffff) + (reference >> 16);
        }
        let reference = !(reference as u16);

        // One-shot (hits the wide loop for data >= 8 bytes).
        prop_assert_eq!(internet_checksum(&data), reference);

        // Fragmented at arbitrary points: the pending-byte machinery must
        // re-pair across boundaries and still match.
        let mut at: Vec<usize> = splits
            .iter()
            .map(|s| if data.is_empty() { 0 } else { s.index(data.len()) })
            .collect();
        at.sort_unstable();
        let mut c = Checksum::new();
        let mut prev = 0;
        for &cut in &at {
            c.add_bytes(&data[prev..cut]);
            prev = cut;
        }
        c.add_bytes(&data[prev..]);
        prop_assert_eq!(c.finish(), reference);
    }

    /// Incremental update must always agree with full recomputation.
    #[test]
    fn incremental_matches_recompute(
        mut data in proptest::collection::vec(any::<u8>(), 20..64),
        word_idx in 0usize..9,
        new_word in any::<u16>(),
    ) {
        // Treat offset 18 as the checksum field; change word at 2*word_idx.
        let csum_off = 18;
        data[csum_off] = 0;
        data[csum_off + 1] = 0;
        let sum = internet_checksum(&data);
        data[csum_off..csum_off + 2].copy_from_slice(&sum.to_be_bytes());

        let off = word_idx * 2;
        let old_word = u16::from_be_bytes([data[off], data[off + 1]]);
        data[off..off + 2].copy_from_slice(&new_word.to_be_bytes());
        let updated = incremental_update16(sum, old_word, new_word);

        data[csum_off] = 0;
        data[csum_off + 1] = 0;
        let expect = internet_checksum(&data);
        prop_assert_eq!(updated, expect);
    }

    /// A filled-in checksum always self-verifies.
    #[test]
    fn filled_checksum_verifies(data in proptest::collection::vec(any::<u8>(), 2..256)) {
        let mut data = data;
        data[0] = 0;
        data[1] = 0;
        let sum = internet_checksum(&data);
        data[..2].copy_from_slice(&sum.to_be_bytes());
        prop_assert_eq!(internet_checksum(&data), 0);
    }

    /// Flow keys are direction-insensitive and injective on unordered pairs.
    #[test]
    fn flow_key_symmetry(t in arb_tuple()) {
        prop_assert_eq!(t.key(), t.reversed().key());
        prop_assert_eq!(t.key().stable_hash(), t.reversed().key().stable_hash());
    }

    /// Builder output always re-parses to the same five-tuple, flags and
    /// payload, and its TCP checksum verifies.
    #[test]
    fn built_tcp_frames_roundtrip(
        sa in any::<u32>(), sp in any::<u16>(), da in any::<u32>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in 0u8..0x40,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let tuple = FiveTuple::tcp(sa, sp, da, dp);
        let p = PacketBuilder::new().tcp(tuple, seq, ack, TcpFlags(flags), &payload);
        let reparsed = Packet::parse(p.bytes().to_vec()).unwrap();
        prop_assert_eq!(reparsed.tuple(), Some(tuple));
        prop_assert_eq!(reparsed.meta().tcp_flags, Some(TcpFlags(flags)));
        prop_assert_eq!(&reparsed.payload().unwrap()[..payload.len()], &payload[..]);

        // Verify the transport checksum end to end.
        let l3 = reparsed.meta().l3_offset;
        let ip = Ipv4Header::parse(&reparsed.bytes()[l3..]).unwrap();
        prop_assert_eq!(ip.protocol, proto::TCP);
        let l4 = l3 + ip.header_len();
        let seg = ip.total_len as usize - ip.header_len();
        prop_assert!(TcpHeader::verify_checksum(
            ip.pseudo_header(),
            &reparsed.bytes()[l4..l4 + seg]
        ));
    }

    /// Endpoint rewrites preserve checksum validity for any rewrite target.
    #[test]
    fn rewrites_preserve_validity(
        t in arb_tuple(),
        new_addr in any::<u32>(),
        new_port in any::<u16>(),
        rewrite_src in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut p = match t.protocol {
            Protocol::Tcp => PacketBuilder::new().tcp(t, 1, 2, TcpFlags::ACK, &payload),
            Protocol::Udp => PacketBuilder::new().udp(t, &payload),
            Protocol::Other(_) => unreachable!(),
        };
        if rewrite_src {
            p.rewrite_src(new_addr, new_port).unwrap();
        } else {
            p.rewrite_dst(new_addr, new_port).unwrap();
        }
        // Reparsing verifies the IP header checksum and structure.
        let reparsed = Packet::parse(p.bytes().to_vec()).unwrap();
        let got = reparsed.tuple().unwrap();
        if rewrite_src {
            prop_assert_eq!((got.src_addr, got.src_port), (new_addr, new_port));
        } else {
            prop_assert_eq!((got.dst_addr, got.dst_port), (new_addr, new_port));
        }

        // And the transport checksum still folds to zero.
        let l3 = reparsed.meta().l3_offset;
        let ip = Ipv4Header::parse(&reparsed.bytes()[l3..]).unwrap();
        let l4 = l3 + ip.header_len();
        let seg = ip.total_len as usize - ip.header_len();
        let mut sum = ip.pseudo_header();
        sum.add_bytes(&reparsed.bytes()[l4..l4 + seg]);
        let folded = sum.finish();
        // UDP checksum may be "absent" only if it was never set; our
        // builder always sets it, so both protocols must verify.
        prop_assert_eq!(folded, 0);
    }
}
