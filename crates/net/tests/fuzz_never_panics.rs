//! Fuzz-style property tests: no parser in this crate may panic.
//!
//! The fault-injection experiments feed adversarial frames — truncated,
//! garbage, and bit-flipped — straight into the dataplane; the contract
//! is that every parse path returns `Err` (or a clean `Ok`) for
//! arbitrary bytes, never panics. These tests drive raw random byte
//! soups and mutated valid frames through every header parser and the
//! top-level [`Packet::parse`].

use proptest::prelude::*;
use sprayer_net::ethernet::EthernetHeader;
use sprayer_net::ipv4::Ipv4Header;
use sprayer_net::ipv6::Ipv6Header;
use sprayer_net::packet::{Packet, PacketBuilder};
use sprayer_net::tcp::{TcpFlags, TcpHeader};
use sprayer_net::udp::UdpHeader;
use sprayer_net::FiveTuple;

proptest! {
    /// Arbitrary bytes through every header parser: any `Result` is
    /// fine, unwinding is not.
    #[test]
    fn header_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = EthernetHeader::parse(&data);
        let _ = Ipv4Header::parse(&data);
        let _ = Ipv6Header::parse(&data);
        let _ = TcpHeader::parse(&data);
        let _ = UdpHeader::parse(&data);
    }

    /// Arbitrary bytes through the full-frame parser.
    #[test]
    fn packet_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Packet::parse(data);
    }

    /// A valid frame truncated anywhere parses or errors — and whenever
    /// the cut lands inside the headers, it must error.
    #[test]
    fn truncated_valid_frames_never_panic(
        sa in any::<u32>(), sp in any::<u16>(), da in any::<u32>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<prop::sample::Index>(),
    ) {
        let tuple = FiveTuple::tcp(sa, sp, da, dp);
        let mut frame = PacketBuilder::new()
            .tcp(tuple, 1, 2, TcpFlags::ACK, &payload)
            .into_bytes();
        let at = cut.index(frame.len());
        frame.truncate(at);
        let parsed = Packet::parse(frame);
        if at < 14 + 20 + 20 {
            prop_assert!(parsed.is_err(), "cut at {} inside headers must fail", at);
        }
    }

    /// A valid frame with any single byte mutated parses or errors,
    /// never panics — this walks the checksum/length/version error
    /// paths with near-valid input, where sloppy indexing would hide.
    #[test]
    fn bit_flipped_valid_frames_never_panic(
        sa in any::<u32>(), sp in any::<u16>(), da in any::<u32>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        is_tcp in any::<bool>(),
        flip in any::<prop::sample::Index>(),
        bits in 1u8..=255,
    ) {
        let frame = if is_tcp {
            let tuple = FiveTuple::tcp(sa, sp, da, dp);
            PacketBuilder::new().tcp(tuple, 1, 2, TcpFlags::ACK, &payload)
        } else {
            let tuple = FiveTuple::udp(sa, sp, da, dp);
            PacketBuilder::new().udp(tuple, &payload)
        };
        let mut bytes = frame.into_bytes();
        let at = flip.index(bytes.len());
        bytes[at] ^= bits;
        let _ = Packet::parse(bytes);
    }

    /// Frames that *start* valid but carry lying length fields: a valid
    /// header prefix with the IPv4 total-length word overwritten (and
    /// the header checksum re-fixed so the length lie survives the
    /// checksum gate) must still parse or error cleanly.
    #[test]
    fn lying_total_len_never_panics(
        sa in any::<u32>(), sp in any::<u16>(), da in any::<u32>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        total_len in any::<u16>(),
    ) {
        let tuple = FiveTuple::tcp(sa, sp, da, dp);
        let mut bytes = PacketBuilder::new()
            .tcp(tuple, 1, 2, TcpFlags::ACK, &payload)
            .into_bytes();
        bytes[16..18].copy_from_slice(&total_len.to_be_bytes());
        // Re-fix the IPv4 header checksum so the lie reaches the
        // length-consistency checks instead of dying at the checksum.
        bytes[24] = 0;
        bytes[25] = 0;
        let sum = sprayer_net::checksum::internet_checksum(&bytes[14..34]);
        bytes[24..26].copy_from_slice(&sum.to_be_bytes());
        let _ = Packet::parse(bytes);
    }
}
