//! UDP header parsing and emission.
//!
//! In Sprayer, non-TCP packets fall back to RSS (§4), so UDP traffic
//! exercises the RSS path of the NIC model.

use crate::checksum::Checksum;
use crate::{be16, check_len, put16, NetError, Result};
use serde::{Deserialize, Serialize};

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload.
    pub length: u16,
    /// Checksum as found on the wire (`0` means "not computed" in IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// A header for the given endpoints and payload length.
    pub fn simple(src_port: u16, dst_port: u16, payload_len: u16) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: UDP_HEADER_LEN as u16 + payload_len,
            checksum: 0,
        }
    }

    /// Parse from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        check_len(buf, UDP_HEADER_LEN)?;
        let length = be16(buf, 4);
        if usize::from(length) < UDP_HEADER_LEN {
            return Err(NetError::BadLength);
        }
        Ok(UdpHeader {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            length,
            checksum: be16(buf, 6),
        })
    }

    /// Serialize into `buf`, computing the checksum over the pseudo-header
    /// and `payload`. A computed checksum of 0 is transmitted as `0xffff`
    /// per RFC 768.
    pub fn emit(&self, buf: &mut [u8], pseudo: Checksum, payload: &[u8]) -> Result<usize> {
        check_len(buf, UDP_HEADER_LEN)?;
        put16(buf, 0, self.src_port);
        put16(buf, 2, self.dst_port);
        put16(buf, 4, self.length);
        put16(buf, 6, 0);
        let mut sum = pseudo;
        sum.add_bytes(&buf[..UDP_HEADER_LEN]);
        sum.add_bytes(payload);
        let checksum = match sum.finish() {
            0 => 0xffff,
            c => c,
        };
        put16(buf, 6, checksum);
        Ok(UDP_HEADER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::pseudo_header_v4;
    use crate::ipv4::proto;

    #[test]
    fn round_trip_with_checksum() {
        let payload = b"dns query";
        let hdr = UdpHeader::simple(5353, 53, payload.len() as u16);
        let pseudo = pseudo_header_v4(0x0a000001, 0x0a000002, proto::UDP, hdr.length);
        let mut buf = vec![0u8; 64];
        hdr.emit(&mut buf, pseudo, payload).unwrap();
        buf.truncate(UDP_HEADER_LEN);
        buf.extend_from_slice(payload);

        let parsed = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.src_port, 5353);
        assert_eq!(parsed.dst_port, 53);
        assert_eq!(parsed.length, hdr.length);
        assert_ne!(parsed.checksum, 0);

        // Whole segment (checksum filled) must fold to zero.
        let mut sum = pseudo_header_v4(0x0a000001, 0x0a000002, proto::UDP, hdr.length);
        sum.add_bytes(&buf);
        assert_eq!(sum.finish(), 0);
    }

    #[test]
    fn parse_rejects_length_below_header() {
        let mut buf = [0u8; UDP_HEADER_LEN];
        buf[5] = 7; // length 7 < 8
        assert_eq!(UdpHeader::parse(&buf), Err(NetError::BadLength));
    }

    #[test]
    fn zero_checksum_is_remapped_to_ffff() {
        // Construct a payload that makes the checksum come out to zero:
        // easiest is to search a one-byte payload space.
        for b in 0u8..=255 {
            let payload = [b];
            let hdr = UdpHeader::simple(0, 0, 1);
            let pseudo = pseudo_header_v4(0, 0, proto::UDP, hdr.length);
            let mut buf = vec![0u8; 16];
            hdr.emit(&mut buf, pseudo, &payload).unwrap();
            let parsed = UdpHeader::parse(&buf).unwrap();
            assert_ne!(parsed.checksum, 0, "emitted UDP checksum must never be 0");
        }
    }
}
