//! Five-tuples and flow keys.
//!
//! Sprayer determines a flow's *designated core* from a hash of its
//! five-tuple, using a hash that maps upstream and downstream directions
//! of the same TCP connection to the same core (§3.2). [`FlowKey`] is the
//! direction-insensitive canonical form that makes any hash symmetric.

use serde::{Deserialize, Serialize};

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
    /// Anything else, carrying the raw protocol number.
    Other(u8),
}

impl Protocol {
    /// The IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Decode from an IP protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// A directed five-tuple: (src addr, dst addr, src port, dst port, proto).
///
/// Addresses are IPv4, big-endian `u32` (the paper's evaluation is
/// IPv4-only; the IPv6 translator NF keys on the pre-translation tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_addr: u32,
    /// Destination IPv4 address.
    pub dst_addr: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// Construct a TCP five-tuple.
    pub fn tcp(src_addr: u32, src_port: u16, dst_addr: u32, dst_port: u16) -> Self {
        FiveTuple {
            src_addr,
            dst_addr,
            src_port,
            dst_port,
            protocol: Protocol::Tcp,
        }
    }

    /// Construct a UDP five-tuple.
    pub fn udp(src_addr: u32, src_port: u16, dst_addr: u32, dst_port: u16) -> Self {
        FiveTuple {
            src_addr,
            dst_addr,
            src_port,
            dst_port,
            protocol: Protocol::Udp,
        }
    }

    /// The same connection seen from the other direction.
    pub fn reversed(&self) -> Self {
        FiveTuple {
            src_addr: self.dst_addr,
            dst_addr: self.src_addr,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// The direction-insensitive canonical key for this tuple.
    pub fn key(&self) -> FlowKey {
        FlowKey::from_tuple(self)
    }
}

impl core::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({:?})",
            crate::ipv4::fmt_addr(self.src_addr),
            self.src_port,
            crate::ipv4::fmt_addr(self.dst_addr),
            self.dst_port,
            self.protocol,
        )
    }
}

/// A direction-insensitive flow key: both directions of a connection map
/// to the same `FlowKey`, so any hash of it is symmetric by construction.
///
/// Canonicalization orders the two (addr, port) endpoints lexicographically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// The smaller (addr, port) endpoint.
    pub lo: (u32, u16),
    /// The larger (addr, port) endpoint.
    pub hi: (u32, u16),
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FlowKey {
    /// Canonicalize a directed tuple.
    pub fn from_tuple(t: &FiveTuple) -> Self {
        let a = (t.src_addr, t.src_port);
        let b = (t.dst_addr, t.dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        FlowKey {
            lo,
            hi,
            protocol: t.protocol,
        }
    }

    /// A stable 64-bit mix of the key, suitable for seeding table hashes.
    ///
    /// This is a fixed SplitMix64-style finalizer over the packed fields,
    /// not `std`'s `Hasher` (whose output may change between releases);
    /// experiment reproducibility requires a pinned function.
    pub fn stable_hash(&self) -> u64 {
        let mut x = (u64::from(self.lo.0) << 32) | u64::from(self.hi.0);
        x ^= (u64::from(self.lo.1) << 48)
            | (u64::from(self.hi.1) << 32)
            | (u64::from(self.protocol.number()) << 24);
        splitmix64(x)
    }
}

/// A directed IPv6 five-tuple.
///
/// The paper's evaluation is IPv4-only, but the designated-core mapping
/// must stay symmetric for any address family a deployment sprays
/// (coremap edge-case coverage); addresses are 16-byte big-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTupleV6 {
    /// Source IPv6 address.
    pub src_addr: [u8; 16],
    /// Destination IPv6 address.
    pub dst_addr: [u8; 16],
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTupleV6 {
    /// Construct a TCP IPv6 five-tuple.
    pub fn tcp(src_addr: [u8; 16], src_port: u16, dst_addr: [u8; 16], dst_port: u16) -> Self {
        FiveTupleV6 {
            src_addr,
            dst_addr,
            src_port,
            dst_port,
            protocol: Protocol::Tcp,
        }
    }

    /// Construct a UDP IPv6 five-tuple.
    pub fn udp(src_addr: [u8; 16], src_port: u16, dst_addr: [u8; 16], dst_port: u16) -> Self {
        FiveTupleV6 {
            src_addr,
            dst_addr,
            src_port,
            dst_port,
            protocol: Protocol::Udp,
        }
    }

    /// The same connection seen from the other direction.
    pub fn reversed(&self) -> Self {
        FiveTupleV6 {
            src_addr: self.dst_addr,
            dst_addr: self.src_addr,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// The direction-insensitive canonical key for this tuple.
    pub fn key(&self) -> FlowKeyV6 {
        FlowKeyV6::from_tuple(self)
    }
}

/// Direction-insensitive IPv6 flow key, canonicalized like [`FlowKey`]:
/// the two (addr, port) endpoints are ordered lexicographically, so both
/// directions of a connection — including port 0 and identical-endpoint
/// corner cases — produce the same key and therefore the same hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKeyV6 {
    /// The smaller (addr, port) endpoint.
    pub lo: ([u8; 16], u16),
    /// The larger (addr, port) endpoint.
    pub hi: ([u8; 16], u16),
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FlowKeyV6 {
    /// Canonicalize a directed IPv6 tuple.
    pub fn from_tuple(t: &FiveTupleV6) -> Self {
        let a = (t.src_addr, t.src_port);
        let b = (t.dst_addr, t.dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        FlowKeyV6 {
            lo,
            hi,
            protocol: t.protocol,
        }
    }

    /// A stable 64-bit mix of the key (pinned like
    /// [`FlowKey::stable_hash`]): the 36 input bytes are folded through
    /// a SplitMix64 chain eight bytes at a time.
    pub fn stable_hash(&self) -> u64 {
        let mut x = 0u64;
        let mut fold = |chunk: &[u8]| {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            x = splitmix64(x ^ u64::from_be_bytes(word));
        };
        for chunk in self.lo.0.chunks(8) {
            fold(chunk);
        }
        for chunk in self.hi.0.chunks(8) {
            fold(chunk);
        }
        let tail = (u64::from(self.lo.1) << 32)
            | (u64::from(self.hi.1) << 16)
            | u64::from(self.protocol.number());
        splitmix64(x ^ tail)
    }
}

/// SplitMix64 finalizer: a well-known, fast 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_tuple_has_same_key() {
        let t = FiveTuple::tcp(0xc0a8_0001, 12345, 0x0a00_002a, 443);
        assert_eq!(t.key(), t.reversed().key());
        assert_eq!(t.key().stable_hash(), t.reversed().key().stable_hash());
    }

    #[test]
    fn different_connections_have_different_keys() {
        let a = FiveTuple::tcp(0xc0a8_0001, 12345, 0x0a00_002a, 443);
        let b = FiveTuple::tcp(0xc0a8_0001, 12346, 0x0a00_002a, 443);
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn protocol_distinguishes_keys() {
        let t = FiveTuple::tcp(1, 2, 3, 4);
        let u = FiveTuple::udp(1, 2, 3, 4);
        assert_ne!(t.key(), u.key());
    }

    #[test]
    fn reversed_is_involutive() {
        let t = FiveTuple::tcp(0xdead_beef, 1, 0xcafe_babe, 2);
        assert_eq!(t.reversed().reversed(), t);
    }

    #[test]
    fn protocol_numbers_round_trip() {
        for p in [Protocol::Tcp, Protocol::Udp, Protocol::Other(47)] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
    }

    #[test]
    fn stable_hash_is_pinned() {
        // Guard against accidental changes to the mixing function: the
        // experiment harness depends on run-to-run reproducibility.
        let t = FiveTuple::tcp(0xc0a8_0001, 12345, 0x0a00_002a, 443);
        let h1 = t.key().stable_hash();
        let h2 = t.key().stable_hash();
        assert_eq!(h1, h2);
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn v6_reversed_tuple_has_same_key() {
        let src = [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let dst = [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2];
        let t = FiveTupleV6::tcp(src, 40_000, dst, 443);
        assert_eq!(t.key(), t.reversed().key());
        assert_eq!(t.key().stable_hash(), t.reversed().key().stable_hash());
    }

    #[test]
    fn v6_corner_cases_stay_symmetric() {
        let a = [0xfe; 16];
        let b = [0x01; 16];
        // Port 0 on either side.
        let zero = FiveTupleV6::udp(a, 0, b, 53);
        assert_eq!(zero.key(), zero.reversed().key());
        // Identical endpoints: reversal is the identity on the key.
        let same = FiveTupleV6::tcp(a, 7, a, 7);
        assert_eq!(same.key(), same.reversed().key());
        // Distinct connections still separate.
        assert_ne!(
            FiveTupleV6::tcp(a, 1, b, 2).key().stable_hash(),
            FiveTupleV6::tcp(a, 1, b, 3).key().stable_hash()
        );
    }

    #[test]
    fn display_is_human_readable() {
        let t = FiveTuple::tcp(0xc0a8_0001, 12345, 0x0a00_002a, 443);
        assert_eq!(t.to_string(), "192.168.0.1:12345 -> 10.0.0.42:443 (Tcp)");
    }
}
