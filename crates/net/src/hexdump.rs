//! Human-readable hexdumps for debugging packet contents.

use core::fmt::Write as _;

/// Render `bytes` as a classic 16-bytes-per-line hexdump with an ASCII
/// gutter, e.g. for example binaries' `--dump` flags.
pub fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 4);
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let _ = write!(out, "{:08x}  ", i * 16);
        for j in 0..16 {
            match chunk.get(j) {
                Some(b) => {
                    let _ = write!(out, "{b:02x} ");
                }
                None => out.push_str("   "),
            }
            if j == 7 {
                out.push(' ');
            }
        }
        out.push(' ');
        for &b in chunk {
            out.push(if (0x20..0x7f).contains(&b) {
                b as char
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_sixteen_bytes_per_line() {
        let data: Vec<u8> = (0..32).collect();
        let dump = hexdump(&data);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("00000000  00 01 02 03"));
        assert!(lines[1].starts_with("00000010  10 11 12 13"));
    }

    #[test]
    fn ascii_gutter_shows_printables() {
        let dump = hexdump(b"Hi\x00!");
        assert!(dump.contains("Hi.!"));
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert_eq!(hexdump(&[]), "");
    }
}
