//! IPv4 header parsing and emission.

use crate::checksum::{internet_checksum, Checksum};
use crate::{be16, be32, check_len, put16, put32, NetError, Result};
use serde::{Deserialize, Serialize};

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers used by this stack.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// ICMP.
    pub const ICMP: u8 = 1;
}

/// A parsed IPv4 header (options preserved as raw bytes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services + ECN byte.
    pub dscp_ecn: u8,
    /// Total length of the datagram (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field (fragmentation).
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number (see [`proto`]).
    pub protocol: u8,
    /// Header checksum as found on the wire (recomputed by `emit`).
    pub checksum: u16,
    /// Source address (big-endian `u32`, so `192.0.2.1` is `0xc0000201`).
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Raw option bytes (length must be a multiple of 4, at most 40).
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// A minimal TCP/UDP-carrying header with common defaults.
    pub fn simple(src: u32, dst: u32, protocol: u8, payload_len: u16) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: IPV4_HEADER_LEN as u16 + payload_len,
            identification: 0,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol,
            checksum: 0,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Header length in bytes including options.
    pub fn header_len(&self) -> usize {
        IPV4_HEADER_LEN + self.options.len()
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        usize::from(self.total_len).saturating_sub(self.header_len())
    }

    /// Parse a header from the start of `buf`, verifying the checksum.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        check_len(buf, IPV4_HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(NetError::BadVersion(version));
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if !(IPV4_HEADER_LEN..=60).contains(&ihl) {
            return Err(NetError::BadLength);
        }
        check_len(buf, ihl)?;
        if internet_checksum(&buf[..ihl]) != 0 {
            return Err(NetError::BadChecksum);
        }
        let total_len = be16(buf, 2);
        if usize::from(total_len) < ihl {
            return Err(NetError::BadLength);
        }
        let flags_frag = be16(buf, 6);
        Ok(Ipv4Header {
            dscp_ecn: buf[1],
            total_len,
            identification: be16(buf, 4),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            fragment_offset: flags_frag & 0x1fff,
            ttl: buf[8],
            protocol: buf[9],
            checksum: be16(buf, 10),
            src: be32(buf, 12),
            dst: be32(buf, 16),
            options: buf[IPV4_HEADER_LEN..ihl].to_vec(),
        })
    }

    /// Serialize into `buf`, computing and writing the header checksum.
    ///
    /// Returns the number of header bytes written.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize> {
        let hlen = self.header_len();
        if hlen > 60 || !self.options.len().is_multiple_of(4) {
            return Err(NetError::Unsupported);
        }
        check_len(buf, hlen)?;
        buf[0] = 0x40 | ((hlen / 4) as u8);
        buf[1] = self.dscp_ecn;
        put16(buf, 2, self.total_len);
        put16(buf, 4, self.identification);
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        put16(buf, 6, flags_frag);
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        put16(buf, 10, 0);
        put32(buf, 12, self.src);
        put32(buf, 16, self.dst);
        buf[IPV4_HEADER_LEN..hlen].copy_from_slice(&self.options);
        let sum = internet_checksum(&buf[..hlen]);
        put16(buf, 10, sum);
        Ok(hlen)
    }

    /// The pseudo-header checksum seed for this header's transport payload.
    ///
    /// Saturates when `total_len` claims less than the header itself —
    /// such a header never comes out of [`Ipv4Header::parse`] (which
    /// rejects it), but a hand-constructed one must not panic here.
    pub fn pseudo_header(&self) -> Checksum {
        crate::checksum::pseudo_header_v4(
            self.src,
            self.dst,
            self.protocol,
            self.total_len.saturating_sub(self.header_len() as u16),
        )
    }
}

/// Format a big-endian `u32` as dotted-quad for diagnostics.
pub fn fmt_addr(addr: u32) -> String {
    let b = addr.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// Parse `a.b.c.d` into a big-endian `u32`. Returns `None` on malformed
/// input; intended for example/CLI code, not the data path.
pub fn parse_addr(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut addr = 0u32;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        addr = (addr << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        let mut h = Ipv4Header::simple(0xc0a8_0001, 0x0a00_002a, proto::TCP, 100);
        h.identification = 0x1234;
        h.ttl = 57;
        h
    }

    #[test]
    fn round_trip_no_options() {
        let hdr = sample();
        let mut buf = vec![0u8; 64];
        let n = hdr.emit(&mut buf).unwrap();
        assert_eq!(n, IPV4_HEADER_LEN);
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.src, hdr.src);
        assert_eq!(parsed.dst, hdr.dst);
        assert_eq!(parsed.total_len, hdr.total_len);
        assert_eq!(parsed.ttl, hdr.ttl);
        assert_eq!(parsed.identification, hdr.identification);
        assert!(parsed.dont_fragment);
        // Emitted checksum must self-verify.
        assert_eq!(internet_checksum(&buf[..n]), 0);
    }

    #[test]
    fn round_trip_with_options() {
        let mut hdr = sample();
        hdr.options = vec![0x01, 0x01, 0x01, 0x01]; // four NOPs
        hdr.total_len += 4;
        let mut buf = vec![0u8; 64];
        let n = hdr.emit(&mut buf).unwrap();
        assert_eq!(n, 24);
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.options, hdr.options);
        assert_eq!(parsed.header_len(), 24);
    }

    #[test]
    fn parse_rejects_bad_checksum() {
        let mut buf = vec![0u8; 64];
        sample().emit(&mut buf).unwrap();
        buf[15] ^= 1; // corrupt source address
        assert_eq!(Ipv4Header::parse(&buf), Err(NetError::BadChecksum));
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut buf = vec![0u8; 64];
        sample().emit(&mut buf).unwrap();
        buf[0] = 0x65; // version 6 — but re-fix checksum so version check fires first
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(NetError::BadVersion(6))
        ));
    }

    #[test]
    fn parse_rejects_ihl_below_minimum() {
        let mut buf = vec![0u8; 64];
        sample().emit(&mut buf).unwrap();
        buf[0] = 0x44; // IHL = 4 words = 16 bytes < 20
        assert_eq!(Ipv4Header::parse(&buf), Err(NetError::BadLength));
    }

    #[test]
    fn emit_rejects_unaligned_options() {
        let mut hdr = sample();
        hdr.options = vec![1, 2, 3];
        let mut buf = vec![0u8; 64];
        assert_eq!(hdr.emit(&mut buf), Err(NetError::Unsupported));
    }

    #[test]
    fn addr_formatting_round_trips() {
        assert_eq!(fmt_addr(0xc0a8_0001), "192.168.0.1");
        assert_eq!(parse_addr("192.168.0.1"), Some(0xc0a8_0001));
        assert_eq!(parse_addr("10.0.0.300"), None);
        assert_eq!(parse_addr("1.2.3"), None);
        assert_eq!(parse_addr("1.2.3.4.5"), None);
    }

    #[test]
    fn payload_len_accounts_for_options() {
        let mut hdr = sample();
        assert_eq!(hdr.payload_len(), 100);
        hdr.options = vec![0; 8];
        hdr.total_len += 8;
        assert_eq!(hdr.payload_len(), 100);
    }
}
