//! Owned packets: wire bytes plus a parsed metadata view.
//!
//! [`Packet`] is what flows through the simulated NIC, the dispatch
//! policies, and the network functions. It always carries real wire bytes
//! (built by [`PacketBuilder`] with correct checksums), and a
//! [`PacketMeta`] summary extracted once at parse time so hot paths don't
//! re-parse.

use crate::checksum::{incremental_update16, incremental_update32};
use crate::ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
use crate::flow::{FiveTuple, Protocol};
use crate::ipv4::{proto, Ipv4Header};
use crate::mac::MacAddr;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;
use crate::{be16, put16, put32, NetError, Result};
use serde::{Deserialize, Serialize};

/// Minimum Ethernet frame length (without FCS).
pub const MIN_FRAME_LEN: usize = 60;
/// Conventional Ethernet MTU.
pub const MTU: usize = 1500;

/// Parsed summary of a frame, extracted once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketMeta {
    /// EtherType of the L3 payload.
    pub ethertype: EtherType,
    /// Five-tuple, if the packet is IPv4 TCP/UDP.
    pub tuple: Option<FiveTuple>,
    /// TCP flags, if TCP.
    pub tcp_flags: Option<TcpFlags>,
    /// The on-wire TCP checksum, if TCP — the field Flow Director's
    /// spraying rule matches on.
    pub tcp_checksum: Option<u16>,
    /// Byte offset of the IP header.
    pub l3_offset: usize,
    /// Byte offset of the transport header, if IPv4.
    pub l4_offset: Option<usize>,
    /// Byte offset of the transport payload, if TCP/UDP.
    pub payload_offset: Option<usize>,
    /// Transport payload length in bytes, if TCP/UDP — bounded by the IP
    /// total length, so Ethernet minimum-frame padding is excluded.
    pub payload_len: Option<usize>,
    /// Full frame length in bytes.
    pub frame_len: usize,
}

impl PacketMeta {
    /// Whether this is a *connection packet* in the paper's sense (§3.2):
    /// a TCP packet flagged SYN, FIN, or RST.
    pub fn is_connection_packet(&self) -> bool {
        self.tcp_flags.is_some_and(|f| f.is_connection_packet())
    }

    /// Whether this is a TCP packet (sprayable under Sprayer's NIC config).
    pub fn is_tcp(&self) -> bool {
        matches!(self.tuple, Some(t) if t.protocol == Protocol::Tcp)
    }
}

/// An owned Ethernet frame with parsed metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    data: Vec<u8>,
    meta: PacketMeta,
}

impl Packet {
    /// Parse a frame from owned bytes. Non-IP or fragmented payloads still
    /// parse (middleboxes must pass them through); their `tuple` is `None`.
    pub fn parse(data: Vec<u8>) -> Result<Self> {
        let eth = EthernetHeader::parse(&data)?;
        let mut meta = PacketMeta {
            ethertype: eth.ethertype,
            tuple: None,
            tcp_flags: None,
            tcp_checksum: None,
            l3_offset: ETHERNET_HEADER_LEN,
            l4_offset: None,
            payload_offset: None,
            payload_len: None,
            frame_len: data.len(),
        };
        if eth.ethertype == EtherType::Ipv4 {
            let ip = Ipv4Header::parse(&data[ETHERNET_HEADER_LEN..])?;
            let l4_offset = ETHERNET_HEADER_LEN + ip.header_len();
            meta.l4_offset = Some(l4_offset);
            let is_fragment = ip.fragment_offset != 0 || ip.more_fragments;
            if !is_fragment {
                match ip.protocol {
                    proto::TCP => {
                        let tcp = TcpHeader::parse(&data[l4_offset..])?;
                        meta.tuple = Some(FiveTuple {
                            src_addr: ip.src,
                            dst_addr: ip.dst,
                            src_port: tcp.src_port,
                            dst_port: tcp.dst_port,
                            protocol: Protocol::Tcp,
                        });
                        meta.tcp_flags = Some(tcp.flags);
                        meta.tcp_checksum = Some(tcp.checksum);
                        let off = l4_offset + tcp.header_len();
                        meta.payload_offset = Some(off);
                        meta.payload_len = Some(
                            (ETHERNET_HEADER_LEN + usize::from(ip.total_len))
                                .saturating_sub(off)
                                .min(data.len().saturating_sub(off)),
                        );
                    }
                    proto::UDP => {
                        let udp = UdpHeader::parse(&data[l4_offset..])?;
                        meta.tuple = Some(FiveTuple {
                            src_addr: ip.src,
                            dst_addr: ip.dst,
                            src_port: udp.src_port,
                            dst_port: udp.dst_port,
                            protocol: Protocol::Udp,
                        });
                        let off = l4_offset + crate::udp::UDP_HEADER_LEN;
                        meta.payload_offset = Some(off);
                        meta.payload_len = Some(
                            (ETHERNET_HEADER_LEN + usize::from(ip.total_len))
                                .saturating_sub(off)
                                .min(data.len().saturating_sub(off)),
                        );
                    }
                    _ => {}
                }
            }
        }
        Ok(Packet { data, meta })
    }

    /// The parsed metadata summary.
    pub fn meta(&self) -> &PacketMeta {
        &self.meta
    }

    /// The five-tuple, if IPv4 TCP/UDP.
    pub fn tuple(&self) -> Option<FiveTuple> {
        self.meta.tuple
    }

    /// The raw frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the frame is empty (never for parsed packets).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Transport payload bytes, if TCP/UDP. Excludes Ethernet
    /// minimum-frame padding (bounded by the IP total length).
    pub fn payload(&self) -> Option<&[u8]> {
        match (self.meta.payload_offset, self.meta.payload_len) {
            (Some(o), Some(len)) => Some(&self.data[o..o + len]),
            _ => None,
        }
    }

    /// Whether this is a connection packet (§3.2).
    pub fn is_connection_packet(&self) -> bool {
        self.meta.is_connection_packet()
    }

    /// Consume and return the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Rewrite the IPv4 source (address, port), updating the IP header
    /// checksum and TCP/UDP checksum incrementally (as a real NAT does).
    pub fn rewrite_src(&mut self, addr: u32, port: u16) -> Result<()> {
        self.rewrite_endpoint(addr, port, true)
    }

    /// Rewrite the IPv4 destination (address, port); see [`Packet::rewrite_src`].
    pub fn rewrite_dst(&mut self, addr: u32, port: u16) -> Result<()> {
        self.rewrite_endpoint(addr, port, false)
    }

    fn rewrite_endpoint(&mut self, addr: u32, port: u16, src: bool) -> Result<()> {
        let tuple = self.meta.tuple.ok_or(NetError::Unsupported)?;
        let l3 = self.meta.l3_offset;
        let l4 = self.meta.l4_offset.ok_or(NetError::Unsupported)?;

        let (old_addr, old_port, addr_off, port_off) = if src {
            (tuple.src_addr, tuple.src_port, l3 + 12, l4)
        } else {
            (tuple.dst_addr, tuple.dst_port, l3 + 16, l4 + 2)
        };

        // IP header checksum covers the address only.
        let ip_sum_off = l3 + 10;
        let ip_sum = be16(&self.data, ip_sum_off);
        put16(
            &mut self.data,
            ip_sum_off,
            incremental_update32(ip_sum, old_addr, addr),
        );
        put32(&mut self.data, addr_off, addr);

        // Transport checksum covers the pseudo-header (address) and port.
        let l4_sum_off = match tuple.protocol {
            Protocol::Tcp => Some(l4 + 16),
            Protocol::Udp => Some(l4 + 6),
            Protocol::Other(_) => None,
        };
        if let Some(off) = l4_sum_off {
            let mut sum = be16(&self.data, off);
            // A UDP checksum of 0 means "absent"; leave it absent.
            let absent = tuple.protocol == Protocol::Udp && sum == 0;
            if !absent {
                sum = incremental_update32(sum, old_addr, addr);
                sum = incremental_update16(sum, old_port, port);
                if tuple.protocol == Protocol::Udp && sum == 0 {
                    sum = 0xffff;
                }
                put16(&mut self.data, off, sum);
            }
        }
        put16(&mut self.data, port_off, port);

        // Keep the metadata view coherent.
        let t = self.meta.tuple.as_mut().expect("checked above");
        if src {
            t.src_addr = addr;
            t.src_port = port;
        } else {
            t.dst_addr = addr;
            t.dst_port = port;
        }
        if tuple.protocol == Protocol::Tcp {
            self.meta.tcp_checksum = Some(be16(&self.data, l4 + 16));
        }
        Ok(())
    }

    /// Decrement the IPv4 TTL, updating the header checksum incrementally.
    /// Returns the new TTL, or an error for non-IPv4 frames.
    pub fn decrement_ttl(&mut self) -> Result<u8> {
        if self.meta.ethertype != EtherType::Ipv4 {
            return Err(NetError::Unsupported);
        }
        let l3 = self.meta.l3_offset;
        let ttl = self.data[l3 + 8];
        if ttl == 0 {
            return Err(NetError::BadLength);
        }
        let new_ttl = ttl - 1;
        // TTL shares a 16-bit word with the protocol field at offset 8.
        let old_word = be16(&self.data, l3 + 8);
        let new_word = (u16::from(new_ttl) << 8) | (old_word & 0x00ff);
        let sum = be16(&self.data, l3 + 10);
        put16(
            &mut self.data,
            l3 + 10,
            incremental_update16(sum, old_word, new_word),
        );
        self.data[l3 + 8] = new_ttl;
        Ok(new_ttl)
    }
}

/// Builds complete frames with correct checksums.
///
/// Defaults: locally administered MACs, TTL 64, don't-fragment, window
/// 0xffff. Frames shorter than [`MIN_FRAME_LEN`] are zero-padded (padding
/// is outside the IP `total_len`, as on real Ethernet).
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    ttl: u8,
    window: u16,
    pad_to_min: bool,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            ttl: 64,
            window: 0xffff,
            pad_to_min: true,
        }
    }
}

impl PacketBuilder {
    /// A builder with default link-layer parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the MAC addresses.
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Set the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Set the advertised TCP window.
    pub fn window(mut self, window: u16) -> Self {
        self.window = window;
        self
    }

    /// Disable padding to the 60-byte Ethernet minimum.
    pub fn no_padding(mut self) -> Self {
        self.pad_to_min = false;
        self
    }

    /// Build a TCP/IPv4 frame.
    pub fn tcp(
        &self,
        tuple: FiveTuple,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Packet {
        assert_eq!(tuple.protocol, Protocol::Tcp, "tuple must be TCP");
        let tcp_len = crate::tcp::TCP_HEADER_LEN + payload.len();
        let mut ip = Ipv4Header::simple(tuple.src_addr, tuple.dst_addr, proto::TCP, tcp_len as u16);
        ip.ttl = self.ttl;
        let frame_len = ETHERNET_HEADER_LEN + ip.header_len() + tcp_len;
        let mut data = vec![0u8; frame_len.max(if self.pad_to_min { MIN_FRAME_LEN } else { 0 })];

        let eth = EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: EtherType::Ipv4,
        };
        eth.emit(&mut data).expect("buffer sized above");
        let ip_len = ip
            .emit(&mut data[ETHERNET_HEADER_LEN..])
            .expect("buffer sized above");
        let l4 = ETHERNET_HEADER_LEN + ip_len;

        let mut tcp = TcpHeader::simple(tuple.src_port, tuple.dst_port, seq, flags);
        tcp.ack = ack;
        tcp.window = self.window;
        let pseudo = ip.pseudo_header();
        let tcp_hlen = tcp
            .emit(&mut data[l4..], pseudo, payload)
            .expect("buffer sized above");
        data[l4 + tcp_hlen..l4 + tcp_hlen + payload.len()].copy_from_slice(payload);

        Packet::parse(data).expect("builder emits well-formed frames")
    }

    /// Build a UDP/IPv4 frame.
    pub fn udp(&self, tuple: FiveTuple, payload: &[u8]) -> Packet {
        assert_eq!(tuple.protocol, Protocol::Udp, "tuple must be UDP");
        let udp_len = crate::udp::UDP_HEADER_LEN + payload.len();
        let mut ip = Ipv4Header::simple(tuple.src_addr, tuple.dst_addr, proto::UDP, udp_len as u16);
        ip.ttl = self.ttl;
        let frame_len = ETHERNET_HEADER_LEN + ip.header_len() + udp_len;
        let mut data = vec![0u8; frame_len.max(if self.pad_to_min { MIN_FRAME_LEN } else { 0 })];

        let eth = EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: EtherType::Ipv4,
        };
        eth.emit(&mut data).expect("buffer sized above");
        let ip_len = ip
            .emit(&mut data[ETHERNET_HEADER_LEN..])
            .expect("buffer sized above");
        let l4 = ETHERNET_HEADER_LEN + ip_len;

        let udp = UdpHeader::simple(tuple.src_port, tuple.dst_port, payload.len() as u16);
        let pseudo = ip.pseudo_header();
        udp.emit(&mut data[l4..], pseudo, payload)
            .expect("buffer sized above");
        data[l4 + crate::udp::UDP_HEADER_LEN..l4 + udp_len].copy_from_slice(payload);

        Packet::parse(data).expect("builder emits well-formed frames")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::pseudo_header_v4;

    fn tcp_tuple() -> FiveTuple {
        FiveTuple::tcp(0xc0a8_0001, 40000, 0x0a00_002a, 443)
    }

    fn verify_tcp_checksum(p: &Packet) -> bool {
        let l3 = p.meta().l3_offset;
        let ip = Ipv4Header::parse(&p.bytes()[l3..]).unwrap();
        let l4 = l3 + ip.header_len();
        let seg_len = ip.total_len as usize - ip.header_len();
        let pseudo = pseudo_header_v4(ip.src, ip.dst, ip.protocol, seg_len as u16);
        TcpHeader::verify_checksum(pseudo, &p.bytes()[l4..l4 + seg_len])
    }

    #[test]
    fn builder_emits_parseable_tcp_frame() {
        let p = PacketBuilder::new().tcp(tcp_tuple(), 100, 0, TcpFlags::SYN, b"");
        assert_eq!(p.tuple(), Some(tcp_tuple()));
        assert!(p.is_connection_packet());
        assert_eq!(p.len(), MIN_FRAME_LEN);
        assert!(verify_tcp_checksum(&p));
    }

    #[test]
    fn payload_round_trips() {
        let p = PacketBuilder::new().tcp(tcp_tuple(), 1, 2, TcpFlags::ACK, b"data!");
        assert_eq!(p.payload().unwrap(), b"data!");
        assert!(!p.is_connection_packet());
    }

    #[test]
    fn payload_excludes_minimum_frame_padding() {
        // A 60-byte frame with a 4-byte payload has 2 bytes of padding
        // beyond the IP datagram; payload() must not expose them.
        let p = PacketBuilder::new().tcp(tcp_tuple(), 1, 2, TcpFlags::ACK, b"tiny");
        assert_eq!(p.len(), MIN_FRAME_LEN);
        assert_eq!(p.payload().unwrap(), b"tiny");
        let empty = PacketBuilder::new().tcp(tcp_tuple(), 1, 2, TcpFlags::ACK, b"");
        assert_eq!(empty.payload().unwrap(), b"");
    }

    #[test]
    fn udp_frame_parses_with_tuple() {
        let t = FiveTuple::udp(0x0a000001, 5000, 0x0a000002, 53);
        let p = PacketBuilder::new().udp(t, b"query");
        assert_eq!(p.tuple(), Some(t));
        assert!(!p.meta().is_tcp());
        assert!(p.meta().tcp_checksum.is_none());
    }

    #[test]
    fn rewrite_src_keeps_checksums_valid() {
        let mut p = PacketBuilder::new().tcp(tcp_tuple(), 10, 20, TcpFlags::ACK, b"x");
        p.rewrite_src(0x0101_0101, 6666).unwrap();
        let t = p.tuple().unwrap();
        assert_eq!(t.src_addr, 0x0101_0101);
        assert_eq!(t.src_port, 6666);
        // Both checksums must still verify after the incremental update.
        let reparsed = Packet::parse(p.bytes().to_vec()).unwrap();
        assert_eq!(reparsed.tuple().unwrap(), t);
        assert!(verify_tcp_checksum(&p));
    }

    #[test]
    fn rewrite_dst_keeps_checksums_valid() {
        let mut p = PacketBuilder::new().tcp(tcp_tuple(), 10, 20, TcpFlags::ACK, b"hi");
        p.rewrite_dst(0x0202_0202, 7777).unwrap();
        assert!(verify_tcp_checksum(&p));
        assert_eq!(p.tuple().unwrap().dst_port, 7777);
    }

    #[test]
    fn rewrite_updates_meta_tcp_checksum() {
        let mut p = PacketBuilder::new().tcp(tcp_tuple(), 10, 20, TcpFlags::ACK, b"zz");
        let before = p.meta().tcp_checksum.unwrap();
        p.rewrite_src(0xdead_beef, 1).unwrap();
        let after = p.meta().tcp_checksum.unwrap();
        assert_ne!(before, after);
        // Meta must match the wire.
        let reparsed = Packet::parse(p.bytes().to_vec()).unwrap();
        assert_eq!(reparsed.meta().tcp_checksum, Some(after));
    }

    #[test]
    fn udp_rewrite_keeps_checksum_valid() {
        let t = FiveTuple::udp(0x0a000001, 5000, 0x0a000002, 53);
        let mut p = PacketBuilder::new().udp(t, b"abcd");
        p.rewrite_src(0x0b000001, 5001).unwrap();
        let l3 = p.meta().l3_offset;
        let ip = Ipv4Header::parse(&p.bytes()[l3..]).unwrap();
        let l4 = l3 + ip.header_len();
        let seg_len = ip.total_len as usize - ip.header_len();
        let mut sum = pseudo_header_v4(ip.src, ip.dst, ip.protocol, seg_len as u16);
        sum.add_bytes(&p.bytes()[l4..l4 + seg_len]);
        assert_eq!(sum.finish(), 0);
    }

    #[test]
    fn decrement_ttl_keeps_ip_checksum_valid() {
        let mut p = PacketBuilder::new()
            .ttl(17)
            .tcp(tcp_tuple(), 0, 0, TcpFlags::ACK, b"");
        assert_eq!(p.decrement_ttl().unwrap(), 16);
        // Re-parse verifies the IP checksum.
        let reparsed = Packet::parse(p.bytes().to_vec()).unwrap();
        assert_eq!(reparsed.bytes()[reparsed.meta().l3_offset + 8], 16);
    }

    #[test]
    fn decrement_ttl_zero_fails() {
        let mut p = PacketBuilder::new()
            .ttl(0)
            .tcp(tcp_tuple(), 0, 0, TcpFlags::ACK, b"");
        assert!(p.decrement_ttl().is_err());
    }

    #[test]
    fn variable_payload_produces_variable_checksum() {
        // MoonGen-style 64 B packets with varying payload must yield
        // varying TCP checksums — the entropy source for spraying.
        let mut seen = std::collections::HashSet::new();
        for i in 0u16..64 {
            let payload = i.to_be_bytes();
            let p = PacketBuilder::new().tcp(tcp_tuple(), 0, 0, TcpFlags::ACK, &payload);
            seen.insert(p.meta().tcp_checksum.unwrap());
        }
        assert!(
            seen.len() >= 60,
            "checksums should be near-distinct, got {}",
            seen.len()
        );
    }

    #[test]
    fn padding_is_outside_ip_total_len() {
        let p = PacketBuilder::new().tcp(tcp_tuple(), 0, 0, TcpFlags::ACK, b"");
        let ip = Ipv4Header::parse(&p.bytes()[ETHERNET_HEADER_LEN..]).unwrap();
        assert_eq!(ip.total_len as usize, IPV4_TOTAL_FOR_EMPTY_TCP);
        assert_eq!(p.len(), MIN_FRAME_LEN);
    }

    const IPV4_TOTAL_FOR_EMPTY_TCP: usize = 40;

    #[test]
    fn non_ip_frame_parses_without_tuple() {
        let mut data = vec![0u8; MIN_FRAME_LEN];
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_index(9),
            ethertype: EtherType::Arp,
        }
        .emit(&mut data)
        .unwrap();
        let p = Packet::parse(data).unwrap();
        assert_eq!(p.tuple(), None);
        assert!(!p.is_connection_packet());
        assert_eq!(p.meta().ethertype, EtherType::Arp);
    }

    #[test]
    fn fragment_has_no_tuple() {
        // Build a TCP frame, then mark it as a fragment and re-parse.
        let p = PacketBuilder::new().tcp(tcp_tuple(), 0, 0, TcpFlags::ACK, b"abc");
        let mut bytes = p.into_bytes();
        let l3 = ETHERNET_HEADER_LEN;
        // Set more-fragments and fix the IP checksum.
        let old = be16(&bytes, l3 + 6);
        let new = old | 0x2000;
        let sum = be16(&bytes, l3 + 10);
        put16(&mut bytes, l3 + 10, incremental_update16(sum, old, new));
        put16(&mut bytes, l3 + 6, new);
        let p = Packet::parse(bytes).unwrap();
        assert_eq!(p.tuple(), None, "fragments must not be classified by ports");
    }
}
