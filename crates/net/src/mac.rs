//! Ethernet MAC addresses.

use serde::{Deserialize, Serialize};

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder by packet builders.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from the six octets in transmission order.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        MacAddr([a, b, c, d, e, f])
    }

    /// True if the group bit (LSB of the first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for `ff:ff:ff:ff:ff:ff`.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// A deterministic locally-administered unicast address derived from an
    /// index; used by traffic generators to label simulated hosts.
    pub fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_colon_separated_hex() {
        let mac = MacAddr::new(0xde, 0xad, 0xbe, 0xef, 0x00, 0x01);
        assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn broadcast_is_multicast_and_broadcast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn from_index_is_local_unicast_and_unique() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert!(a.is_local());
        assert!(!a.is_multicast());
    }

    #[test]
    fn zero_is_not_multicast() {
        assert!(!MacAddr::ZERO.is_multicast());
        assert!(!MacAddr::ZERO.is_broadcast());
    }
}
