//! IPv6 header parsing and emission (no extension headers).
//!
//! Sprayer's evaluation is IPv4, but the paper's Table 1 includes an
//! "IPv4 to IPv6" translator NF, so the stack carries enough IPv6 to
//! build and parse translated packets.

use crate::checksum::Checksum;
use crate::{be16, be32, check_len, put16, put32, NetError, Result};
use serde::{Deserialize, Serialize};

/// Length of the fixed IPv6 header.
pub const IPV6_HEADER_LEN: usize = 40;

/// A parsed fixed IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// Traffic class.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Payload length in bytes (everything after this header).
    pub payload_len: u16,
    /// Next header (protocol) number.
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: [u8; 16],
    /// Destination address.
    pub dst: [u8; 16],
}

impl Ipv6Header {
    /// A minimal header with common defaults.
    pub fn simple(src: [u8; 16], dst: [u8; 16], next_header: u8, payload_len: u16) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len,
            next_header,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// An IPv4-mapped IPv6 address (`::ffff:a.b.c.d`), used by the
    /// IPv4→IPv6 translator NF.
    pub fn mapped_v4(addr: u32) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[10] = 0xff;
        out[11] = 0xff;
        out[12..16].copy_from_slice(&addr.to_be_bytes());
        out
    }

    /// Parse from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        check_len(buf, IPV6_HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(NetError::BadVersion(version));
        }
        let first = be32(buf, 0);
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6Header {
            traffic_class: ((first >> 20) & 0xff) as u8,
            flow_label: first & 0x000f_ffff,
            payload_len: be16(buf, 4),
            next_header: buf[6],
            hop_limit: buf[7],
            src,
            dst,
        })
    }

    /// Serialize into the first [`IPV6_HEADER_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize> {
        check_len(buf, IPV6_HEADER_LEN)?;
        let first =
            (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0x000f_ffff);
        put32(buf, 0, first);
        put16(buf, 4, self.payload_len);
        buf[6] = self.next_header;
        buf[7] = self.hop_limit;
        buf[8..24].copy_from_slice(&self.src);
        buf[24..40].copy_from_slice(&self.dst);
        Ok(IPV6_HEADER_LEN)
    }

    /// The pseudo-header checksum seed for this header's transport payload.
    pub fn pseudo_header(&self) -> Checksum {
        crate::checksum::pseudo_header_v6(
            &self.src,
            &self.dst,
            self.next_header,
            u32::from(self.payload_len),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        let mut h = Ipv6Header::simple(
            Ipv6Header::mapped_v4(0xc0a8_0001),
            Ipv6Header::mapped_v4(0x0a00_002a),
            6,
            512,
        );
        h.flow_label = 0xabcde;
        h.traffic_class = 0x1c;
        h.hop_limit = 3;
        h
    }

    #[test]
    fn round_trip() {
        let hdr = sample();
        let mut buf = [0u8; IPV6_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(Ipv6Header::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut buf = [0u8; IPV6_HEADER_LEN];
        sample().emit(&mut buf).unwrap();
        buf[0] = 0x45;
        assert!(matches!(
            Ipv6Header::parse(&buf),
            Err(NetError::BadVersion(4))
        ));
    }

    #[test]
    fn flow_label_is_masked_to_20_bits() {
        let mut hdr = sample();
        hdr.flow_label = 0xfff_ffff; // wider than 20 bits
        let mut buf = [0u8; IPV6_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(Ipv6Header::parse(&buf).unwrap().flow_label, 0xf_ffff);
    }

    #[test]
    fn mapped_v4_has_ffff_prefix() {
        let mapped = Ipv6Header::mapped_v4(0x0102_0304);
        assert_eq!(&mapped[..10], &[0u8; 10]);
        assert_eq!(&mapped[10..12], &[0xff, 0xff]);
        assert_eq!(&mapped[12..], &[1, 2, 3, 4]);
    }
}
