//! # sprayer-net — wire formats for the Sprayer reproduction
//!
//! Standalone, dependency-light implementations of the packet formats the
//! Sprayer middlebox framework operates on:
//!
//! * [`ethernet`] — Ethernet II framing,
//! * [`ipv4`] / [`ipv6`] — IP headers (v6 without extension headers),
//! * [`tcp`] / [`udp`] — transport headers, including the TCP checksum
//!   field that Sprayer's Flow Director trick matches on,
//! * [`checksum`] — the Internet checksum (RFC 1071) plus incremental
//!   update (RFC 1624), used by the NAT to rewrite headers cheaply,
//! * [`flow`] — five-tuples, flow identifiers, and the *symmetric*
//!   canonical form that maps both directions of a TCP connection to the
//!   same key (the basis of Sprayer's designated-core mapping),
//! * [`packet`] — an owned packet buffer with a lazily parsed metadata
//!   view and a builder that emits correct wire bytes (real checksums, so
//!   a simulated NIC spraying on checksum bits sees realistic entropy).
//!
//! Everything parses from and serializes to real wire bytes; round-trip
//! fidelity is enforced by unit and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod hexdump;
pub mod ipv4;
pub mod ipv6;
pub mod mac;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use checksum::{incremental_update16, internet_checksum, Checksum};
pub use ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
pub use flow::{FiveTuple, FiveTupleV6, FlowKey, FlowKeyV6, Protocol};
pub use ipv4::{Ipv4Header, IPV4_HEADER_LEN};
pub use ipv6::{Ipv6Header, IPV6_HEADER_LEN};
pub use mac::MacAddr;
pub use packet::{Packet, PacketBuilder, PacketMeta};
pub use tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is shorter than the fixed header requires.
    Truncated {
        /// Bytes required by the header being parsed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length field is inconsistent with the buffer.
    BadLength,
    /// A version field does not match the expected protocol version.
    BadVersion(u8),
    /// The header checksum failed verification.
    BadChecksum,
    /// The header contains an option or feature this implementation
    /// does not support (e.g. IPv4 options beyond 40 bytes).
    Unsupported,
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::Truncated { needed, available } => {
                write!(f, "truncated: need {needed} bytes, have {available}")
            }
            NetError::BadLength => write!(f, "inconsistent length field"),
            NetError::BadVersion(v) => write!(f, "unexpected version {v}"),
            NetError::BadChecksum => write!(f, "checksum verification failed"),
            NetError::Unsupported => write!(f, "unsupported header feature"),
        }
    }
}

impl std::error::Error for NetError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, NetError>;

/// Read a big-endian `u16` at `offset`; caller must have bounds-checked.
#[inline]
pub(crate) fn be16(buf: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([buf[offset], buf[offset + 1]])
}

/// Read a big-endian `u32` at `offset`; caller must have bounds-checked.
#[inline]
pub(crate) fn be32(buf: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([
        buf[offset],
        buf[offset + 1],
        buf[offset + 2],
        buf[offset + 3],
    ])
}

/// Write a big-endian `u16` at `offset`.
#[inline]
pub(crate) fn put16(buf: &mut [u8], offset: usize, value: u16) {
    buf[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

/// Write a big-endian `u32` at `offset`.
#[inline]
pub(crate) fn put32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}

/// Ensure `buf` has at least `needed` bytes, or return [`NetError::Truncated`].
#[inline]
pub(crate) fn check_len(buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(NetError::Truncated {
            needed,
            available: buf.len(),
        })
    } else {
        Ok(())
    }
}
