//! Ethernet II framing.

use crate::mac::MacAddr;
use crate::{be16, check_len, put16, NetError, Result};
use serde::{Deserialize, Serialize};

/// Length of an Ethernet II header (no 802.1Q tag).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType values this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IPv6 (0x86dd).
    Ipv6,
    /// ARP (0x0806) — recognized so middleboxes can pass it through.
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The on-wire 16-bit value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decode from the on-wire value.
    pub fn from_u16(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x86dd => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Parse a header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        check_len(buf, ETHERNET_HEADER_LEN)?;
        let ethertype = be16(buf, 12);
        if ethertype < 0x0600 {
            // 802.3 length field rather than an EtherType; the paper's
            // middlebox only sees Ethernet II traffic.
            return Err(NetError::Unsupported);
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(ethertype),
        })
    }

    /// Serialize into the first [`ETHERNET_HEADER_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        check_len(buf, ETHERNET_HEADER_LEN)?;
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        put16(buf, 12, self.ethertype.to_u16());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetHeader {
        EthernetHeader {
            dst: MacAddr::new(0x02, 0x00, 0x00, 0x00, 0x00, 0x01),
            src: MacAddr::new(0x02, 0x00, 0x00, 0x00, 0x00, 0x02),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn round_trip() {
        let hdr = sample();
        let mut buf = [0u8; ETHERNET_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert!(matches!(
            EthernetHeader::parse(&[0u8; 13]),
            Err(NetError::Truncated {
                needed: 14,
                available: 13
            })
        ));
    }

    #[test]
    fn parse_rejects_8023_length_field() {
        let mut buf = [0u8; ETHERNET_HEADER_LEN];
        sample().emit(&mut buf).unwrap();
        buf[12] = 0x00;
        buf[13] = 0x40; // length 64 < 0x600
        assert_eq!(EthernetHeader::parse(&buf), Err(NetError::Unsupported));
    }

    #[test]
    fn ethertype_codes_round_trip() {
        for et in [
            EtherType::Ipv4,
            EtherType::Ipv6,
            EtherType::Arp,
            EtherType::Other(0x88cc),
        ] {
            assert_eq!(EtherType::from_u16(et.to_u16()), et);
        }
    }
}
