//! The Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! Sprayer's NIC trick sprays packets by the low bits of the *TCP checksum*
//! field, so the checksum computed here is what ultimately decides which
//! core a simulated packet lands on. The NAT network function uses the
//! incremental form to rewrite addresses/ports without re-summing payloads.

/// Streaming one's-complement sum accumulator.
///
/// Feed it byte slices (and 16-bit words) in any order — the Internet
/// checksum is commutative over 16-bit words — then call
/// [`Checksum::finish`] to fold and complement.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u64,
    /// A pending odd byte from a previous `add_bytes` call, if any.
    ///
    /// RFC 1071 treats the data as a sequence of 16-bit big-endian words;
    /// when slices arrive with odd lengths we must pair the trailing byte
    /// with the first byte of the next slice.
    pending: Option<u8>,
}

impl Checksum {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a big-endian 16-bit word.
    #[inline]
    pub fn add_u16(&mut self, word: u16) {
        debug_assert!(self.pending.is_none(), "add_u16 after an odd-length slice");
        self.sum += u64::from(word);
    }

    /// Add a 32-bit value as two 16-bit words (for pseudo-header addresses).
    #[inline]
    pub fn add_u32(&mut self, value: u32) {
        self.add_u16((value >> 16) as u16);
        self.add_u16((value & 0xffff) as u16);
    }

    /// Add a byte slice, pairing bytes into big-endian 16-bit words across
    /// call boundaries.
    pub fn add_bytes(&mut self, mut bytes: &[u8]) {
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = bytes.split_first() {
                self.sum += u64::from(u16::from_be_bytes([hi, lo]));
                bytes = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        // Wide inner loop: eight bytes per iteration (RFC 1071 §2(B),
        // "parallel summation"). Because 2^16 ≡ 1 (mod 0xffff), the fold
        // in `finish` makes a 2^16-weighted word contribute exactly like
        // an unweighted one, so the two 32-bit halves of each big-endian
        // u64 load can be added straight into the accumulator. Each
        // iteration adds < 2^33, so a u64 accumulator is overflow-safe
        // for any packet-sized input.
        let mut wide = bytes.chunks_exact(8);
        for chunk in &mut wide {
            let v = u64::from_be_bytes(chunk.try_into().unwrap());
            self.sum += (v >> 32) + (v & 0xffff_ffff);
        }
        bytes = wide.remainder();
        // Byte-pair tail: this loop alone is the reference semantics the
        // wide loop must match (pinned by the equivalence tests).
        let mut chunks = bytes.chunks_exact(2);
        for pair in &mut chunks {
            self.sum += u64::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Fold the accumulator and return the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            // Trailing odd byte is padded with a zero byte (RFC 1071).
            self.sum += u64::from(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot Internet checksum over a byte slice.
pub fn internet_checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish()
}

/// Verify a region whose checksum field is already filled in: the folded
/// sum over the whole region must be zero.
pub fn verify(bytes: &[u8]) -> bool {
    internet_checksum(bytes) == 0
}

/// RFC 1624 incremental checksum update for a 16-bit field change.
///
/// Given the old checksum value and one 16-bit word changing from `old`
/// to `new`, returns the new checksum. This is how real NATs (and ours,
/// in `sprayer-nf`) rewrite ports and addresses in O(1).
///
/// Uses the `~(~HC + ~m + m')` formulation (RFC 1624 eqn. 3), which is
/// correct in all cases including the `0xffff` corner that broke RFC 1071's
/// eqn. 4.
pub fn incremental_update16(checksum: u16, old: u16, new: u16) -> u16 {
    let mut sum = u64::from(!checksum) + u64::from(!old) + u64::from(new);
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Incremental update for a 32-bit field (e.g. an IPv4 address): applies
/// [`incremental_update16`] to both halves.
pub fn incremental_update32(checksum: u16, old: u32, new: u32) -> u16 {
    let c = incremental_update16(checksum, (old >> 16) as u16, (new >> 16) as u16);
    incremental_update16(c, (old & 0xffff) as u16, (new & 0xffff) as u16)
}

/// The pseudo-header sum for IPv4 TCP/UDP checksums.
///
/// `proto` is the IP protocol number, `len` the transport segment length
/// (header + payload).
pub fn pseudo_header_v4(src: u32, dst: u32, proto: u8, len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_u32(src);
    c.add_u32(dst);
    c.add_u16(u16::from(proto));
    c.add_u16(len);
    c
}

/// The pseudo-header sum for IPv6 TCP/UDP checksums.
pub fn pseudo_header_v6(src: &[u8; 16], dst: &[u8; 16], proto: u8, len: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(src);
    c.add_bytes(dst);
    c.add_u32(len);
    c.add_u32(u32::from(proto));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_worked_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // RFC 1071 gives the folded (uncomplemented) sum 0xddf2.
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_slice_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn split_slices_equal_contiguous() {
        let data: Vec<u8> = (0u8..=255).collect();
        let whole = internet_checksum(&data);
        for split in [1usize, 3, 7, 100, 255] {
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn odd_odd_slices_pair_across_boundary() {
        // Two odd-length slices must behave like their concatenation, not
        // like two zero-padded fragments.
        let a = [0x12u8, 0x34, 0x56];
        let b = [0x78u8];
        let mut c = Checksum::new();
        c.add_bytes(&a);
        c.add_bytes(&b);
        assert_eq!(c.finish(), internet_checksum(&[0x12, 0x34, 0x56, 0x78]));
    }

    /// The byte-pair semantics the wide loop must reproduce.
    fn bytepair_reference(bytes: &[u8]) -> u16 {
        let mut sum = 0u64;
        for pair in bytes.chunks(2) {
            let word = if pair.len() == 2 {
                u16::from_be_bytes([pair[0], pair[1]])
            } else {
                u16::from_be_bytes([pair[0], 0])
            };
            sum += u64::from(word);
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    #[test]
    fn wide_loop_matches_bytepair_reference_at_every_length() {
        // Lengths 0..=67 cover: empty, tail-only, one and several wide
        // chunks, and every remainder size, with bytes that exercise the
        // carry paths (0xff runs force folds).
        let data: Vec<u8> = (0..67u32)
            .map(|i| {
                if i % 7 == 0 {
                    0xff
                } else {
                    (i.wrapping_mul(0x9e37) >> 5) as u8
                }
            })
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                internet_checksum(&data[..len]),
                bytepair_reference(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn wide_loop_is_carry_safe_on_all_ones() {
        // 0xff everywhere maximizes intermediate sums; the folded result
        // of all-ones data is 0xffff, so the checksum is 0x0000.
        assert_eq!(internet_checksum(&[0xff; 64]), 0x0000);
        assert_eq!(
            internet_checksum(&[0xff; 64]),
            bytepair_reference(&[0xff; 64])
        );
    }

    #[test]
    fn odd_start_then_wide_run_pairs_correctly() {
        // A pending odd byte followed by a slice long enough to take the
        // wide path: pairing must happen across the boundary, shifting
        // word alignment for the whole second slice.
        let data: Vec<u8> = (0u8..33).map(|i| i.wrapping_mul(41)).collect();
        let mut c = Checksum::new();
        c.add_bytes(&data[..1]);
        c.add_bytes(&data[1..]);
        assert_eq!(c.finish(), bytepair_reference(&data));
    }

    #[test]
    fn verify_detects_single_bit_corruption() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6, 0, 0];
        let sum = internet_checksum(&data);
        data[6..8].copy_from_slice(&sum.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x40;
        assert!(!verify(&data));
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![0u8; 20];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        // Checksum field at offset 10 (like IPv4).
        data[10] = 0;
        data[11] = 0;
        let sum = internet_checksum(&data);
        data[10..12].copy_from_slice(&sum.to_be_bytes());

        // Change the word at offset 4.
        let old = u16::from_be_bytes([data[4], data[5]]);
        let new: u16 = 0xbeef;
        data[4..6].copy_from_slice(&new.to_be_bytes());
        let updated = incremental_update16(sum, old, new);

        data[10] = 0;
        data[11] = 0;
        assert_eq!(updated, internet_checksum(&data));
    }

    #[test]
    fn incremental_update_rfc1624_corner_case() {
        // RFC 1624 §4: header checksum 0xdd2f, word changes 0x5555 ->
        // 0x3285; the correct new checksum is 0x0000 (not 0xffff).
        assert_eq!(incremental_update16(0xdd2f, 0x5555, 0x3285), 0x0000);
    }

    #[test]
    fn incremental_update32_matches_two_16bit_updates() {
        let c0 = 0x1234u16;
        let by32 = incremental_update32(c0, 0xc0a8_0001, 0x0a00_0001);
        let by16 = incremental_update16(incremental_update16(c0, 0xc0a8, 0x0a00), 0x0001, 0x0001);
        assert_eq!(by32, by16);
    }
}
