//! TCP header parsing and emission.
//!
//! The checksum field here is load-bearing for the whole reproduction:
//! Sprayer configures Flow Director to direct packets to queues using the
//! low bits of this field (§4 of the paper), so the simulated NIC reads
//! the very bytes emitted by [`TcpHeader::emit`].

use crate::checksum::Checksum;
use crate::{be16, be32, check_len, put16, put32, NetError, Result};
use serde::{Deserialize, Serialize};

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// The empty flag set.
    pub const NONE: TcpFlags = TcpFlags(0);

    /// True if every bit in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit in `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether this packet can modify TCP connection state.
    ///
    /// This is the paper's *connection packet* predicate (§3.2): packets
    /// flagged SYN, FIN, or RST; everything else is a *regular packet*.
    pub fn is_connection_packet(self) -> bool {
        self.intersects(TcpFlags(Self::SYN.0 | Self::FIN.0 | Self::RST.0))
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl core::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let names = [
            (Self::SYN, "SYN"),
            (Self::ACK, "ACK"),
            (Self::FIN, "FIN"),
            (Self::RST, "RST"),
            (Self::PSH, "PSH"),
            (Self::URG, "URG"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A parsed TCP header (options preserved as raw bytes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum as found on the wire (recomputed by [`TcpHeader::emit`]).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw option bytes (multiple of 4, at most 40).
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// A header with common defaults for the given endpoints.
    pub fn simple(src_port: u16, dst_port: u16, seq: u32, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags,
            window: 0xffff,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Header length in bytes including options.
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN + self.options.len()
    }

    /// Parse from the start of `buf`. Checksum is *recorded*, not verified
    /// (verification needs the IP pseudo-header; see [`TcpHeader::verify_checksum`]).
    pub fn parse(buf: &[u8]) -> Result<Self> {
        check_len(buf, TCP_HEADER_LEN)?;
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if !(TCP_HEADER_LEN..=60).contains(&data_offset) {
            return Err(NetError::BadLength);
        }
        check_len(buf, data_offset)?;
        Ok(TcpHeader {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            seq: be32(buf, 4),
            ack: be32(buf, 8),
            flags: TcpFlags(buf[13] & 0x3f),
            window: be16(buf, 14),
            checksum: be16(buf, 16),
            urgent: be16(buf, 18),
            options: buf[TCP_HEADER_LEN..data_offset].to_vec(),
        })
    }

    /// Serialize into `buf` followed by `payload` coverage for the
    /// checksum. `pseudo` must be the IP pseudo-header seed covering
    /// header + payload length.
    ///
    /// Only the header bytes are written (the caller places the payload);
    /// returns the header length.
    pub fn emit(&self, buf: &mut [u8], pseudo: Checksum, payload: &[u8]) -> Result<usize> {
        let hlen = self.header_len();
        if hlen > 60 || !self.options.len().is_multiple_of(4) {
            return Err(NetError::Unsupported);
        }
        check_len(buf, hlen)?;
        put16(buf, 0, self.src_port);
        put16(buf, 2, self.dst_port);
        put32(buf, 4, self.seq);
        put32(buf, 8, self.ack);
        buf[12] = ((hlen / 4) as u8) << 4;
        buf[13] = self.flags.0;
        put16(buf, 14, self.window);
        put16(buf, 16, 0);
        put16(buf, 18, self.urgent);
        buf[TCP_HEADER_LEN..hlen].copy_from_slice(&self.options);
        let mut sum = pseudo;
        sum.add_bytes(&buf[..hlen]);
        sum.add_bytes(payload);
        // TCP transmits a computed 0 verbatim (the 0 -> 0xffff remap is a
        // UDP rule); this keeps the field's distribution uniform, which the
        // spraying trick relies on.
        put16(buf, 16, sum.finish());
        Ok(hlen)
    }

    /// Verify the checksum over `segment` (header + payload bytes as they
    /// appear on the wire) against the pseudo-header seed.
    pub fn verify_checksum(pseudo: Checksum, segment: &[u8]) -> bool {
        let mut sum = pseudo;
        sum.add_bytes(segment);
        sum.finish() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::pseudo_header_v4;
    use crate::ipv4::proto;

    fn pseudo(len: u16) -> Checksum {
        pseudo_header_v4(0xc0a8_0001, 0x0a00_002a, proto::TCP, len)
    }

    #[test]
    fn round_trip_and_checksum_verifies() {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 51234,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 29200,
            checksum: 0,
            urgent: 0,
            options: vec![0x02, 0x04, 0x05, 0xb4], // MSS 1460
        };
        let payload = b"hello sprayer";
        let seg_len = (hdr.header_len() + payload.len()) as u16;
        let mut buf = vec![0u8; 128];
        let hlen = hdr.emit(&mut buf, pseudo(seg_len), payload).unwrap();
        assert_eq!(hlen, 24);
        buf.truncate(hlen);
        buf.extend_from_slice(payload);

        let parsed = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.src_port, hdr.src_port);
        assert_eq!(parsed.dst_port, hdr.dst_port);
        assert_eq!(parsed.seq, hdr.seq);
        assert_eq!(parsed.ack, hdr.ack);
        assert_eq!(parsed.flags, hdr.flags);
        assert_eq!(parsed.options, hdr.options);
        assert!(TcpHeader::verify_checksum(pseudo(seg_len), &buf));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let hdr = TcpHeader::simple(1, 2, 3, TcpFlags::ACK);
        let payload = b"payload bytes";
        let seg_len = (hdr.header_len() + payload.len()) as u16;
        let mut buf = vec![0u8; 64];
        let hlen = hdr.emit(&mut buf, pseudo(seg_len), payload).unwrap();
        buf.truncate(hlen);
        buf.extend_from_slice(payload);
        buf[hlen] ^= 0x01;
        assert!(!TcpHeader::verify_checksum(pseudo(seg_len), &buf));
    }

    #[test]
    fn connection_packet_predicate_matches_paper() {
        assert!(TcpFlags::SYN.is_connection_packet());
        assert!(TcpFlags::FIN.is_connection_packet());
        assert!(TcpFlags::RST.is_connection_packet());
        assert!((TcpFlags::SYN | TcpFlags::ACK).is_connection_packet());
        assert!((TcpFlags::FIN | TcpFlags::ACK).is_connection_packet());
        assert!(!TcpFlags::ACK.is_connection_packet());
        assert!(!(TcpFlags::ACK | TcpFlags::PSH).is_connection_packet());
        assert!(!TcpFlags::NONE.is_connection_packet());
    }

    #[test]
    fn parse_rejects_bad_data_offset() {
        let mut buf = [0u8; TCP_HEADER_LEN];
        buf[12] = 0x40; // offset 4 words = 16 bytes < 20
        assert_eq!(TcpHeader::parse(&buf), Err(NetError::BadLength));
    }

    #[test]
    fn flags_display_is_readable() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::NONE.to_string(), "-");
    }

    #[test]
    fn payload_changes_checksum_field() {
        // Different payload content must yield a different checksum — the
        // property the spraying trick depends on.
        let hdr = TcpHeader::simple(1000, 2000, 7, TcpFlags::ACK);
        let seg_len = (hdr.header_len() + 4) as u16;
        let mut b1 = vec![0u8; 32];
        let mut b2 = vec![0u8; 32];
        hdr.emit(&mut b1, pseudo(seg_len), &[1, 2, 3, 4]).unwrap();
        hdr.emit(&mut b2, pseudo(seg_len), &[1, 2, 3, 5]).unwrap();
        assert_ne!(be16(&b1, 16), be16(&b2, 16));
    }
}
