//! Streaming heavy-tailed flow churn for long-horizon soaks.
//!
//! [`SyntheticTrace`](crate::trace::SyntheticTrace) materializes every
//! flow record and packet event up front — fine for the §2 analysis
//! over a 30 s capture, hopeless for a soak that offers hours of churn:
//! the event `Vec` alone would dwarf the dataplane under test. This
//! module is the bounded-memory alternative: [`ChurnGen`] is an
//! `Iterator<Item = (Time, Packet)>` holding only the *active* flow set
//! (a fixed-capacity slot arena plus a binary heap of next-packet
//! times), so memory is `O(max_active_flows)` no matter how long the
//! horizon runs.
//!
//! Each flow is a complete TCP lifecycle the flow table under test can
//! track end to end: a SYN at spawn, data segments at the flow's pace,
//! and a final FIN — so FIN-driven reclaim sees well-formed teardowns,
//! while flows truncated by the horizon simply stop mid-stream and
//! exercise idle aging instead. Flow sizes are the usual elephants-and-
//! mice mixture (log-normal mice, a bounded-Pareto elephant minority),
//! scaled to packet counts a packet-granular simulation can afford.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::trace::TraceConfig;
use serde::{Deserialize, Serialize};
use sprayer_net::{FiveTuple, Packet, PacketBuilder, TcpFlags};
use sprayer_sim::{SimRng, Time};

/// Parameters for a streaming churn source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Churn horizon: no flow spawns at or after this instant, and the
    /// stream ends once every packet before it has been emitted.
    pub horizon: Time,
    /// Flow arrivals per second (Poisson).
    pub flows_per_sec: f64,
    /// Median *data* segments in a mouse flow (log-normal).
    pub mouse_pkts_median: f64,
    /// Log-normal sigma of mouse sizes (natural-log units).
    pub mouse_sigma: f64,
    /// Fraction of spawns that are elephants.
    pub elephant_fraction: f64,
    /// Minimum elephant data segments (Pareto scale).
    pub elephant_pkts_min: f64,
    /// Pareto shape for elephant sizes.
    pub elephant_alpha: f64,
    /// Elephant size cap in data segments.
    pub elephant_pkts_cap: f64,
    /// Median inter-segment gap within one flow (log-normal, sigma 0.5).
    pub median_gap: Time,
    /// Hard bound on concurrently active flows — the memory bound.
    /// Arrivals while the arena is full are suppressed (counted, not
    /// queued: queuing them would be the unbounded buffer this type
    /// exists to avoid).
    pub max_active_flows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// A soak-calibrated default: the same elephants-and-mice *shape*
    /// as [`TraceConfig::mawi_like`] with sizes rescaled from bytes to
    /// simulable packet counts, and enough arrival rate that the active
    /// set turns over hundreds of times across the horizon.
    pub fn soak(horizon: Time, seed: u64) -> Self {
        ChurnConfig {
            horizon,
            flows_per_sec: 2_000.0,
            mouse_pkts_median: 6.0,
            mouse_sigma: 1.2,
            elephant_fraction: 0.01,
            elephant_pkts_min: 200.0,
            elephant_alpha: 1.2,
            elephant_pkts_cap: 5_000.0,
            median_gap: Time::from_us(40),
            max_active_flows: 512,
            seed,
        }
    }

    /// Borrow the mixture calibration of a materializing [`TraceConfig`]
    /// (shape parameters only — sizes stay in packets).
    pub fn with_tail_shape(mut self, trace: &TraceConfig) -> Self {
        self.mouse_sigma = trace.mouse_sigma;
        self.elephant_alpha = trace.elephant_alpha;
        self
    }
}

/// One live flow in the arena.
#[derive(Debug, Clone, Copy)]
struct ActiveFlow {
    tuple: FiveTuple,
    /// Unique spawn index — payload entropy and heap tie-break.
    id: u64,
    /// Data segments still to send (the FIN follows the last one).
    remaining: u64,
    /// Next sequence number (SYN consumed 0).
    seq: u32,
    /// Inter-segment gap.
    gap: Time,
}

/// Heap entry: next event time, spawn id (deterministic tie-break),
/// arena slot.
type Pending = Reverse<(Time, u64, usize)>;

/// A bounded-memory streaming packet source: heavy-tailed TCP flow
/// churn as an iterator of `(arrival, packet)` in time order.
pub struct ChurnGen {
    config: ChurnConfig,
    rng: SimRng,
    slots: Vec<Option<ActiveFlow>>,
    free: Vec<usize>,
    heap: BinaryHeap<Pending>,
    /// Next Poisson arrival, `None` once past the horizon.
    next_arrival: Option<Time>,
    builder: PacketBuilder,
    spawned: u64,
    completed: u64,
    suppressed: u64,
}

fn lognormal(rng: &mut SimRng, median: f64, sigma: f64) -> f64 {
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

fn pareto(rng: &mut SimRng, xm: f64, alpha: f64, cap: f64) -> f64 {
    let u = 1.0 - rng.next_f64();
    (xm / u.powf(1.0 / alpha)).min(cap)
}

impl ChurnGen {
    /// A churn stream over `config`.
    pub fn new(config: ChurnConfig) -> Self {
        assert!(config.max_active_flows >= 1, "need at least one flow slot");
        assert!(config.flows_per_sec > 0.0, "need a positive arrival rate");
        let mut rng = SimRng::seed_from(config.seed);
        let first = Self::arrival_after(&mut rng, Time::ZERO, &config);
        let slots = (0..config.max_active_flows).map(|_| None).collect();
        let free = (0..config.max_active_flows).rev().collect();
        ChurnGen {
            config,
            rng,
            slots,
            free,
            heap: BinaryHeap::new(),
            next_arrival: first,
            builder: PacketBuilder::new(),
            spawned: 0,
            completed: 0,
            suppressed: 0,
        }
    }

    fn arrival_after(rng: &mut SimRng, t: Time, config: &ChurnConfig) -> Option<Time> {
        let dt = rng.exponential(1.0 / config.flows_per_sec);
        let next = t + Time::from_ps((dt * 1e12) as u64);
        (next < config.horizon).then_some(next)
    }

    /// Flows spawned so far.
    pub fn spawned(&self) -> u64 {
        self.spawned
    }

    /// Flows that sent their FIN.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Arrivals suppressed because the active set was full.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Currently active flows (the memory bound in action).
    pub fn active(&self) -> usize {
        self.config.max_active_flows - self.free.len()
    }

    /// Distinct five-tuple for spawn `id` — injective over any window
    /// narrower than 2^16 concurrent ports per source address, far
    /// beyond `max_active_flows`.
    fn tuple_for(id: u64) -> FiveTuple {
        let sport = 1_024 + (id % 60_000) as u16;
        let host = (id / 60_000) as u32;
        FiveTuple::tcp(0x0a10_0000 + host, sport, 0xc0a8_0001, 443)
    }

    /// Admit the arrival at `at`: claim a slot, schedule its SYN.
    fn spawn_flow(&mut self, at: Time) {
        let Some(slot) = self.free.pop() else {
            self.suppressed += 1;
            return;
        };
        let c = &self.config;
        let data_pkts = if self.rng.next_f64() < c.elephant_fraction {
            pareto(
                &mut self.rng,
                c.elephant_pkts_min,
                c.elephant_alpha,
                c.elephant_pkts_cap,
            )
        } else {
            lognormal(&mut self.rng, c.mouse_pkts_median, c.mouse_sigma)
        }
        .max(1.0) as u64;
        let gap = lognormal(&mut self.rng, self.config.median_gap.as_ps() as f64, 0.5);
        let id = self.spawned;
        self.spawned += 1;
        self.slots[slot] = Some(ActiveFlow {
            tuple: Self::tuple_for(id),
            id,
            remaining: data_pkts,
            seq: 0,
            gap: Time::from_ps((gap.max(1.0)) as u64),
        });
        self.heap.push(Reverse((at, id, slot)));
    }

    /// Emit the due packet for `slot` and reschedule or retire the flow.
    fn emit(&mut self, at: Time, slot: usize) -> (Time, Packet) {
        let flow = self.slots[slot].as_mut().expect("heap points at live slot");
        let payload = sprayer_net::flow::splitmix64(flow.id ^ u64::from(flow.seq)).to_be_bytes();
        let pkt = if flow.seq == 0 {
            self.builder.tcp(flow.tuple, 0, 0, TcpFlags::SYN, b"")
        } else if flow.remaining == 0 {
            self.builder
                .tcp(flow.tuple, flow.seq, 1, TcpFlags::FIN | TcpFlags::ACK, b"")
        } else {
            self.builder
                .tcp(flow.tuple, flow.seq, 1, TcpFlags::ACK, &payload)
        };
        let done = flow.seq > 0 && flow.remaining == 0;
        if done {
            self.slots[slot] = None;
            self.free.push(slot);
            self.completed += 1;
        } else {
            if flow.seq > 0 {
                flow.remaining -= 1;
            }
            flow.seq += 1;
            let next = at + flow.gap;
            let id = flow.id;
            // Flows keep draining past the horizon so every admitted
            // flow that has time to finish tears down cleanly; only
            // *spawns* stop at the horizon.
            self.heap.push(Reverse((next, id, slot)));
        }
        (at, pkt)
    }
}

impl Iterator for ChurnGen {
    type Item = (Time, Packet);

    fn next(&mut self) -> Option<(Time, Packet)> {
        loop {
            // Admit every arrival due before the next flow packet, so
            // the merged stream stays time-sorted.
            let next_pkt = self.heap.peek().map(|Reverse((t, _, _))| *t);
            match (self.next_arrival, next_pkt) {
                (Some(arr), pkt) if pkt.is_none_or(|p| arr <= p) => {
                    self.next_arrival = Self::arrival_after(&mut self.rng, arr, &self.config);
                    self.spawn_flow(arr);
                    // A suppressed spawn emits nothing; loop for the
                    // next event either way.
                    continue;
                }
                (_, Some(_)) => {
                    let Reverse((t, _, slot)) = self.heap.pop().expect("peeked");
                    return Some(self.emit(t, slot));
                }
                // An arrival with no queued packet always took the
                // first arm, so no next_pkt here means no arrival left.
                (_, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> ChurnConfig {
        let mut c = ChurnConfig::soak(Time::from_ms(100), seed);
        c.flows_per_sec = 20_000.0;
        c.max_active_flows = 64;
        c
    }

    #[test]
    fn stream_is_time_sorted_and_bounded_memory() {
        let mut gen = ChurnGen::new(quick_config(1));
        let mut last = Time::ZERO;
        let mut n = 0u64;
        let mut peak_active = 0;
        while let Some((t, _)) = gen.next() {
            assert!(t >= last, "stream must be time-sorted");
            last = t;
            n += 1;
            peak_active = peak_active.max(gen.active());
            assert!(gen.active() <= 64, "active set must stay bounded");
        }
        assert!(n > 1_000, "a 100 ms churn at 20k flows/s is busy, got {n}");
        assert!(
            gen.spawned() + gen.suppressed() > 64,
            "arrivals must overflow the arena at this rate"
        );
        assert!(peak_active > 8, "the arena should actually fill");
    }

    #[test]
    fn flows_are_complete_tcp_lifecycles() {
        let mut gen = ChurnGen::new(quick_config(2));
        let mut syns = 0u64;
        let mut fins = 0u64;
        for (_, pkt) in gen.by_ref() {
            let flags = pkt.meta().tcp_flags.expect("all packets are TCP");
            if flags.contains(TcpFlags::SYN) {
                syns += 1;
            }
            if flags.contains(TcpFlags::FIN) {
                fins += 1;
            }
        }
        assert_eq!(syns, gen.spawned(), "every admitted flow opens with SYN");
        assert_eq!(fins, gen.completed(), "every finished flow closes with FIN");
        assert!(
            gen.completed() >= gen.spawned() / 2,
            "most flows should finish: {} of {}",
            gen.completed(),
            gen.spawned()
        );
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let sig = |seed: u64| -> Vec<(Time, u16)> {
            ChurnGen::new(quick_config(seed))
                .map(|(t, p)| (t, p.meta().tcp_checksum.expect("tcp")))
                .collect()
        };
        let a = sig(7);
        let b = sig(7);
        assert_eq!(a, b);
        let c = sig(8);
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        // Spawn sizes straight from the samplers: with a 1 % elephant
        // share the max should dwarf the median.
        let mut c = quick_config(3);
        c.horizon = Time::from_ms(400);
        c.elephant_fraction = 0.05;
        let mut gen = ChurnGen::new(c);
        let mut per_flow: std::collections::HashMap<FiveTuple, u64> =
            std::collections::HashMap::new();
        for (_, pkt) in gen.by_ref() {
            *per_flow.entry(pkt.tuple().expect("tcp")).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = per_flow.into_values().collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let max = *sizes.last().unwrap();
        assert!(
            max >= median * 10,
            "elephants should dwarf mice: median {median}, max {max}"
        );
    }

    #[test]
    fn concurrent_flows_never_share_a_tuple() {
        let gen = ChurnGen::new(quick_config(4));
        let mut open: std::collections::HashSet<FiveTuple> = std::collections::HashSet::new();
        for (_, pkt) in gen {
            let flags = pkt.meta().tcp_flags.expect("tcp");
            let tuple = pkt.tuple().expect("tcp");
            if flags.contains(TcpFlags::SYN) {
                assert!(open.insert(tuple), "tuple reused while active: {tuple:?}");
            } else if flags.contains(TcpFlags::FIN) {
                open.remove(&tuple);
            }
        }
    }
}
