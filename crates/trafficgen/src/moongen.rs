//! A MoonGen-like packet-rate source.
//!
//! Generates 64-byte TCP frames at a configured rate, with random payload
//! bytes in every packet so the TCP checksum field — the value Sprayer's
//! NIC trick sprays on — is uniformly distributed, exactly as the paper
//! arranges with MoonGen (§5). Flow endpoints are drawn randomly per
//! generator instance ("Sources and destinations change randomly at every
//! execution").

use sprayer_net::{FiveTuple, Packet, PacketBuilder, TcpFlags};
use sprayer_sim::{SimRng, Time};

/// Arrival process of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrivals {
    /// Back-to-back at the configured rate (line-rate style).
    Constant,
    /// Poisson with the configured mean rate (for latency-vs-load runs).
    Poisson,
}

/// The packet generator.
#[derive(Debug)]
pub struct MoonGen {
    flows: Vec<FiveTuple>,
    rate_pps: f64,
    arrivals: Arrivals,
    payload_len: usize,
    rng: SimRng,
    next_time: Time,
    builder: PacketBuilder,
    emitted: u64,
    /// Sequence counter per flow (keeps headers plausible).
    seqs: Vec<u32>,
}

impl MoonGen {
    /// A generator over `num_flows` random flows at `rate_pps`.
    ///
    /// `payload_len = 10` yields the paper's 64-byte frames
    /// (14 Ethernet + 20 IP + 20 TCP + 10 payload = 64; our buffers
    /// exclude the 4-byte FCS, so the wire frame is 64 + FCS).
    pub fn new(num_flows: usize, rate_pps: f64, arrivals: Arrivals, seed: u64) -> Self {
        assert!(num_flows >= 1);
        assert!(rate_pps > 0.0);
        let mut rng = SimRng::seed_from(seed);
        let flows = (0..num_flows)
            .map(|_| {
                FiveTuple::tcp(
                    rng.next_u32() | 0x0100_0000, // avoid 0.x addresses
                    (rng.next_u32() % 64_511 + 1_024) as u16,
                    rng.next_u32() | 0x0100_0000,
                    (rng.next_u32() % 64_511 + 1_024) as u16,
                )
            })
            .collect();
        MoonGen {
            flows,
            rate_pps,
            arrivals,
            payload_len: 10,
            rng,
            next_time: Time::ZERO,
            builder: PacketBuilder::new(),
            emitted: 0,
            seqs: vec![0; num_flows],
        }
    }

    /// The flows this generator produces.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }

    /// Override the payload length (frame = 54 + payload bytes).
    pub fn with_payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Produce the next (arrival time, packet) pair.
    pub fn next_packet(&mut self) -> (Time, Packet) {
        let gap_ps = 1e12 / self.rate_pps;
        let at = self.next_time;
        self.next_time = match self.arrivals {
            Arrivals::Constant => at + Time::from_ps(gap_ps as u64),
            Arrivals::Poisson => at + Time::from_ps(self.rng.exponential(gap_ps) as u64),
        };

        // Uniformly random flow choice; random payload content.
        let idx = self.rng.below(self.flows.len() as u64) as usize;
        let mut payload = vec![0u8; self.payload_len];
        for b in &mut payload {
            *b = (self.rng.next_u32() & 0xff) as u8;
        }
        let seq = self.seqs[idx];
        self.seqs[idx] = seq.wrapping_add(self.payload_len as u32);
        let pkt = self
            .builder
            .tcp(self.flows[idx], seq, 0, TcpFlags::ACK, &payload);
        self.emitted += 1;
        (at, pkt)
    }

    /// Generate all packets arriving before `horizon`.
    pub fn take_until(&mut self, horizon: Time) -> Vec<(Time, Packet)> {
        let mut out = Vec::new();
        while self.next_time < horizon {
            out.push(self.next_packet());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_spacing_is_exact() {
        let mut gen = MoonGen::new(1, 1.0e6, Arrivals::Constant, 1);
        let (t0, _) = gen.next_packet();
        let (t1, _) = gen.next_packet();
        let (t2, _) = gen.next_packet();
        assert_eq!(t0, Time::ZERO);
        assert_eq!(t1 - t0, Time::from_us(1));
        assert_eq!(t2 - t1, Time::from_us(1));
    }

    #[test]
    fn frames_are_64_bytes_equivalent() {
        let mut gen = MoonGen::new(1, 1.0e6, Arrivals::Constant, 2);
        let (_, pkt) = gen.next_packet();
        // 60-byte minimum frame carries 54 header + 10 payload = 64 > 60.
        assert_eq!(pkt.len(), 64);
        assert_eq!(pkt.payload().unwrap().len(), 10);
    }

    #[test]
    fn checksums_are_spread_over_low_bits() {
        let mut gen = MoonGen::new(1, 1.0e6, Arrivals::Constant, 3);
        let mut buckets = [0u32; 8];
        let n = 8_000;
        for _ in 0..n {
            let (_, pkt) = gen.next_packet();
            buckets[usize::from(pkt.meta().tcp_checksum.unwrap() & 7)] += 1;
        }
        let expected = f64::from(n) / 8.0;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.15, "bucket {i}: {c} (dev {dev:.3})");
        }
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let mut gen = MoonGen::new(4, 1.0e6, Arrivals::Poisson, 4);
        let pkts = gen.take_until(Time::from_ms(100));
        let rate = pkts.len() as f64 / 0.1;
        assert!((rate / 1.0e6 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn flows_differ_between_seeds_but_not_within() {
        let a = MoonGen::new(8, 1.0, Arrivals::Constant, 10);
        let b = MoonGen::new(8, 1.0, Arrivals::Constant, 10);
        let c = MoonGen::new(8, 1.0, Arrivals::Constant, 11);
        assert_eq!(a.flows(), b.flows());
        assert_ne!(a.flows(), c.flows());
    }

    #[test]
    fn all_flows_are_exercised() {
        let mut gen = MoonGen::new(16, 1.0e6, Arrivals::Constant, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let (_, pkt) = gen.next_packet();
            seen.insert(pkt.tuple().unwrap());
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn take_until_respects_horizon() {
        let mut gen = MoonGen::new(1, 1.0e6, Arrivals::Constant, 6);
        let pkts = gen.take_until(Time::from_us(10));
        assert_eq!(pkts.len(), 10);
        assert!(pkts.iter().all(|(t, _)| *t < Time::from_us(10)));
    }
}
