//! The §2 concurrency analysis: distinct flows per 150 µs window.
//!
//! "To measure concurrent flows, we use a 150 µs window. ... Since the
//! actual time a packet takes to be processed by the middlebox is
//! certainly less than the RTT, the number of concurrent flows we report
//! is a strict upper bound."

use sprayer_sim::Time;
use std::collections::HashSet;

/// The paper's window: 150 µs (10× the largest p99 RTT of §5).
pub const PAPER_WINDOW: Time = Time(150_000_000);

/// Count distinct flows in every consecutive `window` of `[0, duration)`.
///
/// `events` must be time-sorted (as produced by
/// [`crate::trace::SyntheticTrace::packet_events`]). When `filter` is
/// given, only flows in the set are counted (the "> 10 MB" series).
/// Windows with zero packets contribute a zero count.
pub fn concurrent_flows(
    events: &[(Time, u32)],
    duration: Time,
    window: Time,
    filter: Option<&HashSet<u32>>,
) -> Vec<u32> {
    assert!(window > Time::ZERO);
    let num_windows = (duration.as_ps() / window.as_ps()) as usize;
    let mut counts = vec![0u32; num_windows];
    let mut idx = 0usize;
    let mut current: HashSet<u32> = HashSet::new();
    for &(t, flow) in events {
        let w = (t.as_ps() / window.as_ps()) as usize;
        if w >= num_windows {
            break;
        }
        if w != idx {
            counts[idx] = current.len() as u32;
            current.clear();
            idx = w;
        }
        if filter.is_none_or(|f| f.contains(&flow)) {
            current.insert(flow);
        }
    }
    if idx < num_windows {
        counts[idx] = current.len() as u32;
    }
    counts
}

/// Summary of a window-count distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyStats {
    /// Median flows per window.
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: u32,
    /// Mean.
    pub mean: f64,
}

impl ConcurrencyStats {
    /// Compute from window counts.
    pub fn from_counts(counts: &[u32]) -> Self {
        assert!(!counts.is_empty());
        let mut sorted = counts.to_vec();
        sorted.sort_unstable();
        let q = |f: f64| -> f64 {
            let pos = (f * (sorted.len() - 1) as f64).round() as usize;
            f64::from(sorted[pos])
        };
        ConcurrencyStats {
            median: q(0.5),
            p99: q(0.99),
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().map(|&c| f64::from(c)).sum::<f64>() / sorted.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SyntheticTrace, TraceConfig};

    #[test]
    fn counts_distinct_flows_not_packets() {
        let w = Time::from_us(150);
        let events = vec![
            (Time::from_us(10), 1),
            (Time::from_us(20), 1), // same flow, same window
            (Time::from_us(30), 2),
            (Time::from_us(200), 3), // second window
        ];
        let counts = concurrent_flows(&events, Time::from_us(450), w, None);
        assert_eq!(counts, vec![2, 1, 0]);
    }

    #[test]
    fn filter_restricts_to_large_flows() {
        let w = Time::from_us(150);
        let events = vec![
            (Time::from_us(10), 1),
            (Time::from_us(20), 2),
            (Time::from_us(30), 3),
        ];
        let large: HashSet<u32> = [2].into_iter().collect();
        let counts = concurrent_flows(&events, Time::from_us(150), w, Some(&large));
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn empty_trailing_windows_count_zero() {
        let w = Time::from_us(100);
        let events = vec![(Time::from_us(10), 1)];
        let counts = concurrent_flows(&events, Time::from_ms(1), w, None);
        assert_eq!(counts.len(), 10);
        assert_eq!(counts[0], 1);
        assert!(counts[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn stats_from_counts() {
        let counts = vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        let s = ConcurrencyStats::from_counts(&counts);
        assert_eq!(s.max, 9);
        assert!((s.mean - 4.5).abs() < 1e-12);
        assert!((4.0..=5.0).contains(&s.median));
    }

    /// The headline §2 reproduction: the synthetic trace shows low
    /// short-timescale concurrency comparable to the paper's numbers
    /// (all flows: median 4, p99 14; >10 MB flows: median 1, p99 6).
    #[test]
    fn mawi_like_trace_has_low_concurrency() {
        let trace = SyntheticTrace::generate(&TraceConfig::mawi_like(1));
        let events = trace.packet_events();
        let all = concurrent_flows(&events, trace.duration, PAPER_WINDOW, None);
        let stats = ConcurrencyStats::from_counts(&all);
        assert!(
            (1.0..=8.0).contains(&stats.median),
            "median {} should be near the paper's 4",
            stats.median
        );
        assert!(
            (4.0..=30.0).contains(&stats.p99),
            "p99 {} should be near the paper's 14",
            stats.p99
        );

        let large = trace.large_flow_ids();
        let large_counts = concurrent_flows(&events, trace.duration, PAPER_WINDOW, Some(&large));
        let large_stats = ConcurrencyStats::from_counts(&large_counts);
        assert!(
            large_stats.median <= 4.0,
            "large-flow median {} should be near the paper's 1",
            large_stats.median
        );
        assert!(large_stats.median < stats.median);
        assert!(
            large_stats.p99 <= 12.0,
            "large-flow p99 {}",
            large_stats.p99
        );
    }
}
