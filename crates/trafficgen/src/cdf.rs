//! Empirical CDFs for figure generation.

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs rejected by assertion).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "CDF over NaN samples");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Weighted variant: each sample carries a mass (e.g. bytes per flow
    /// for the "distribution of bytes across flow sizes" curve of Fig. 1).
    pub fn from_weighted(mut pairs: Vec<(f64, f64)>) -> WeightedCdf {
        assert!(pairs.iter().all(|(x, w)| !x.is_nan() && *w >= 0.0));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaNs"));
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        WeightedCdf { pairs, total }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X <= x).
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0..=1).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.sorted.is_empty() {
            return None;
        }
        let pos = (q * (self.sorted.len() - 1) as f64).floor() as usize;
        Some(self.sorted[pos])
    }

    /// (x, P(X<=x)) pairs at `points` log- or linearly spaced positions,
    /// for printing a figure series.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        (0..points)
            .map(|i| {
                let idx = (i * (n - 1)) / (points - 1).max(1);
                (self.sorted[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }
}

/// CDF of mass (weights) by sample value.
#[derive(Debug, Clone)]
pub struct WeightedCdf {
    pairs: Vec<(f64, f64)>,
    total: f64,
}

impl WeightedCdf {
    /// Fraction of total mass at values <= x.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for &(v, w) in &self.pairs {
            if v > x {
                break;
            }
            acc += w;
        }
        acc / self.total
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_quantiles() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(cdf.fraction_at(50.0), 0.5);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(1000.0), 1.0);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.quantile(0.5), Some(50.0));
    }

    #[test]
    fn weighted_mass_fractions() {
        // One elephant (90 mass at size 100), nine mice (1 mass at size 1).
        let mut pairs = vec![(100.0, 90.0)];
        pairs.extend(std::iter::repeat_n((1.0, 1.0), 9));
        let w = Cdf::from_weighted(pairs);
        assert!((w.fraction_at(1.0) - 9.0 / 99.0).abs() < 1e-12);
        assert_eq!(w.fraction_at(100.0), 1.0);
    }

    #[test]
    fn series_is_monotone() {
        let cdf = Cdf::from_samples((0..1000).map(|i| f64::from(i % 37)).collect());
        let series = cdf.series(20);
        assert_eq!(series.len(), 20);
        for pair in series.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_behaves() {
        let cdf = Cdf::from_samples(Vec::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.series(5).is_empty());
    }
}
