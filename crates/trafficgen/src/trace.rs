//! Synthetic backbone-trace generation.
//!
//! The paper motivates spraying with a 48-hour MAWI samplepoint-F capture
//! (§2): flow sizes follow the classic "elephants and mice" pattern
//! (>10 MB flows carry more than 75 % of the bytes) while the number of
//! flows concurrently active within a 150 µs window is tiny (median 4,
//! p99 14; large flows: median 1, p99 6). The real trace is not
//! redistributable at packet granularity, so this module generates a
//! synthetic trace calibrated to those published statistics:
//!
//! * flows arrive as a Poisson process, split into *mice* (log-normal
//!   sizes, low rates — web objects, DNS-over-TCP, short RPCs) and
//!   *elephants* (bounded-Pareto sizes ≥ 10 MB, high rates — bulk
//!   transfers);
//! * an active flow emits 1500-byte packets at its rate until its size
//!   is exhausted;
//! * packet timestamps are what the §2 analysis consumes.

use crate::cdf::Cdf;
use serde::{Deserialize, Serialize};
use sprayer_sim::{SimRng, Time};

/// The paper's large-flow threshold: 10 MB.
pub const LARGE_FLOW_BYTES: u64 = 10 * 1000 * 1000;

/// Trace generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Capture duration.
    pub duration: Time,
    /// Mouse flow arrivals per second.
    pub mice_per_sec: f64,
    /// Median mouse size in bytes (log-normal).
    pub mouse_median_bytes: f64,
    /// Log-normal sigma of mouse sizes (natural log units).
    pub mouse_sigma: f64,
    /// Median mouse transmission rate, bits/s (log-normal, sigma 0.8).
    pub mouse_rate_bps: f64,
    /// Elephant flow arrivals per second.
    pub elephants_per_sec: f64,
    /// Pareto shape for elephant sizes.
    pub elephant_alpha: f64,
    /// Pareto scale = the 10 MB large-flow threshold.
    pub elephant_min_bytes: f64,
    /// Elephant size cap (keeps single flows from dominating a short
    /// synthetic capture the way they can't dominate a 48 h one).
    pub elephant_cap_bytes: f64,
    /// Median elephant transmission rate, bits/s (log-normal, sigma 0.5).
    pub elephant_rate_bps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// Defaults calibrated against the paper's §2 statistics for the
    /// MAWI backbone link (see `fig1`/`fig2` experiment output).
    pub fn mawi_like(seed: u64) -> Self {
        TraceConfig {
            duration: Time::from_secs(30),
            mice_per_sec: 3_000.0,
            mouse_median_bytes: 1_000.0,
            mouse_sigma: 1.8,
            mouse_rate_bps: 1.5e6,
            elephants_per_sec: 2.0,
            elephant_alpha: 1.2,
            elephant_min_bytes: LARGE_FLOW_BYTES as f64,
            elephant_cap_bytes: 600e6,
            elephant_rate_bps: 250e6,
            seed,
        }
    }
}

/// One synthesized flow.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Flow index (stable identifier).
    pub id: u32,
    /// First-packet time.
    pub start: Time,
    /// Total bytes carried.
    pub bytes: u64,
    /// Transmission rate in bits/s while active.
    pub rate_bps: f64,
}

impl FlowRecord {
    /// Number of 1500-byte packets (at least one).
    pub fn packets(&self) -> u64 {
        self.bytes.div_ceil(1500).max(1)
    }

    /// Active duration.
    pub fn duration(&self) -> Time {
        Time::from_ps((self.bytes as f64 * 8.0 / self.rate_bps * 1e12) as u64)
    }

    /// Is this a large flow in the paper's sense (> 10 MB)?
    pub fn is_large(&self) -> bool {
        self.bytes > LARGE_FLOW_BYTES
    }
}

/// A generated trace: flow records plus derived packet events.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    /// All flows.
    pub flows: Vec<FlowRecord>,
    /// Capture duration.
    pub duration: Time,
}

fn lognormal(rng: &mut SimRng, median: f64, sigma: f64) -> f64 {
    // Box–Muller from two uniforms.
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

fn pareto(rng: &mut SimRng, xm: f64, alpha: f64, cap: f64) -> f64 {
    let u = 1.0 - rng.next_f64();
    (xm / u.powf(1.0 / alpha)).min(cap)
}

/// Sampler returning `(flow_bytes, rate_bps)` for a newly spawned flow.
type SizeRateSampler = Box<dyn FnMut(&mut SimRng) -> (f64, f64)>;

impl SyntheticTrace {
    /// Generate a trace from `config`.
    pub fn generate(config: &TraceConfig) -> Self {
        let mut rng = SimRng::seed_from(config.seed);
        let mut flows = Vec::new();
        let mut id = 0u32;

        // Mice and elephants are independent Poisson processes.
        let spawn = |rate_per_sec: f64,
                     rng: &mut SimRng,
                     mut size_rate: SizeRateSampler,
                     flows: &mut Vec<FlowRecord>,
                     id: &mut u32| {
            let mut t = 0.0f64;
            let horizon = config.duration.as_secs_f64();
            loop {
                t += rng.exponential(1.0 / rate_per_sec);
                if t >= horizon {
                    break;
                }
                let (bytes, rate_bps) = size_rate(rng);
                flows.push(FlowRecord {
                    id: *id,
                    start: Time::from_ps((t * 1e12) as u64),
                    bytes: bytes.max(64.0) as u64,
                    rate_bps,
                });
                *id += 1;
            }
        };

        let c = config.clone();
        spawn(
            config.mice_per_sec,
            &mut rng,
            Box::new(move |rng| {
                let bytes = lognormal(rng, c.mouse_median_bytes, c.mouse_sigma);
                let rate = lognormal(rng, c.mouse_rate_bps, 0.8);
                (bytes, rate)
            }),
            &mut flows,
            &mut id,
        );
        let c = config.clone();
        spawn(
            config.elephants_per_sec,
            &mut rng,
            Box::new(move |rng| {
                let bytes = pareto(
                    rng,
                    c.elephant_min_bytes,
                    c.elephant_alpha,
                    c.elephant_cap_bytes,
                );
                let rate = lognormal(rng, c.elephant_rate_bps, 0.5);
                (bytes, rate)
            }),
            &mut flows,
            &mut id,
        );
        flows.sort_by_key(|f| f.start);
        SyntheticTrace {
            flows,
            duration: config.duration,
        }
    }

    /// Total bytes across all flows.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Fraction of bytes carried by flows larger than `threshold` bytes.
    pub fn byte_share_above(&self, threshold: u64) -> f64 {
        let total = self.total_bytes() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let large: u64 = self
            .flows
            .iter()
            .filter(|f| f.bytes > threshold)
            .map(|f| f.bytes)
            .sum();
        large as f64 / total
    }

    /// CDF of flow sizes (Fig. 1 "Flows" series).
    pub fn flow_size_cdf(&self) -> Cdf {
        Cdf::from_samples(self.flows.iter().map(|f| f.bytes as f64).collect())
    }

    /// Weighted CDF of bytes by flow size (Fig. 1 "Bytes" series).
    pub fn bytes_by_size_cdf(&self) -> crate::cdf::WeightedCdf {
        Cdf::from_weighted(
            self.flows
                .iter()
                .map(|f| (f.bytes as f64, f.bytes as f64))
                .collect(),
        )
    }

    /// Packet events (time, flow id), time-sorted, truncated at the
    /// capture end. Each flow emits its packets evenly at its rate.
    pub fn packet_events(&self) -> Vec<(Time, u32)> {
        let mut events = Vec::new();
        for f in &self.flows {
            let packets = f.packets();
            let gap = Time::from_ps(((1500.0 * 8.0 / f.rate_bps) * 1e12) as u64);
            let mut t = f.start;
            for _ in 0..packets {
                if t >= self.duration {
                    break;
                }
                events.push((t, f.id));
                t += gap;
            }
        }
        events.sort_by_key(|&(t, id)| (t, id));
        events
    }

    /// IDs of large flows (for the Fig. 2 "> 10 MB" series).
    pub fn large_flow_ids(&self) -> std::collections::HashSet<u32> {
        self.flows
            .iter()
            .filter(|f| f.is_large())
            .map(|f| f.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> SyntheticTrace {
        SyntheticTrace::generate(&TraceConfig::mawi_like(42))
    }

    #[test]
    fn elephants_dominate_bytes() {
        let t = trace();
        let share = t.byte_share_above(LARGE_FLOW_BYTES);
        assert!(
            (0.6..=0.95).contains(&share),
            "large flows should carry most bytes (paper: >75%), got {share:.2}"
        );
    }

    #[test]
    fn most_flows_are_small() {
        let t = trace();
        let cdf = t.flow_size_cdf();
        let median = cdf.quantile(0.5).unwrap();
        assert!(
            median < 100_000.0,
            "median flow should be small, got {median}"
        );
        // And yet the byte-weighted CDF is dominated by the tail.
        let bytes = t.bytes_by_size_cdf();
        assert!(bytes.fraction_at(median) < 0.1);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticTrace::generate(&TraceConfig::mawi_like(7));
        let b = SyntheticTrace::generate(&TraceConfig::mawi_like(7));
        assert_eq!(a.flows.len(), b.flows.len());
        assert_eq!(a.total_bytes(), b.total_bytes());
        let c = SyntheticTrace::generate(&TraceConfig::mawi_like(8));
        assert_ne!(a.total_bytes(), c.total_bytes());
    }

    #[test]
    fn packet_events_are_sorted_and_bounded() {
        let t = trace();
        let events = t.packet_events();
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        assert!(events.iter().all(|&(time, _)| time < t.duration));
    }

    #[test]
    fn flow_record_helpers() {
        let f = FlowRecord {
            id: 0,
            start: Time::ZERO,
            bytes: 15_000,
            rate_bps: 12_000.0,
        };
        assert_eq!(f.packets(), 10);
        assert_eq!(f.duration(), Time::from_secs(10));
        assert!(!f.is_large());
        let big = FlowRecord {
            id: 1,
            start: Time::ZERO,
            bytes: LARGE_FLOW_BYTES + 1,
            rate_bps: 1.0,
        };
        assert!(big.is_large());
    }

    #[test]
    fn large_flow_ids_match_records() {
        let t = trace();
        let ids = t.large_flow_ids();
        let count = t.flows.iter().filter(|f| f.is_large()).count();
        assert_eq!(ids.len(), count);
        assert!(count >= 1, "a 10s capture should contain elephants");
    }
}
