//! Adversarial traffic: what an attacker aims at a spraying middlebox.
//!
//! Two attack families matter for the fault-injection experiments:
//!
//! * **Malformed frames** — truncated or garbage headers that must be
//!   rejected by the parsers (never panic them) and accounted as
//!   malformed drops at the NIC boundary rather than silently vanishing;
//! * **Checksum-crafted traffic** — fully *valid* TCP packets whose
//!   payloads are tweaked so every packet carries the same TCP checksum.
//!   Sprayer's NIC trick sprays on checksum bits (§4), so a burst of
//!   identical checksums lands on one queue and collapses the spray's
//!   fairness — the skew the chaos experiment measures with Jain's
//!   index.
//!
//! Crafting works by appending a 2-byte *tweak word* to the payload:
//! build the packet with the word zeroed, read the checksum the builder
//! computed, then solve for the word that moves the one's-complement
//! sum onto the target. The result is a well-formed packet whose real
//! checksum *is* the target value — it passes every verifier.

use sprayer_net::{FiveTuple, Packet, PacketBuilder, TcpFlags};
use sprayer_sim::SimRng;

/// One's-complement 16-bit addition with end-around carry.
fn ones_add(a: u16, b: u16) -> u16 {
    let s = u32::from(a) + u32::from(b);
    ((s & 0xffff) + (s >> 16)) as u16
}

/// Build a TCP packet for `tuple` whose *correct* TCP checksum equals
/// `target`. The payload is `payload` plus a 2-byte tweak word chosen
/// to land the one's-complement sum on the target; the returned packet
/// is fully well-formed.
///
/// # Panics
///
/// Panics for `target == 0xffff`: the folded one's-complement sum of
/// nonzero data is never zero, so no valid packet carries that checksum
/// (RFC 1071) — an attacker cannot produce it either. Any other target
/// is always solvable.
pub fn craft_tcp_with_checksum(
    tuple: FiveTuple,
    seq: u32,
    flags: TcpFlags,
    payload: &[u8],
    target: u16,
) -> Packet {
    let builder = PacketBuilder::new();
    let mut buf = Vec::with_capacity(payload.len() + 2);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&[0, 0]);
    let zeroed = builder.tcp(tuple, seq, 0, flags, &buf);
    let c0 = zeroed
        .meta()
        .tcp_checksum
        .expect("builder emits TCP checksums");
    // With tweak w the sum becomes !c0 +' w; we need it to equal
    // !target, so w = !target +' c0 (one's-complement negation is
    // bitwise NOT). The +1 fallback absorbs the ±0 ambiguity.
    let base = ones_add(!target, c0);
    for w in [base, base.wrapping_add(1), base.wrapping_sub(1)] {
        let n = buf.len();
        buf[n - 2..].copy_from_slice(&w.to_be_bytes());
        let pkt = builder.tcp(tuple, seq, 0, flags, &buf);
        if pkt.meta().tcp_checksum == Some(target) {
            return pkt;
        }
    }
    panic!("checksum tweak failed to hit {target:#06x} for {tuple:?}");
}

/// Generator of malformed frames and checksum-collapsed bursts.
#[derive(Debug)]
pub struct Adversary {
    rng: SimRng,
    builder: PacketBuilder,
    flow: FiveTuple,
    seq: u32,
}

impl Adversary {
    /// A deterministic adversary; the same seed replays the same attack.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let flow = FiveTuple::tcp(
            rng.next_u32() | 0x0100_0000,
            (rng.next_u32() % 64_511 + 1_024) as u16,
            rng.next_u32() | 0x0100_0000,
            (rng.next_u32() % 64_511 + 1_024) as u16,
        );
        Adversary {
            rng,
            builder: PacketBuilder::new(),
            flow,
            seq: 0,
        }
    }

    /// A well-formed 64-byte TCP frame (the raw material for truncation).
    fn valid_frame(&mut self) -> Vec<u8> {
        let mut payload = [0u8; 10];
        for b in &mut payload {
            *b = (self.rng.next_u32() & 0xff) as u8;
        }
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(10);
        self.builder
            .tcp(self.flow, seq, 0, TcpFlags::ACK, &payload)
            .into_bytes()
    }

    /// A frame cut off inside its headers (below Ethernet + IPv4 + TCP =
    /// 54 bytes), guaranteed to fail parsing. Cuts inside the payload
    /// are deliberately excluded: parsers tolerate those (clamping the
    /// payload), so they are not malformed.
    pub fn truncated_frame(&mut self) -> Vec<u8> {
        let mut frame = self.valid_frame();
        frame.truncate(self.rng.below(54) as usize);
        frame
    }

    /// An IPv4-ethertype frame whose IP header is garbage — the version
    /// nibble is forced off 4, so parsing always fails (never panics).
    pub fn garbage_frame(&mut self) -> Vec<u8> {
        let len = 14 + 20 + self.rng.below(40) as usize;
        let mut frame: Vec<u8> = (0..len)
            .map(|_| (self.rng.next_u32() & 0xff) as u8)
            .collect();
        // Ethertype 0x0800 so the garbage reaches the IPv4 parser.
        frame[12] = 0x08;
        frame[13] = 0x00;
        // Any version nibble but 4.
        let bad_version = {
            let v = (self.rng.next_u32() % 15) as u8; // 0..=14
            if v >= 4 {
                v + 1
            } else {
                v
            }
        };
        frame[14] = (bad_version << 4) | (frame[14] & 0x0f);
        frame
    }

    /// `count` fully valid TCP packets, every one carrying TCP checksum
    /// `target`: sprayed by checksum bits, the whole burst lands on one
    /// queue.
    pub fn crafted_burst(&mut self, target: u16, count: usize) -> Vec<Packet> {
        (0..count)
            .map(|_| {
                let mut payload = [0u8; 8];
                for b in &mut payload {
                    *b = (self.rng.next_u32() & 0xff) as u8;
                }
                let seq = self.seq;
                self.seq = self.seq.wrapping_add(10);
                craft_tcp_with_checksum(self.flow, seq, TcpFlags::ACK, &payload, target)
            })
            .collect()
    }

    /// The flow the crafted bursts belong to.
    pub fn flow(&self) -> FiveTuple {
        self.flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crafted_packets_hit_the_target_checksum_and_stay_valid() {
        let mut adv = Adversary::new(7);
        // 0xffff is excluded: no valid packet can carry it (see
        // `craft_tcp_with_checksum` docs).
        for target in [0x0000u16, 0x0001, 0x1234, 0x8000, 0xfffe] {
            let burst = adv.crafted_burst(target, 16);
            assert_eq!(burst.len(), 16);
            for pkt in &burst {
                assert_eq!(pkt.meta().tcp_checksum, Some(target));
                // Round-trips through the parser: the engineered
                // checksum is the packet's true checksum.
                let reparsed = Packet::parse(pkt.bytes().to_vec()).expect("crafted stays valid");
                assert_eq!(reparsed.meta().tcp_checksum, Some(target));
                assert_eq!(reparsed.tuple(), Some(adv.flow()));
            }
        }
    }

    #[test]
    fn crafted_burst_varies_payload_but_not_checksum() {
        let mut adv = Adversary::new(8);
        let burst = adv.crafted_burst(0xbeef, 32);
        let payloads: std::collections::HashSet<Vec<u8>> = burst
            .iter()
            .map(|p| p.payload().unwrap().to_vec())
            .collect();
        assert!(
            payloads.len() > 16,
            "payload content must vary ({} distinct)",
            payloads.len()
        );
    }

    #[test]
    fn truncated_frames_never_parse() {
        let mut adv = Adversary::new(9);
        for _ in 0..256 {
            let frame = adv.truncated_frame();
            assert!(frame.len() < 54);
            assert!(
                Packet::parse(frame.clone()).is_err(),
                "truncated frame parsed: {frame:02x?}"
            );
        }
    }

    #[test]
    fn garbage_frames_never_parse() {
        let mut adv = Adversary::new(10);
        for _ in 0..256 {
            let frame = adv.garbage_frame();
            assert!(
                Packet::parse(frame.clone()).is_err(),
                "garbage frame parsed: {frame:02x?}"
            );
        }
    }

    #[test]
    fn adversary_is_deterministic_per_seed() {
        let mut a = Adversary::new(42);
        let mut b = Adversary::new(42);
        assert_eq!(a.truncated_frame(), b.truncated_frame());
        assert_eq!(a.garbage_frame(), b.garbage_frame());
        let (pa, pb) = (a.crafted_burst(0x1111, 4), b.crafted_burst(0x1111, 4));
        assert_eq!(
            pa.iter().map(|p| p.bytes().to_vec()).collect::<Vec<_>>(),
            pb.iter().map(|p| p.bytes().to_vec()).collect::<Vec<_>>()
        );
    }
}
