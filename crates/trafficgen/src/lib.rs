//! # sprayer-trafficgen — workload generation
//!
//! The traffic sources the paper's evaluation and motivation sections
//! require:
//!
//! * [`moongen`] — a MoonGen-like constant/Poisson rate source of 64-byte
//!   TCP packets "with variable payload content, and therefore variable
//!   checksum" (§5), over a configurable number of flows whose endpoints
//!   "change randomly at every execution";
//! * [`trace`] — a synthetic backbone-trace generator calibrated to the
//!   statistics the paper extracts from the MAWI samplepoint-F trace
//!   (§2): heavy-tailed flow sizes ("elephants and mice", >75 % of bytes
//!   in >10 MB flows) and low short-timescale concurrency;
//! * [`concurrency`] — the §2 analysis: distinct flows per 150 µs window,
//!   over all flows or only large ones;
//! * [`cdf`] — empirical CDF helper used by the figure generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod cdf;
pub mod concurrency;
pub mod moongen;
pub mod trace;

pub use adversarial::{craft_tcp_with_checksum, Adversary};
pub use cdf::Cdf;
pub use concurrency::{concurrent_flows, ConcurrencyStats};
pub use moongen::MoonGen;
pub use trace::{SyntheticTrace, TraceConfig};
