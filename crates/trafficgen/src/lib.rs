//! # sprayer-trafficgen — workload generation
//!
//! The traffic sources the paper's evaluation and motivation sections
//! require:
//!
//! * [`moongen`] — a MoonGen-like constant/Poisson rate source of 64-byte
//!   TCP packets "with variable payload content, and therefore variable
//!   checksum" (§5), over a configurable number of flows whose endpoints
//!   "change randomly at every execution";
//! * [`trace`] — a synthetic backbone-trace generator calibrated to the
//!   statistics the paper extracts from the MAWI samplepoint-F trace
//!   (§2): heavy-tailed flow sizes ("elephants and mice", >75 % of bytes
//!   in >10 MB flows) and low short-timescale concurrency;
//! * [`stream`] — the bounded-memory streaming variant of [`trace`]:
//!   heavy-tailed TCP flow churn (SYN → data → FIN lifecycles) as an
//!   iterator holding only the active flow set, for soaks whose horizon
//!   would make a materialized event list unaffordable;
//! * [`concurrency`] — the §2 analysis: distinct flows per 150 µs window,
//!   over all flows or only large ones;
//! * [`cdf`] — empirical CDF helper used by the figure generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod cdf;
pub mod concurrency;
pub mod moongen;
pub mod stream;
pub mod trace;

pub use adversarial::{craft_tcp_with_checksum, Adversary};
pub use cdf::Cdf;
pub use concurrency::{concurrent_flows, ConcurrencyStats};
pub use moongen::MoonGen;
pub use stream::{ChurnConfig, ChurnGen};
pub use trace::{SyntheticTrace, TraceConfig};
