//! SLO evaluation: thresholds over health events and sampled timelines,
//! producing alert records for the telemetry document.
//!
//! [`evaluate`] is a pure function from one run's observable outputs —
//! the [`HealthReport`] drained off the event bus, the optional
//! [`SampleSet`] timelines, the optional [`ReorderReport`] — to a list
//! of [`Alert`]s under a [`SloRules`] policy. Runs are deterministic in
//! the simulator, so alert counts gate at zero slack in the bench gate.
//!
//! Alert `first_ts`/`last_ts` are runtime-native ticks for event-backed
//! alerts and bucket-start ticks (`bucket × interval_ticks`) for
//! timeline-backed ones.

use crate::health::{HealthEvent, HealthRecord, HealthReport};
use crate::registry::MetricsRegistry;
use crate::reorder::ReorderReport;
use crate::sampler::SampleSet;

/// Alert thresholds. Defaults are deliberately loose enough that a
/// healthy, fairly-balanced run raises nothing.
#[derive(Debug, Clone, Copy)]
pub struct SloRules {
    /// Jain fairness floor per sample bucket (only buckets that
    /// processed at least `min_bucket_packets` count).
    pub min_jain: f64,
    /// Jain level below which a dip is classified as an adversarial
    /// collapse (load concentrating on one core).
    pub collapse_jain: f64,
    /// Pre-NF drop share per bucket above which the bucket is a drop
    /// storm.
    pub max_drop_share: f64,
    /// Minimum packets (processed + dropped) in a bucket before its
    /// fairness/drop numbers are judged — idle buckets are noise.
    pub min_bucket_packets: u64,
    /// Queue-depth fraction at which the runtimes emit
    /// [`HealthEvent::QueueHighWater`] (the emission threshold lives
    /// here so runtimes and evaluator agree on one policy).
    pub queue_hwm_frac: f64,
    /// Ceiling on the reordering-depth p99 estimate.
    pub max_reorder_p99: u64,
}

impl Default for SloRules {
    fn default() -> Self {
        SloRules {
            min_jain: 0.5,
            collapse_jain: 0.35,
            max_drop_share: 0.2,
            min_bucket_packets: 64,
            queue_hwm_frac: 0.75,
            max_reorder_p99: 64,
        }
    }
}

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Degraded but functioning.
    Warning,
    /// Service-affecting.
    Critical,
}

impl Severity {
    /// Stable name for serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One evaluated alert: a rule that fired, how often, and when.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Rule name (stable telemetry vocabulary).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Occurrences (events or buckets).
    pub count: u64,
    /// First occurrence, ticks.
    pub first_ts: u64,
    /// Last occurrence, ticks.
    pub last_ts: u64,
    /// Human-readable summary of the worst occurrence.
    pub detail: String,
}

impl Alert {
    /// One JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"count\":{},\"first_ts\":{},\"last_ts\":{},\"detail\":\"",
            self.rule,
            self.severity.as_str(),
            self.count,
            self.first_ts,
            self.last_ts
        );
        for c in self.detail.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(s, "\\u{:04x}", c as u32);
                }
                c => s.push(c),
            }
        }
        s.push_str("\"}");
        s
    }
}

/// Aggregates event occurrences of one rule into a single alert.
struct Agg {
    rule: &'static str,
    severity: Severity,
    count: u64,
    first_ts: u64,
    last_ts: u64,
    detail: String,
}

impl Agg {
    fn new(rule: &'static str, severity: Severity) -> Self {
        Agg {
            rule,
            severity,
            count: 0,
            first_ts: 0,
            last_ts: 0,
            detail: String::new(),
        }
    }

    fn hit(&mut self, ts: u64, detail: String) {
        if self.count == 0 {
            self.first_ts = ts;
            self.detail = detail;
        } else {
            self.last_ts = self.last_ts.max(ts);
            self.detail = detail; // keep the latest occurrence's detail
        }
        self.last_ts = self.last_ts.max(ts);
        self.count += 1;
    }

    fn into_alert(self) -> Option<Alert> {
        (self.count > 0).then_some(Alert {
            rule: self.rule,
            severity: self.severity,
            count: self.count,
            first_ts: self.first_ts,
            last_ts: self.last_ts,
            detail: self.detail,
        })
    }
}

/// Evaluate `rules` over one run's outputs. Deterministic: alerts come
/// out in a fixed rule order, aggregated (one alert per rule, counting
/// occurrences) so the telemetry stays bounded no matter how noisy the
/// run was.
pub fn evaluate(
    rules: &SloRules,
    health: &HealthReport,
    samples: Option<&SampleSet>,
    reorder: Option<&ReorderReport>,
) -> Vec<Alert> {
    let mut worker_death = Agg::new("worker_death", Severity::Critical);
    let mut watchdog = Agg::new("watchdog_fence", Severity::Critical);
    let mut queue_hwm = Agg::new("queue_high_water", Severity::Warning);
    let mut drop_storm = Agg::new("drop_storm", Severity::Warning);
    let mut fairness = Agg::new("fairness_dip", Severity::Warning);
    let mut collapse = Agg::new("adversarial_collapse", Severity::Critical);
    let mut reorder_depth = Agg::new("reorder_depth", Severity::Warning);

    for HealthRecord { ts, event } in &health.records {
        match event {
            HealthEvent::WorkerDeath { core, message } => {
                worker_death.hit(*ts, format!("core {core}: {message}"));
            }
            HealthEvent::WatchdogFence {
                core,
                stalled_ticks,
            } => {
                watchdog.hit(*ts, format!("core {core} silent for {stalled_ticks} ticks"));
            }
            HealthEvent::QueueHighWater {
                core,
                depth,
                capacity,
            } => {
                queue_hwm.hit(*ts, format!("core {core} queue {depth}/{capacity}"));
            }
            HealthEvent::DropStorm { core, drops } => {
                drop_storm.hit(*ts, format!("core {core} shed {drops} packets"));
            }
            HealthEvent::FairnessDip { jain } => {
                fairness.hit(*ts, format!("jain {jain:.3}"));
            }
            HealthEvent::AdversarialCollapse { core, share } => {
                collapse.hit(
                    *ts,
                    format!("core {core} took {:.0}% of the load", share * 100.0),
                );
            }
            // Lifecycle records, not alert conditions.
            HealthEvent::ReconfigPhase { .. } | HealthEvent::FaultInjected { .. } => {}
        }
    }

    if let Some(set) = samples {
        let jain = set.jain_timeline();
        let drops = set.drop_rate_timeline();
        for b in 0..set.num_buckets() {
            let ts = b as u64 * set.interval_ticks;
            let volume: u64 = set
                .cores
                .iter()
                .map(|s| {
                    s.buckets()
                        .get(b)
                        .map_or(0, |c| c.processed + c.pre_nf_drops())
                })
                .sum();
            if volume < rules.min_bucket_packets {
                continue;
            }
            let j = jain[b];
            if j < rules.collapse_jain {
                // Name the core that took the load.
                let (core, share) = bucket_max_share(set, b);
                collapse.hit(
                    ts,
                    format!("jain {j:.3}, core {core} took {:.0}%", share * 100.0),
                );
            } else if j < rules.min_jain {
                fairness.hit(ts, format!("jain {j:.3}"));
            }
            if drops[b] > rules.max_drop_share {
                drop_storm.hit(ts, format!("drop share {:.0}%", drops[b] * 100.0));
            }
        }
    }

    if let Some(r) = reorder {
        let p99 = r.depth_hist.p99().unwrap_or(0);
        if p99 > rules.max_reorder_p99 {
            reorder_depth.hit(
                0,
                format!(
                    "depth p99 {p99} > {} ({} reordered packets)",
                    rules.max_reorder_p99, r.reordered
                ),
            );
        }
    }

    [
        worker_death,
        watchdog,
        collapse,
        drop_storm,
        queue_hwm,
        fairness,
        reorder_depth,
    ]
    .into_iter()
    .filter_map(Agg::into_alert)
    .collect()
}

/// The core with the largest processed share in bucket `b`.
fn bucket_max_share(set: &SampleSet, b: usize) -> (usize, f64) {
    let counts: Vec<u64> = set
        .cores
        .iter()
        .map(|s| s.buckets().get(b).map_or(0, |c| c.processed))
        .collect();
    let total: u64 = counts.iter().sum();
    let (core, &max) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .unwrap_or((0, &0));
    if total == 0 {
        (core, 0.0)
    } else {
        (core, max as f64 / total as f64)
    }
}

/// Cap on the raw event records embedded in a telemetry document (the
/// full stream still counts in `health_events_total`).
const EXPORTED_EVENTS_CAP: usize = 256;

/// Write the standard `health_*` metric set for one run: event totals
/// and per-kind counts, the (capped) raw event records, and the
/// evaluated alerts.
pub fn export_health_telemetry(reg: &mut MetricsRegistry, health: &HealthReport, alerts: &[Alert]) {
    reg.set_u64("health_events_total", health.records.len() as u64);
    reg.set_u64("health_events_dropped", health.dropped);
    reg.set_u64("health_ticks_per_us", health.ticks_per_us);
    let counts = health.counts();
    let mut obj = String::from("{");
    for (i, (kind, n)) in counts.iter().enumerate() {
        if i > 0 {
            obj.push(',');
        }
        use std::fmt::Write as _;
        let _ = write!(obj, "\"{kind}\":{n}");
    }
    obj.push('}');
    reg.set_raw_json("health_event_counts", obj);
    let shown = health.records.len().min(EXPORTED_EVENTS_CAP);
    let events: Vec<String> = health.records[..shown]
        .iter()
        .map(HealthRecord::to_json)
        .collect();
    reg.set_u64(
        "health_events_truncated",
        (health.records.len() - shown) as u64,
    );
    reg.set_raw_json("health_events", format!("[{}]", events.join(",")));
    reg.set_u64("health_alerts_total", alerts.len() as u64);
    reg.set_u64(
        "health_alerts_critical",
        alerts
            .iter()
            .filter(|a| a.severity == Severity::Critical)
            .count() as u64,
    );
    let alerts_json: Vec<String> = alerts.iter().map(Alert::to_json).collect();
    reg.set_raw_json("health_alerts", format!("[{}]", alerts_json.join(",")));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    fn report_with(records: Vec<HealthRecord>) -> HealthReport {
        HealthReport {
            ticks_per_us: 1_000,
            dropped: 0,
            records,
        }
    }

    #[test]
    fn quiet_run_raises_no_alerts() {
        let alerts = evaluate(&SloRules::default(), &report_with(vec![]), None, None);
        assert!(alerts.is_empty());
    }

    #[test]
    fn worker_death_is_critical_and_aggregated() {
        let recs = vec![
            HealthRecord {
                ts: 10,
                event: HealthEvent::WorkerDeath {
                    core: 1,
                    message: "boom".into(),
                },
            },
            HealthRecord {
                ts: 30,
                event: HealthEvent::WorkerDeath {
                    core: 2,
                    message: "again".into(),
                },
            },
        ];
        let alerts = evaluate(&SloRules::default(), &report_with(recs), None, None);
        assert_eq!(alerts.len(), 1);
        let a = &alerts[0];
        assert_eq!(a.rule, "worker_death");
        assert_eq!(a.severity, Severity::Critical);
        assert_eq!(a.count, 2);
        assert_eq!((a.first_ts, a.last_ts), (10, 30));
        assert!(a.detail.contains("core 2"));
    }

    #[test]
    fn lifecycle_events_do_not_alert() {
        let recs = vec![
            HealthRecord {
                ts: 5,
                event: HealthEvent::ReconfigPhase {
                    epoch: 1,
                    phase: "rescale",
                    cores: 4,
                },
            },
            HealthRecord {
                ts: 6,
                event: HealthEvent::FaultInjected {
                    kind: "crash",
                    core: 1,
                },
            },
        ];
        let alerts = evaluate(&SloRules::default(), &report_with(recs), None, None);
        assert!(alerts.is_empty());
    }

    /// Four cores, two buckets: balanced, then collapsed onto core 0
    /// (per-bucket Jain 1/4 = 0.25, below the collapse threshold —
    /// note a 2-core collapse bottoms out at Jain 0.5 and would not).
    fn collapse_samples() -> SampleSet {
        let mut cores: Vec<TimeSeries> = (0..4).map(|_| TimeSeries::new(1_000, 16)).collect();
        for i in 0..100 {
            for c in &mut cores {
                c.record(i, |s| s.processed += 1);
            }
        }
        for i in 1_000..1_100 {
            cores[0].record(i, |s| s.processed += 1);
        }
        for c in &mut cores[1..] {
            c.record(1_000, |s| s.busy_ticks += 1); // keep grids aligned
        }
        SampleSet::assemble(1_000, cores)
    }

    #[test]
    fn collapsed_bucket_raises_adversarial_collapse() {
        let set = collapse_samples();
        let alerts = evaluate(&SloRules::default(), &report_with(vec![]), Some(&set), None);
        let a = alerts
            .iter()
            .find(|a| a.rule == "adversarial_collapse")
            .expect("one bucket fully on core 0");
        assert_eq!(a.severity, Severity::Critical);
        assert!(a.detail.contains("core 0"));
        // The balanced bucket must not have tripped the fairness rule.
        assert!(alerts.iter().all(|a| a.rule != "fairness_dip"));
    }

    #[test]
    fn idle_buckets_are_ignored() {
        let mut c0 = TimeSeries::new(1_000, 16);
        let mut c1 = TimeSeries::new(1_000, 16);
        // One packet on one core: jain 0.5, but far below the volume
        // floor — must not alert.
        c0.record(0, |s| s.processed += 1);
        c1.record(0, |s| s.busy_ticks += 1);
        let set = SampleSet::assemble(1_000, vec![c0, c1]);
        let alerts = evaluate(&SloRules::default(), &report_with(vec![]), Some(&set), None);
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    #[test]
    fn deep_reordering_trips_the_p99_rule() {
        let mut sketch = crate::reorder::ReorderSketch::new(256, 16);
        // One flow completing fully reversed: deep estimates.
        for ord in (0..200u64).rev() {
            sketch.on_complete(0, 1, ord);
        }
        let report = sketch.report();
        let alerts = evaluate(
            &SloRules::default(),
            &report_with(vec![]),
            None,
            Some(&report),
        );
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "reorder_depth");
    }

    #[test]
    fn export_writes_the_health_metric_set() {
        let recs = vec![HealthRecord {
            ts: 42,
            event: HealthEvent::WorkerDeath {
                core: 0,
                message: "x".into(),
            },
        }];
        let report = report_with(recs);
        let alerts = evaluate(&SloRules::default(), &report, None, None);
        let mut reg = MetricsRegistry::new();
        export_health_telemetry(&mut reg, &report, &alerts);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("health_events_total").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("health_alerts_total").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("health_alerts_critical").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("health_event_counts")
                .unwrap()
                .get("worker_death")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let events = doc.get("health_events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ts").unwrap().as_u64(), Some(42));
        let alerts = doc.get("health_alerts").unwrap().as_array().unwrap();
        assert_eq!(
            alerts[0].get("severity").unwrap().as_str(),
            Some("critical")
        );
    }

    #[test]
    fn exported_events_are_capped_but_counted_in_full() {
        let recs: Vec<HealthRecord> = (0..300)
            .map(|i| HealthRecord {
                ts: i,
                event: HealthEvent::DropStorm { core: 0, drops: 1 },
            })
            .collect();
        let report = report_with(recs);
        let mut reg = MetricsRegistry::new();
        export_health_telemetry(&mut reg, &report, &[]);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("health_events_total").unwrap().as_u64(), Some(300));
        assert_eq!(
            doc.get("health_events_truncated").unwrap().as_u64(),
            Some(44)
        );
        assert_eq!(
            doc.get("health_events").unwrap().as_array().unwrap().len(),
            256
        );
    }
}
