//! A versioned, ordered metrics snapshot.
//!
//! [`MetricsRegistry`] is the one way experiment binaries build their
//! telemetry JSON: insertion-ordered `name → value` pairs serialized as
//! a single object whose first field is always `"schema_version"`.
//! Values can be integers, floats, strings, pre-serialized JSON blocks
//! (e.g. `MiddleboxStats::to_json`), or [`Histogram`]s.

use crate::hist::Histogram;
use crate::json::JsonValue;

/// Version of the telemetry JSON documents the benches emit.
///
/// * v1 — the ad-hoc `results/fig{6,7}_telemetry.json` lines (no
///   version field).
/// * v2 — registry-built documents: every record carries
///   `"schema_version": 2`; existing field names are unchanged and new
///   records may add histogram blocks.
/// * v3 — documents may embed time-series sampling blocks
///   (`SampleSet::to_json` objects: per-core bucketed deltas plus
///   `jain`/`util_skew`/`drop_rate` timelines). Purely additive: every
///   v2 field keeps its name and shape, so v2 readers ignoring unknown
///   fields still work.
/// * v4 — the health plane: documents may carry the `profile_*` metric
///   set (per-stage busy-time attribution, `StageProfiler::export`),
///   the `health_*` set (structured event records plus SLO alert
///   records, `export_health_telemetry`), and the `reorder_*` set (the
///   streaming reordering-depth sketch, `ReorderReport::export`).
///   Again purely additive — v3 readers ignoring unknown fields still
///   work.
/// * v5 — tail attribution and the flight recorder: documents may carry
///   the `tail_*` metric set (exemplar-based per-stage slow-packet
///   breakdowns, `TailReport::export`), the `flight_*` set (crash
///   flight-recorder snapshot summary, `FlightSnapshot::export`), and
///   the bounded-ring loss counters promoted from internal state
///   (`trace_events_dropped` alongside the existing
///   `health_events_dropped` / `reorder_untracked_completions`). Purely
///   additive — v4 readers ignoring unknown fields still work, and
///   [`MetricsRegistry::parse_document`] reads v1 through v5.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 5;

#[derive(Debug, Clone)]
enum Value {
    U64(u64),
    F64(f64),
    Str(String),
    /// Pre-serialized JSON, embedded verbatim.
    Raw(String),
}

/// Insertion-ordered name→value snapshot serializing to one JSON object.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Value)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn set(&mut self, name: &str, value: Value) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 = value;
        } else {
            self.entries.push((name.to_string(), value));
        }
    }

    /// Set an integer metric.
    pub fn set_u64(&mut self, name: &str, value: u64) {
        self.set(name, Value::U64(value));
    }

    /// Set a float metric (serialized as `null` if non-finite).
    pub fn set_f64(&mut self, name: &str, value: f64) {
        self.set(name, Value::F64(value));
    }

    /// Set a string metric.
    pub fn set_str(&mut self, name: &str, value: &str) {
        self.set(name, Value::Str(value.to_string()));
    }

    /// Embed a pre-serialized JSON value verbatim (object, array, …).
    pub fn set_raw_json(&mut self, name: &str, json: String) {
        self.set(name, Value::Raw(json));
    }

    /// Embed a histogram (via [`Histogram::to_json`]).
    pub fn set_histogram(&mut self, name: &str, hist: &Histogram) {
        self.set(name, Value::Raw(hist.to_json()));
    }

    /// Number of metrics set (excluding the implicit version field).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no metrics were set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize as one JSON object, `"schema_version"` first, then the
    /// metrics in insertion order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + 32 * self.entries.len());
        let _ = write!(s, "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}");
        for (name, value) in &self.entries {
            s.push(',');
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\":");
            match value {
                Value::U64(v) => {
                    let _ = write!(s, "{v}");
                }
                Value::F64(v) if v.is_finite() => {
                    let _ = write!(s, "{v}");
                }
                Value::F64(_) => s.push_str("null"),
                Value::Str(v) => {
                    s.push('"');
                    escape_into(&mut s, v);
                    s.push('"');
                }
                Value::Raw(v) => s.push_str(v),
            }
        }
        s.push('}');
        s
    }

    /// Parse a telemetry document produced by any schema version this
    /// repo has emitted: v1 documents carry no `schema_version` field
    /// (the ad-hoc pre-registry JSON) and are reported as version 1;
    /// v2 through v5 declare themselves. Returns `(version, document)`; errors
    /// on malformed JSON, a non-object root, or a version newer than
    /// [`TELEMETRY_SCHEMA_VERSION`] (forward compatibility is not
    /// promised — regenerate or upgrade instead of misreading).
    pub fn parse_document(text: &str) -> Result<(u64, JsonValue), String> {
        let doc = JsonValue::parse(text)?;
        if doc.as_object().is_none() {
            return Err("telemetry document root must be an object".to_string());
        }
        let version = match doc.get("schema_version") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| "schema_version must be a non-negative integer".to_string())?,
        };
        if version > TELEMETRY_SCHEMA_VERSION {
            return Err(format!(
                "telemetry schema_version {version} is newer than supported {TELEMETRY_SCHEMA_VERSION}"
            ));
        }
        Ok((version, doc))
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_comes_first_and_order_is_preserved() {
        let mut r = MetricsRegistry::new();
        r.set_str("figure", "6a");
        r.set_u64("cycles", 10_000);
        r.set_f64("mpps", 1.5);
        let j = r.to_json();
        assert!(j.starts_with("{\"schema_version\":5,\"figure\":\"6a\""));
        let ci = j.find("\"cycles\"").unwrap();
        let mi = j.find("\"mpps\"").unwrap();
        assert!(ci < mi);
    }

    #[test]
    fn current_documents_round_trip_through_the_parser() {
        let mut r = MetricsRegistry::new();
        r.set_str("figure", "9");
        r.set_u64("flows", 128);
        r.set_f64("jain_mean", 0.97);
        r.set_raw_json(
            "samples",
            "{\"jain\":[1.0,0.5],\"per_core\":[]}".to_string(),
        );
        let (version, doc) = MetricsRegistry::parse_document(&r.to_json()).unwrap();
        assert_eq!(version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(doc.get("figure").unwrap().as_str(), Some("9"));
        assert_eq!(doc.get("flows").unwrap().as_u64(), Some(128));
        assert_eq!(doc.get("jain_mean").unwrap().as_f64(), Some(0.97));
        let jain = doc.get("samples").unwrap().get("jain").unwrap();
        assert_eq!(jain.as_array().unwrap().len(), 2);
    }

    #[test]
    fn parser_reads_v1_and_v2_documents() {
        // v1: the pre-registry ad-hoc format, no schema_version field.
        let (v1, doc) =
            MetricsRegistry::parse_document("{\"figure\":\"6a\",\"mode\":\"RSS\",\"mpps\":1.25}")
                .unwrap();
        assert_eq!(v1, 1);
        assert_eq!(doc.get("mpps").unwrap().as_f64(), Some(1.25));
        // v2: a registry document written before the v3 bump. Same
        // field names and shapes; only the version differs.
        let (v2, doc) = MetricsRegistry::parse_document(
            "{\"schema_version\":2,\"figure\":\"6\",\"datapoints\":[{\"cycles\":0}]}",
        )
        .unwrap();
        assert_eq!(v2, 2);
        assert_eq!(
            doc.get("datapoints").unwrap().as_array().unwrap()[0]
                .get("cycles")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    #[test]
    fn parser_reads_documents_written_before_the_v5_bump() {
        // v3: a registry document with a sampling block but none of the
        // v4 `profile_*`/`health_*`/`reorder_*` sets. Same field names
        // and shapes; only the version differs — the 2→3→4→5 ladder
        // stays readable end to end.
        let (v3, doc) = MetricsRegistry::parse_document(
            "{\"schema_version\":3,\"figure\":\"9\",\
             \"samples\":{\"jain\":[1.0,0.5],\"per_core\":[]}}",
        )
        .unwrap();
        assert_eq!(v3, 3);
        let jain = doc.get("samples").unwrap().get("jain").unwrap();
        assert_eq!(jain.as_array().unwrap().len(), 2);
        // v4: a health-plane document written before the v5 bump.
        let (v4, doc) = MetricsRegistry::parse_document(
            "{\"schema_version\":4,\"health_alerts_total\":2,\
             \"profile_nf_share\":0.75}",
        )
        .unwrap();
        assert_eq!(v4, 4);
        assert_eq!(doc.get("health_alerts_total").unwrap().as_u64(), Some(2));
        // v5: current documents self-describe and parse back.
        let (v5, doc) = MetricsRegistry::parse_document(
            "{\"schema_version\":5,\"tail_exemplars\":3,\
             \"flight_frozen\":1,\"trace_events_dropped\":0}",
        )
        .unwrap();
        assert_eq!(v5, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(doc.get("tail_exemplars").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn parser_rejects_future_versions_and_junk() {
        assert!(MetricsRegistry::parse_document("{\"schema_version\":6}").is_err());
        assert!(MetricsRegistry::parse_document("{\"schema_version\":-1}").is_err());
        assert!(MetricsRegistry::parse_document("[1,2]").is_err());
        assert!(MetricsRegistry::parse_document("{\"unterminated").is_err());
    }

    #[test]
    fn values_serialize_by_type() {
        let mut r = MetricsRegistry::new();
        r.set_u64("n", 3);
        r.set_f64("x", 2.5);
        r.set_f64("bad", f64::NAN);
        r.set_str("s", "a\"b");
        r.set_raw_json("obj", "{\"k\":1}".to_string());
        let j = r.to_json();
        assert!(j.contains("\"n\":3"));
        assert!(j.contains("\"x\":2.5"));
        assert!(j.contains("\"bad\":null"));
        assert!(j.contains("\"s\":\"a\\\"b\""));
        assert!(j.contains("\"obj\":{\"k\":1}"));
    }

    #[test]
    fn setting_twice_overwrites_in_place() {
        let mut r = MetricsRegistry::new();
        r.set_u64("a", 1);
        r.set_u64("b", 2);
        r.set_u64("a", 9);
        assert_eq!(r.len(), 2);
        let j = r.to_json();
        assert!(j.contains("\"a\":9"));
        assert!(j.find("\"a\"").unwrap() < j.find("\"b\"").unwrap());
    }

    #[test]
    fn histograms_embed_as_objects() {
        let mut h = Histogram::new(6);
        h.record(42);
        let mut r = MetricsRegistry::new();
        r.set_histogram("lat", &h);
        let j = r.to_json();
        assert!(j.contains("\"lat\":{\"sub_bits\":6"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
