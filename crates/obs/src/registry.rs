//! A versioned, ordered metrics snapshot.
//!
//! [`MetricsRegistry`] is the one way experiment binaries build their
//! telemetry JSON: insertion-ordered `name → value` pairs serialized as
//! a single object whose first field is always `"schema_version"`.
//! Values can be integers, floats, strings, pre-serialized JSON blocks
//! (e.g. `MiddleboxStats::to_json`), or [`Histogram`]s.

use crate::hist::Histogram;

/// Version of the telemetry JSON documents the benches emit.
///
/// * v1 — the ad-hoc `results/fig{6,7}_telemetry.json` lines (no
///   version field).
/// * v2 — registry-built documents: every record carries
///   `"schema_version": 2`; existing field names are unchanged and new
///   records may add histogram blocks.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 2;

#[derive(Debug, Clone)]
enum Value {
    U64(u64),
    F64(f64),
    Str(String),
    /// Pre-serialized JSON, embedded verbatim.
    Raw(String),
}

/// Insertion-ordered name→value snapshot serializing to one JSON object.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Value)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn set(&mut self, name: &str, value: Value) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 = value;
        } else {
            self.entries.push((name.to_string(), value));
        }
    }

    /// Set an integer metric.
    pub fn set_u64(&mut self, name: &str, value: u64) {
        self.set(name, Value::U64(value));
    }

    /// Set a float metric (serialized as `null` if non-finite).
    pub fn set_f64(&mut self, name: &str, value: f64) {
        self.set(name, Value::F64(value));
    }

    /// Set a string metric.
    pub fn set_str(&mut self, name: &str, value: &str) {
        self.set(name, Value::Str(value.to_string()));
    }

    /// Embed a pre-serialized JSON value verbatim (object, array, …).
    pub fn set_raw_json(&mut self, name: &str, json: String) {
        self.set(name, Value::Raw(json));
    }

    /// Embed a histogram (via [`Histogram::to_json`]).
    pub fn set_histogram(&mut self, name: &str, hist: &Histogram) {
        self.set(name, Value::Raw(hist.to_json()));
    }

    /// Number of metrics set (excluding the implicit version field).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no metrics were set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize as one JSON object, `"schema_version"` first, then the
    /// metrics in insertion order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + 32 * self.entries.len());
        let _ = write!(s, "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}");
        for (name, value) in &self.entries {
            s.push(',');
            s.push('"');
            escape_into(&mut s, name);
            s.push_str("\":");
            match value {
                Value::U64(v) => {
                    let _ = write!(s, "{v}");
                }
                Value::F64(v) if v.is_finite() => {
                    let _ = write!(s, "{v}");
                }
                Value::F64(_) => s.push_str("null"),
                Value::Str(v) => {
                    s.push('"');
                    escape_into(&mut s, v);
                    s.push('"');
                }
                Value::Raw(v) => s.push_str(v),
            }
        }
        s.push('}');
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_comes_first_and_order_is_preserved() {
        let mut r = MetricsRegistry::new();
        r.set_str("figure", "6a");
        r.set_u64("cycles", 10_000);
        r.set_f64("mpps", 1.5);
        let j = r.to_json();
        assert!(j.starts_with("{\"schema_version\":2,\"figure\":\"6a\""));
        let ci = j.find("\"cycles\"").unwrap();
        let mi = j.find("\"mpps\"").unwrap();
        assert!(ci < mi);
    }

    #[test]
    fn values_serialize_by_type() {
        let mut r = MetricsRegistry::new();
        r.set_u64("n", 3);
        r.set_f64("x", 2.5);
        r.set_f64("bad", f64::NAN);
        r.set_str("s", "a\"b");
        r.set_raw_json("obj", "{\"k\":1}".to_string());
        let j = r.to_json();
        assert!(j.contains("\"n\":3"));
        assert!(j.contains("\"x\":2.5"));
        assert!(j.contains("\"bad\":null"));
        assert!(j.contains("\"s\":\"a\\\"b\""));
        assert!(j.contains("\"obj\":{\"k\":1}"));
    }

    #[test]
    fn setting_twice_overwrites_in_place() {
        let mut r = MetricsRegistry::new();
        r.set_u64("a", 1);
        r.set_u64("b", 2);
        r.set_u64("a", 9);
        assert_eq!(r.len(), 2);
        let j = r.to_json();
        assert!(j.contains("\"a\":9"));
        assert!(j.find("\"a\"").unwrap() < j.find("\"b\"").unwrap());
    }

    #[test]
    fn histograms_embed_as_objects() {
        let mut h = Histogram::new(6);
        h.record(42);
        let mut r = MetricsRegistry::new();
        r.set_histogram("lat", &h);
        let j = r.to_json();
        assert!(j.contains("\"lat\":{\"sub_bits\":6"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
