//! Log-linear (HDR-style) histograms over `u64` values.
//!
//! Values below `2^sub_bits` get exact unit-width buckets; above that,
//! each power-of-two octave is split into `2^sub_bits` equal sub-buckets,
//! bounding the relative quantization error by `2^-sub_bits`. This is the
//! classic HdrHistogram layout, sized here for full `u64` range with a
//! few KiB of counters.
//!
//! The batch-size bucket math used by `sprayer::stats::CoreStats` lives
//! here too ([`batch_bucket`]) and is defined *in terms of* the same
//! octave indexing, with a unit test pinning the correspondence — the
//! two bucketings cannot drift apart.

use serde::{Deserialize, Serialize};

/// Number of buckets in a `CoreStats::batch_hist` batch-size histogram.
pub const BATCH_HIST_BUCKETS: usize = 8;

/// Lower bound of each batch-size bucket (for labeling).
pub const BATCH_BUCKET_LO: [u64; BATCH_HIST_BUCKETS] = [1, 2, 3, 5, 9, 17, 33, 65];

/// Bucket index for a batch of `n` packets: 1, 2, 3–4, 5–8, 9–16, 17–32,
/// 33–64, ≥65 — i.e. octaves of `n - 1`, clamped to the last bucket.
pub fn batch_bucket(n: u64) -> usize {
    if n <= 1 {
        0
    } else {
        ((64 - (n - 1).leading_zeros()) as usize).min(BATCH_HIST_BUCKETS - 1)
    }
}

/// A log-linear histogram of `u64` samples.
///
/// `sub_bits` trades memory for precision: percentiles are exact below
/// `2^sub_bits` and within a relative error of `2^-sub_bits` above.
/// The default ([`Histogram::DEFAULT_SUB_BITS`] = 6) gives ≤1.6% error
/// in ~30 KiB — ample for latency distributions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Sub-bucket resolution used by the runtimes' latency probes.
    pub const DEFAULT_SUB_BITS: u32 = 6;

    /// An empty histogram with `2^sub_bits` sub-buckets per octave.
    /// `sub_bits` must be below 64.
    pub fn new(sub_bits: u32) -> Self {
        assert!(sub_bits < 64, "sub_bits must leave room for octaves");
        // Highest index: value u64::MAX has msb 63, shift 63 - sub_bits,
        // block shift+1 — so (64 - sub_bits) blocks beyond the linear one.
        let len = ((64 - sub_bits as usize) + 1) << sub_bits;
        Histogram {
            sub_bits,
            counts: vec![0; len],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// An empty histogram at the default resolution.
    pub fn latency() -> Self {
        Histogram::new(Self::DEFAULT_SUB_BITS)
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_index(&self, value: u64) -> usize {
        let sub = 1u64 << self.sub_bits;
        if value < sub {
            value as usize
        } else {
            let msb = 63 - u64::from(value.leading_zeros());
            let shift = msb - u64::from(self.sub_bits);
            (((shift + 1) << self.sub_bits) + ((value >> shift) - sub)) as usize
        }
    }

    /// The half-open value range `[lo, hi)` covered by bucket `index`.
    pub fn bucket_bounds(&self, index: usize) -> (u64, u64) {
        let sub = 1u64 << self.sub_bits;
        let block = index >> self.sub_bits;
        if block == 0 {
            (index as u64, index as u64 + 1)
        } else {
            let pos = (index as u64) & (sub - 1);
            let shift = (block - 1) as u32;
            let lo = (sub + pos) << shift;
            (lo, lo.saturating_add(1u64 << shift))
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `count` samples of the same value.
    #[inline]
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = self.bucket_index(value);
        self.counts[idx] += count;
        self.total += count;
        self.sum += u128::from(value) * u128::from(count);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean of recorded values, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The value at quantile `q` (0.0..=1.0): the smallest bucket whose
    /// cumulative count reaches `ceil(q * count)`, reported as the
    /// midpoint of the bucket's representable values (exact in the
    /// linear region). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = self.bucket_bounds(i);
                // Midpoint of representable values, clamped to what was
                // actually observed so min/max stay authoritative.
                let mid = lo + (hi - 1 - lo) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// The standard summary statistics in one struct, or `None` when
    /// the histogram is empty — callers never see garbage sentinels
    /// (`min` starts at `u64::MAX` internally) or a fake zero quantile.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.total == 0 {
            return None;
        }
        Some(HistogramSummary {
            count: self.total,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: self.sum as f64 / self.total as f64,
            p50: self.quantile(0.50).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            p999: self.quantile(0.999).unwrap_or(0),
        })
    }

    /// Fold `other` into `self`. Panics if resolutions differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms of different resolution"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_bounds(i).0, c))
            .collect()
    }

    /// Serialize as a JSON object with sparse buckets. Field names are
    /// part of the telemetry schema — keep them stable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"sub_bits\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
            self.sub_bits,
            self.total,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.p50().unwrap_or(0),
            self.p99().unwrap_or(0),
            self.p999().unwrap_or(0),
        );
        for (i, (lo, c)) in self.nonzero_buckets().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{lo},{c}]");
        }
        s.push_str("]}");
        s
    }
}

/// The standard summary statistics of a non-empty [`Histogram`]
/// (obtained via [`Histogram::summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples (> 0 by construction).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u128,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Mean of recorded values.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// The standard per-packet latency histograms both runtimes populate
/// when `ObsConfig::latency` is on. All values are **nanoseconds** —
/// simulated time in the simulator, wall time in the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyProbes {
    /// Ingress enqueue → NF completion, one sample per processed packet.
    pub sojourn_ns: Histogram,
    /// Ingress enqueue → NF start, for packets processed where they
    /// arrived (redirected packets are covered by `redirect_ns`).
    pub queue_wait_ns: Histogram,
    /// Redirect push → ring pickup on the designated core, one sample
    /// per consumed redirect.
    pub redirect_ns: Histogram,
}

impl LatencyProbes {
    /// Empty probes at the default resolution.
    pub fn new() -> Self {
        LatencyProbes {
            sojourn_ns: Histogram::latency(),
            queue_wait_ns: Histogram::latency(),
            redirect_ns: Histogram::latency(),
        }
    }

    /// Fold `other`'s samples into `self`.
    pub fn merge(&mut self, other: &LatencyProbes) {
        self.sojourn_ns.merge(&other.sojourn_ns);
        self.queue_wait_ns.merge(&other.queue_wait_ns);
        self.redirect_ns.merge(&other.redirect_ns);
    }

    /// Serialize the three histograms as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sojourn_ns\":{},\"queue_wait_ns\":{},\"redirect_ns\":{}}}",
            self.sojourn_ns.to_json(),
            self.queue_wait_ns.to_json(),
            self.redirect_ns.to_json()
        )
    }
}

impl Default for LatencyProbes {
    fn default() -> Self {
        LatencyProbes::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let h = Histogram::new(6);
        for v in 0..64u64 {
            assert_eq!(h.bucket_index(v), v as usize);
            assert_eq!(h.bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bucket_bounds_invert_index_for_all_octaves() {
        for sub_bits in [0u32, 1, 4, 6] {
            let h = Histogram::new(sub_bits);
            // Every bucket's own bounds must map back to that bucket.
            let len = ((64 - sub_bits as usize) + 1) << sub_bits;
            for i in 0..len {
                let (lo, hi) = h.bucket_bounds(i);
                assert_eq!(h.bucket_index(lo), i, "sub_bits={sub_bits} lo of {i}");
                assert_eq!(h.bucket_index(hi - 1), i, "sub_bits={sub_bits} hi-1 of {i}");
            }
        }
    }

    #[test]
    fn boundary_values_land_in_the_right_bucket() {
        let h = Histogram::new(2); // octaves split in 4
                                   // Linear: 0..4 exact; first octave block covers [4,8) in 4 buckets.
        assert_eq!(h.bucket_index(3), 3);
        assert_eq!(h.bucket_index(4), 4);
        assert_eq!(h.bucket_index(5), 5);
        assert_eq!(h.bucket_index(7), 7);
        // Next octave [8,16): width-2 buckets.
        assert_eq!(h.bucket_index(8), 8);
        assert_eq!(h.bucket_index(9), 8);
        assert_eq!(h.bucket_index(10), 9);
        assert_eq!(h.bucket_bounds(8), (8, 10));
        // Extremes.
        assert_eq!(h.bucket_index(u64::MAX), h.counts.len() - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new(6);
        for &v in &[100u64, 1_000, 12_345, 999_999, 1 << 40, u64::MAX / 3] {
            let (lo, hi) = h.bucket_bounds(h.bucket_index(v));
            assert!(lo <= v && v < hi);
            let width = (hi - lo) as f64;
            assert!(
                width / (lo.max(1) as f64) <= 1.0 / 64.0 + 1e-12,
                "bucket [{lo},{hi}) too wide for {v}"
            );
        }
    }

    #[test]
    fn count_sum_min_max_mean() {
        let mut h = Histogram::new(6);
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        h.record(10);
        h.record(20);
        h.record_n(30, 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 90);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
        assert_eq!(h.mean(), Some(22.5));
    }

    #[test]
    fn exact_quantiles_in_linear_region() {
        let mut h = Histogram::new(6);
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(25));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(50));
        assert_eq!(h.p99(), Some(50));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new(4);
        // A spread of values across several octaves.
        for i in 0..1_000u64 {
            h.record(i * i % 100_000);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {vals:?}");
        }
        // And bracketed by min/max.
        assert!(vals[0] >= h.min().unwrap());
        assert!(*vals.last().unwrap() <= h.max().unwrap());
    }

    #[test]
    fn quantile_respects_relative_error() {
        let mut h = Histogram::new(6);
        for v in [1_000u64, 2_000, 4_000, 8_000, 16_000] {
            h.record_n(v, 100);
        }
        for (q, exact) in [(0.19, 1_000u64), (0.39, 2_000), (0.99, 16_000)] {
            let got = h.quantile(q).unwrap() as f64;
            let rel = (got - exact as f64).abs() / exact as f64;
            assert!(rel <= 1.0 / 64.0, "q={q}: got {got}, want ~{exact}");
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::new(6);
        let mut b = Histogram::new(6);
        let mut all = Histogram::new(6);
        for v in 0..500u64 {
            let x = v * 37 % 10_000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "different resolution")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = Histogram::new(6);
        a.merge(&Histogram::new(4));
    }

    #[test]
    fn json_has_stable_fields_and_sparse_buckets() {
        let mut h = Histogram::new(6);
        h.record(5);
        h.record_n(1_000, 3);
        let j = h.to_json();
        for key in [
            "\"sub_bits\":6",
            "\"count\":4",
            "\"min\":5",
            "\"max\":1000",
            "\"buckets\":[[5,1],[",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn batch_buckets_partition_sizes() {
        // The exact partition the serialized `batch_hist` fields rely on.
        assert_eq!(batch_bucket(0), 0);
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(5), 3);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(16), 4);
        assert_eq!(batch_bucket(32), 5);
        assert_eq!(batch_bucket(64), 6);
        assert_eq!(batch_bucket(65), 7);
        assert_eq!(batch_bucket(10_000), 7);
        for (i, &lo) in BATCH_BUCKET_LO.iter().enumerate() {
            assert_eq!(batch_bucket(lo), i);
        }
    }

    #[test]
    fn batch_bucket_is_the_octave_index() {
        // batch_bucket(n) is exactly this crate's octave indexing of
        // n - 1 at sub_bits = 0, clamped to 8 buckets: the bucket math
        // cannot drift from the histogram's.
        let h = Histogram::new(0);
        for n in 1..=200u64 {
            assert_eq!(
                batch_bucket(n),
                h.bucket_index(n - 1).min(BATCH_HIST_BUCKETS - 1),
                "n={n}"
            );
        }
    }

    #[test]
    fn empty_histogram_yields_none_everywhere() {
        // Pins the empty-histogram contract: every accessor that would
        // otherwise expose the internal sentinels (min = u64::MAX,
        // max = 0) reports None instead, for all quantiles.
        let h = Histogram::latency();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.summary(), None);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn empty_histogram_serializes_zeroed_not_sentinel() {
        let j = Histogram::latency().to_json();
        for key in [
            "\"count\":0",
            "\"min\":0",
            "\"max\":0",
            "\"p50\":0",
            "\"p99\":0",
            "\"p999\":0",
            "\"buckets\":[]",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(!j.contains(&u64::MAX.to_string()), "sentinel leaked: {j}");
    }

    #[test]
    fn summary_matches_accessors_when_nonempty() {
        let mut h = Histogram::new(6);
        h.record(10);
        h.record(20);
        h.record_n(30, 2);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 90);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert_eq!(s.mean, 22.5);
        assert_eq!(Some(s.p50), h.p50());
        assert_eq!(Some(s.p99), h.p99());
        assert_eq!(Some(s.p999), h.p999());
    }

    /// Deterministic splitmix64 stream for property-style tests.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Samples spanning the linear region, the log region, and the
    /// extremes, so bucket-boundary math is exercised on every run.
    fn generated_samples(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|i| match i % 4 {
                0 => splitmix64(&mut state) % 64, // linear buckets
                1 => splitmix64(&mut state) % 100_000,
                2 => splitmix64(&mut state), // anywhere in u64
                _ => [0, 1, u64::MAX][(splitmix64(&mut state) % 3) as usize],
            })
            .collect()
    }

    #[test]
    fn percentiles_are_monotone_on_generated_samples() {
        for seed in [1, 7, 0xdead_beef, 0x1234_5678_9abc_def0] {
            for n in [1usize, 2, 3, 64, 1_000] {
                let mut h = Histogram::latency();
                for v in generated_samples(seed, n) {
                    h.record(v);
                }
                let p50 = h.p50().unwrap();
                let p90 = h.quantile(0.90).unwrap();
                let p99 = h.p99().unwrap();
                let p999 = h.p999().unwrap();
                assert!(
                    p50 <= p90 && p90 <= p99 && p99 <= p999,
                    "seed {seed} n {n}: {p50} {p90} {p99} {p999}"
                );
                assert!(h.quantile(0.0).unwrap() <= p50);
                assert!(p999 <= h.quantile(1.0).unwrap());
            }
        }
        // Empty histogram: every quantile declines to answer.
        let empty = Histogram::latency();
        assert_eq!(empty.p50(), None);
        assert_eq!(empty.p999(), None);
        assert_eq!(empty.quantile(1.0), None);
        // Single-bucket input: the order collapses to one value.
        let mut one = Histogram::latency();
        one.record_n(42, 1_000);
        assert_eq!(one.p50(), one.p999());
        assert_eq!(one.p50(), Some(42));
    }

    #[test]
    fn merge_is_commutative_on_generated_samples() {
        let cases: [(u64, usize, u64, usize); 4] = [
            (3, 100, 11, 257),
            (5, 1, 6, 1),
            (9, 0, 10, 50), // one side empty
            (13, 0, 14, 0), // both empty
        ];
        for (seed_a, n_a, seed_b, n_b) in cases {
            let mut a = Histogram::latency();
            for v in generated_samples(seed_a, n_a) {
                a.record(v);
            }
            let mut b = Histogram::latency();
            for v in generated_samples(seed_b, n_b) {
                b.record(v);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab.count(), ba.count());
            assert_eq!(ab.sum(), ba.sum());
            assert_eq!(ab.min(), ba.min());
            assert_eq!(ab.max(), ba.max());
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(ab.quantile(q), ba.quantile(q), "q={q}");
            }
            assert_eq!(ab.to_json(), ba.to_json(), "bucket contents differ");
        }
    }

    #[test]
    fn probes_merge_and_serialize() {
        let mut a = LatencyProbes::new();
        a.sojourn_ns.record(1_000);
        let mut b = LatencyProbes::new();
        b.sojourn_ns.record(2_000);
        b.redirect_ns.record(300);
        a.merge(&b);
        assert_eq!(a.sojourn_ns.count(), 2);
        assert_eq!(a.redirect_ns.count(), 1);
        let j = a.to_json();
        assert!(j.contains("\"sojourn_ns\":{"));
        assert!(j.contains("\"queue_wait_ns\":{"));
        assert!(j.contains("\"redirect_ns\":{"));
    }
}
