//! Bounded per-core trace rings and the assembled [`Trace`].
//!
//! Each core (and the ingress thread of the threaded runtime) owns one
//! [`TraceRing`] outright, so recording is lock-free by construction: a
//! bounds check and a write into the current storage chunk. When a ring
//! fills, new events are counted in [`TraceRing::dropped`] and discarded
//! — keep-oldest, so a trace's prefix is always contiguous and tracing
//! can stay enabled under overload without unbounded memory.

use crate::event::{EventKind, TraceEvent};
use serde::{Deserialize, Serialize};

/// Events per storage chunk. Sized so a chunk (~96 KiB) stays below
/// glibc's mmap threshold: chunk allocations are served from recycled
/// heap pages instead of fresh zero-fill mappings, which is what makes
/// recording cheap for short captures (a single up-front reserve of the
/// full multi-MB capacity costs a page fault per 4 KiB touched, every
/// run; so does letting a `Vec` double its way up through fresh mmaps).
const CHUNK: usize = 2048;

/// A bounded, drop-counting event buffer owned by a single core.
///
/// Storage is a sequence of fixed-size chunks allocated on demand, so
/// recording never reallocates (no copies) and short runs never touch
/// cold pages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRing {
    capacity: usize,
    len: usize,
    chunks: Vec<Vec<TraceEvent>>,
    dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            len: 0,
            chunks: Vec::new(),
            dropped: 0,
        }
    }

    /// Record an event; returns false (and counts a drop) if full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) -> bool {
        if self.len >= self.capacity {
            self.dropped += 1;
            return false;
        }
        if self.len.is_multiple_of(CHUNK) {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        // The last chunk exists and has spare capacity by construction.
        self.chunks.last_mut().expect("chunk pushed above").push(ev);
        self.len += 1;
        true
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The aggregate counters the producing runtime reported at capture
/// time (from `MiddleboxStats`) — the ground truth the analyzer's
/// conservation check compares trace-derived counts against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpectedCounts {
    /// Packets offered by the traffic source.
    pub offered: u64,
    /// Packets the NF processed (forwarded + NF drops).
    pub processed: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped by NF verdict.
    pub nf_drops: u64,
    /// NIC Flow Director cap drops.
    pub nic_cap_drops: u64,
    /// Receive-queue overflow drops.
    pub queue_drops: u64,
    /// Inter-core ring overflow drops.
    pub ring_drops: u64,
    /// Redirects sent (consumed or dropped).
    pub redirects: u64,
}

/// Capture metadata carried alongside the events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Producing runtime: `"sim"` or `"threads"`.
    pub runtime: String,
    /// Timestamp ticks per microsecond: the simulator stamps
    /// picoseconds of simulated time (1_000_000), the threaded runtime
    /// nanoseconds of wall time since the run started (1_000).
    pub ticks_per_us: u64,
    /// Number of cores (workers) in the run.
    pub num_cores: usize,
    /// The runtime's own aggregate counters at capture time.
    pub expected: Option<ExpectedCounts>,
}

/// A complete captured trace: merged per-core rings in global
/// sequence order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Capture metadata.
    pub meta: TraceMeta,
    /// All events, sorted by [`TraceEvent::seq`].
    pub events: Vec<TraceEvent>,
    /// Events lost to full rings across all cores. When nonzero the
    /// trace is a prefix sample and conservation checks are advisory.
    pub dropped: u64,
}

impl Trace {
    /// Merge per-core rings into one globally ordered trace.
    pub fn assemble(meta: TraceMeta, rings: Vec<TraceRing>) -> Trace {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(rings.iter().map(|r| r.len()).sum());
        let mut dropped = 0;
        for ring in rings {
            dropped += ring.dropped;
            for chunk in ring.chunks {
                events.extend(chunk);
            }
        }
        events.sort_unstable_by_key(|e| e.seq);
        Trace {
            meta,
            events,
            dropped,
        }
    }

    /// Event counts indexed by `EventKind as usize`.
    pub fn counts_by_kind(&self) -> [u64; EventKind::ALL.len()] {
        let mut counts = [0u64; EventKind::ALL.len()];
        for ev in &self.events {
            counts[ev.kind as usize] += 1;
        }
        counts
    }

    /// Count of events of one kind.
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.counts_by_kind()[kind as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            ts: seq * 10,
            core: 0,
            kind,
            flow: 1,
            pkt: seq,
            aux: 0,
        }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = TraceRing::new(2);
        assert!(r.push(ev(0, EventKind::IngressEnqueue)));
        assert!(r.push(ev(1, EventKind::NfDone)));
        assert!(!r.push(ev(2, EventKind::NfDone)));
        assert!(!r.push(ev(3, EventKind::NfDone)));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn assemble_merges_in_sequence_order() {
        let mut a = TraceRing::new(8);
        let mut b = TraceRing::new(8);
        a.push(ev(0, EventKind::IngressEnqueue));
        a.push(ev(3, EventKind::NfDone));
        b.push(ev(1, EventKind::IngressEnqueue));
        b.push(ev(2, EventKind::NfDone));
        let meta = TraceMeta {
            runtime: "sim".into(),
            ticks_per_us: 1_000_000,
            num_cores: 2,
            expected: None,
        };
        let t = Trace::assemble(meta, vec![a, b]);
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(t.count_of(EventKind::NfDone), 2);
        assert_eq!(t.dropped, 0);
    }
}
