//! Bounded, downsampling time-series storage for periodic per-core
//! samples.
//!
//! A [`TimeSeries`] is a vector of [`CoreSample`] delta buckets over a
//! fixed-width time grid: bucket `i` covers ticks
//! `[i·interval, (i+1)·interval)`. Recording is an index computation and
//! a field increment — no clock discipline, no flushing: every increment
//! lands in exactly one bucket, so the series is *conservative by
//! construction* (the sum over all buckets equals the lifetime totals,
//! the property `crates/core/tests/properties.rs` pins against
//! `MiddleboxStats`).
//!
//! Memory is bounded: when a tick falls past the last representable
//! bucket, the series **downsamples** — adjacent bucket pairs merge and
//! the interval doubles — so a series covers any run length in at most
//! `capacity` buckets, trading resolution for span exactly like a
//! log-linear histogram trades it for range. Runtimes pick the tick
//! source ([`TimeSeries::record`] is tick-unit agnostic): the simulator
//! records simulated-time picoseconds, the threaded runtime wall-clock
//! nanoseconds.

use serde::{Deserialize, Serialize};

/// Delta counters for one core over one sampling bucket.
///
/// All fields are *deltas* over the bucket's interval except the two
/// `_hwm` occupancy fields, which are high-water marks within the bucket
/// (and merge by `max`, like [`crate::Histogram`]'s of the same name in
/// `CoreStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSample {
    /// Packets the NF completed on this core in the bucket.
    pub processed: u64,
    /// Of those, packets forwarded (NF verdict Forward).
    pub forwarded: u64,
    /// Packets dropped by NF verdict.
    pub nf_drops: u64,
    /// Packets dropped on this core's receive-queue overflow.
    pub queue_drops: u64,
    /// Descriptors dropped on this core's ring overflow.
    pub ring_drops: u64,
    /// Packets bound for this core dropped at the NIC's rate cap.
    pub nic_cap_drops: u64,
    /// Redirected descriptors consumed from this core's ring.
    pub redirected_in: u64,
    /// Descriptors this core pushed toward foreign rings.
    pub redirected_out: u64,
    /// Receive-queue occupancy high-water mark within the bucket.
    pub rx_occupancy_hwm: u64,
    /// Inter-core ring occupancy high-water mark within the bucket.
    pub ring_occupancy_hwm: u64,
    /// Ticks this core spent busy within the bucket (simulator: modeled
    /// service time in picoseconds; threaded runtime: wall nanoseconds
    /// spent inside batch processing).
    pub busy_ticks: u64,
}

impl CoreSample {
    /// Fold `other` into `self`: counters add, high-water marks max.
    pub fn merge(&mut self, other: &CoreSample) {
        self.processed += other.processed;
        self.forwarded += other.forwarded;
        self.nf_drops += other.nf_drops;
        self.queue_drops += other.queue_drops;
        self.ring_drops += other.ring_drops;
        self.nic_cap_drops += other.nic_cap_drops;
        self.redirected_in += other.redirected_in;
        self.redirected_out += other.redirected_out;
        self.rx_occupancy_hwm = self.rx_occupancy_hwm.max(other.rx_occupancy_hwm);
        self.ring_occupancy_hwm = self.ring_occupancy_hwm.max(other.ring_occupancy_hwm);
        self.busy_ticks += other.busy_ticks;
    }

    /// Packets lost before the NF in this bucket.
    pub fn pre_nf_drops(&self) -> u64 {
        self.queue_drops + self.ring_drops + self.nic_cap_drops
    }
}

/// A bounded sequence of [`CoreSample`] buckets on a fixed tick grid
/// that doubles its interval (merging adjacent buckets) instead of
/// growing past `capacity`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    interval: u64,
    capacity: usize,
    buckets: Vec<CoreSample>,
}

impl TimeSeries {
    /// Default bucket budget per core (~35 KiB of counters).
    pub const DEFAULT_CAPACITY: usize = 512;

    /// An empty series with buckets of `interval` ticks, bounded to
    /// `capacity` buckets. `interval ≥ 1`, `capacity ≥ 2`.
    pub fn new(interval: u64, capacity: usize) -> Self {
        assert!(interval >= 1, "bucket interval must be positive");
        assert!(capacity >= 2, "downsampling needs at least two buckets");
        TimeSeries {
            interval,
            capacity,
            buckets: Vec::new(),
        }
    }

    /// Current bucket width in ticks (doubles on each downsample).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Maximum number of buckets this series will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buckets recorded so far (bucket `i` covers
    /// `[i·interval, (i+1)·interval)`).
    pub fn buckets(&self) -> &[CoreSample] {
        &self.buckets
    }

    /// Number of buckets recorded so far.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Apply `f` to the bucket covering `tick`, downsampling first if
    /// `tick` lies beyond the last representable bucket.
    #[inline]
    pub fn record(&mut self, tick: u64, f: impl FnOnce(&mut CoreSample)) {
        let mut idx = (tick / self.interval) as usize;
        while idx >= self.capacity {
            self.downsample();
            idx = (tick / self.interval) as usize;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, CoreSample::default());
        }
        f(&mut self.buckets[idx]);
    }

    /// Merge adjacent bucket pairs and double the interval. Conservative:
    /// bucket sums are unchanged.
    fn downsample(&mut self) {
        let merged = self.buckets.len().div_ceil(2);
        for i in 0..merged {
            let mut s = self.buckets[2 * i];
            if let Some(b) = self.buckets.get(2 * i + 1) {
                s.merge(b);
            }
            self.buckets[i] = s;
        }
        self.buckets.truncate(merged);
        self.interval *= 2;
    }

    /// Coarsen this series until its interval reaches `target` (which
    /// must be `interval · 2^k` for some `k ≥ 0` — intervals only ever
    /// double, so any two series that started on the same grid align).
    pub fn downsample_to(&mut self, target: u64) {
        assert!(
            target >= self.interval && target.is_multiple_of(self.interval),
            "target interval {target} unreachable from {}",
            self.interval
        );
        while self.interval < target {
            self.downsample();
        }
        assert_eq!(
            self.interval, target,
            "target must be a power-of-two multiple"
        );
    }

    /// Lifetime totals: every bucket merged into one sample. Equals what
    /// a single bucket covering the whole run would have recorded.
    pub fn total(&self) -> CoreSample {
        let mut t = CoreSample::default();
        for b in &self.buckets {
            t.merge(b);
        }
        t
    }

    /// Fold `other` into `self` bucket-wise, aligning intervals first
    /// (both are coarsened to the larger of the two). Both series must
    /// have started on a common grid (power-of-two-related intervals).
    pub fn merge(&mut self, other: &TimeSeries) {
        let target = self.interval.max(other.interval);
        self.downsample_to(target);
        let mut o = other.clone();
        o.downsample_to(target);
        if o.buckets.len() > self.buckets.len() {
            self.buckets.resize(o.buckets.len(), CoreSample::default());
        }
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            a.merge(b);
        }
        while self.buckets.len() > self.capacity {
            self.downsample();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_land_on_the_grid() {
        let mut s = TimeSeries::new(100, 8);
        s.record(0, |b| b.processed += 1);
        s.record(99, |b| b.processed += 1);
        s.record(100, |b| b.processed += 1);
        s.record(250, |b| b.processed += 1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.buckets()[0].processed, 2);
        assert_eq!(s.buckets()[1].processed, 1);
        assert_eq!(s.buckets()[2].processed, 1);
        assert_eq!(s.interval(), 100);
    }

    #[test]
    fn overflow_downsamples_instead_of_growing() {
        let mut s = TimeSeries::new(10, 4);
        for t in 0..8 {
            s.record(t * 10, |b| b.processed += 1);
        }
        // Eight base buckets forced interval 10 → 20: four merged pairs.
        assert_eq!(s.interval(), 20);
        assert_eq!(s.len(), 4);
        assert!(s.buckets().iter().all(|b| b.processed == 2));
        // A far-future tick forces several more doublings at once.
        s.record(10 * 1000, |b| b.processed += 1);
        assert!(s.len() <= 4);
        assert_eq!(s.total().processed, 9);
    }

    #[test]
    fn downsampling_is_conservative_and_maxes_hwms() {
        let mut s = TimeSeries::new(1, 2);
        for t in 0..1000u64 {
            s.record(t, |b| {
                b.processed += 1;
                b.queue_drops += u64::from(t % 7 == 0);
                b.rx_occupancy_hwm = b.rx_occupancy_hwm.max(t % 13);
            });
        }
        assert!(s.len() <= 2);
        let total = s.total();
        assert_eq!(total.processed, 1000);
        assert_eq!(
            total.queue_drops,
            (0..1000).filter(|t| t % 7 == 0).count() as u64
        );
        assert_eq!(total.rx_occupancy_hwm, 12);
    }

    #[test]
    fn downsample_to_aligns_series() {
        let mut a = TimeSeries::new(10, 64);
        let mut b = TimeSeries::new(10, 64);
        for t in 0..100 {
            a.record(t * 10, |s| s.processed += 1);
        }
        b.record(5, |s| s.processed += 1);
        // a has downsampled (100 buckets > 64): intervals differ now.
        assert!(a.interval() > b.interval());
        b.downsample_to(a.interval());
        assert_eq!(a.interval(), b.interval());
        assert_eq!(b.total().processed, 1);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn downsample_to_rejects_non_multiples() {
        let mut s = TimeSeries::new(10, 4);
        s.downsample_to(15);
    }

    #[test]
    fn merge_adds_bucketwise_after_alignment() {
        let mut a = TimeSeries::new(10, 8);
        let mut b = TimeSeries::new(10, 8);
        a.record(0, |s| s.processed += 3);
        a.record(25, |s| s.ring_drops += 1);
        b.record(5, |s| s.processed += 2);
        b.record(70, |s| s.queue_drops += 4);
        a.merge(&b);
        assert_eq!(a.total().processed, 5);
        assert_eq!(a.total().queue_drops, 4);
        assert_eq!(a.total().ring_drops, 1);
        assert_eq!(a.buckets()[0].processed, 5);
    }

    #[test]
    fn merge_aligns_mismatched_intervals() {
        let mut a = TimeSeries::new(10, 4);
        let mut b = TimeSeries::new(10, 4);
        for t in 0..16 {
            a.record(t * 10, |s| s.processed += 1);
        }
        b.record(0, |s| s.processed += 100);
        assert_eq!(a.interval(), 40);
        a.merge(&b);
        assert_eq!(a.total().processed, 116);
        assert_eq!(a.buckets()[0].processed, 104);
    }
}
