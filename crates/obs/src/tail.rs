//! Exemplar-based tail-latency attribution.
//!
//! Every completed packet whose sojourn exceeds a threshold is captured
//! as a *tail exemplar*: its per-stage span breakdown (queue wait /
//! classify / redirect transit / NF / TX — the [`TailStage`] taxonomy)
//! lands in a per-(stage, core) attribution table of log-linear
//! [`Histogram`]s. The table answers the question the end-to-end p999
//! cannot: *where* does the tail live — queue wait on RSS's one hot
//! core, redirect-ring transit under spraying, or the NF body itself.
//!
//! Spans are runtime-native ticks (model picoseconds in the simulator,
//! wall nanoseconds in the threaded runtime) and the runtimes construct
//! them so they **sum exactly to the packet's sojourn**; the per-stage
//! tick totals of a [`TailReport`] therefore partition the exemplars'
//! total sojourn, which is what lets `fig_tail` cross-check the online
//! table against the offline trace analyzer.
//!
//! The threshold is either *fixed* (a tick value from
//! `ObsConfig::tail_threshold_ticks`, offline-replicable) or *rolling*
//! (the sojourn p99, re-derived every [`TAIL_RECOMPUTE_EVERY`]
//! completions; no exemplars are captured before the first
//! recomputation).

use crate::hist::Histogram;
use crate::registry::MetricsRegistry;

/// Number of attribution stages.
pub const TAIL_STAGE_COUNT: usize = 5;

/// Completions between rolling-threshold recomputations.
pub const TAIL_RECOMPUTE_EVERY: u64 = 256;

/// The pipeline stages a tail exemplar's sojourn is attributed to.
///
/// This refines the profiler's `Stage` taxonomy for the latency view:
/// queue wait and redirect-ring transit — pure waiting, invisible to a
/// busy-time profiler — get their own stages, because they are exactly
/// where queueing tails live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStage {
    /// Arrival to the start of service (or, for a redirected packet, to
    /// its hand-off into the designated core's ring).
    QueueWait,
    /// Rx/parse/classify/dispatch framework time.
    Classify,
    /// Redirect push, ring residence, and dequeue on the designated
    /// core. Zero for packets processed where they arrived.
    RedirectTransit,
    /// The NF body.
    Nf,
    /// Transmit-side framework time.
    Tx,
}

impl TailStage {
    /// Every stage, in attribution order.
    pub const ALL: [TailStage; TAIL_STAGE_COUNT] = [
        TailStage::QueueWait,
        TailStage::Classify,
        TailStage::RedirectTransit,
        TailStage::Nf,
        TailStage::Tx,
    ];

    /// Stable name for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            TailStage::QueueWait => "queue_wait",
            TailStage::Classify => "classify",
            TailStage::RedirectTransit => "redirect_transit",
            TailStage::Nf => "nf",
            TailStage::Tx => "tx",
        }
    }

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            TailStage::QueueWait => 0,
            TailStage::Classify => 1,
            TailStage::RedirectTransit => 2,
            TailStage::Nf => 3,
            TailStage::Tx => 4,
        }
    }
}

/// One packet's per-stage span breakdown, runtime-native ticks. The
/// runtimes construct these so the fields sum exactly to the packet's
/// sojourn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailSpans {
    /// Arrival → service start (or → ring hand-off when redirected).
    pub queue_wait: u64,
    /// Framework classify/dispatch time.
    pub classify: u64,
    /// Redirect push + ring residence + dequeue; zero for local packets.
    pub redirect_transit: u64,
    /// NF body time.
    pub nf: u64,
    /// Transmit framework time.
    pub tx: u64,
}

impl TailSpans {
    /// The spans as a stage-indexed array.
    pub fn as_array(&self) -> [u64; TAIL_STAGE_COUNT] {
        [
            self.queue_wait,
            self.classify,
            self.redirect_transit,
            self.nf,
            self.tx,
        ]
    }

    /// Total sojourn: the spans partition it by construction.
    pub fn sojourn(&self) -> u64 {
        self.as_array().iter().sum()
    }
}

/// Per-core attribution cell: one histogram and one running tick total
/// per stage, over this core's exemplars.
#[derive(Debug, Clone)]
pub struct TailCoreTable {
    /// Exemplars completed on this core.
    pub exemplars: u64,
    /// Per-stage tick totals over this core's exemplars.
    pub ticks: [u64; TAIL_STAGE_COUNT],
    /// Per-stage span distributions over this core's exemplars.
    pub hists: [Histogram; TAIL_STAGE_COUNT],
}

impl TailCoreTable {
    fn new() -> Self {
        TailCoreTable {
            exemplars: 0,
            ticks: [0; TAIL_STAGE_COUNT],
            hists: std::array::from_fn(|_| Histogram::latency()),
        }
    }

    fn record(&mut self, spans: TailSpans) {
        self.exemplars += 1;
        for (stage, span) in spans.as_array().into_iter().enumerate() {
            self.ticks[stage] += span;
            self.hists[stage].record(span);
        }
    }

    fn merge(&mut self, other: &TailCoreTable) {
        self.exemplars += other.exemplars;
        for s in 0..TAIL_STAGE_COUNT {
            self.ticks[s] += other.ticks[s];
            self.hists[s].merge(&other.hists[s]);
        }
    }
}

/// The online tracker: feed it every completion's [`TailSpans`]; it
/// captures the slow ones into the per-(stage, core) table.
#[derive(Debug, Clone)]
pub struct TailTracker {
    threshold: u64,
    rolling: bool,
    since_recompute: u64,
    completions: u64,
    exemplars: u64,
    sojourn: Histogram,
    cores: Vec<TailCoreTable>,
}

impl TailTracker {
    /// A tracker over `num_cores` cores. `threshold_ticks == 0` selects
    /// the rolling-p99 mode; any other value is a fixed threshold (a
    /// completion is an exemplar iff `sojourn > threshold`).
    pub fn new(num_cores: usize, threshold_ticks: u64) -> Self {
        let rolling = threshold_ticks == 0;
        TailTracker {
            // Rolling mode captures nothing until the first p99 exists.
            threshold: if rolling { u64::MAX } else { threshold_ticks },
            rolling,
            since_recompute: 0,
            completions: 0,
            exemplars: 0,
            sojourn: Histogram::latency(),
            cores: (0..num_cores).map(|_| TailCoreTable::new()).collect(),
        }
    }

    /// The threshold currently in force (`u64::MAX` while a rolling
    /// tracker is still warming up).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Record one completion. `core` is where the NF ran.
    pub fn on_complete(&mut self, core: usize, spans: TailSpans) {
        let sojourn = spans.sojourn();
        self.completions += 1;
        self.sojourn.record(sojourn);
        if sojourn > self.threshold {
            self.exemplars += 1;
            if let Some(table) = self.cores.get_mut(core) {
                table.record(spans);
            }
        }
        if self.rolling {
            self.since_recompute += 1;
            if self.since_recompute >= TAIL_RECOMPUTE_EVERY {
                self.since_recompute = 0;
                self.threshold = self.sojourn.p99().unwrap_or(u64::MAX);
            }
        }
    }

    /// Package the table into a report.
    pub fn report(&self) -> TailReport {
        TailReport {
            threshold_ticks: self.threshold,
            rolling: self.rolling,
            completions: self.completions,
            exemplars: self.exemplars,
            sojourn: self.sojourn.clone(),
            per_core: self.cores.clone(),
        }
    }
}

/// One run's tail-attribution table, ready for export and rendering.
#[derive(Debug, Clone)]
pub struct TailReport {
    /// The threshold in force at the end of the run, ticks.
    pub threshold_ticks: u64,
    /// Whether the threshold was rolling (sojourn p99) or fixed.
    pub rolling: bool,
    /// Completions observed.
    pub completions: u64,
    /// Of those, captured exemplars (`sojourn > threshold`).
    pub exemplars: u64,
    /// Sojourn distribution over *all* completions, ticks.
    pub sojourn: Histogram,
    /// Per-core attribution cells, indexed by core.
    pub per_core: Vec<TailCoreTable>,
}

impl TailReport {
    /// Total ticks attributed to `stage` across cores.
    pub fn stage_ticks(&self, stage: TailStage) -> u64 {
        self.per_core.iter().map(|c| c.ticks[stage.index()]).sum()
    }

    /// Total attributed ticks — equals the exemplars' summed sojourn,
    /// because each exemplar's spans partition its sojourn.
    pub fn total_ticks(&self) -> u64 {
        TailStage::ALL
            .into_iter()
            .map(|s| self.stage_ticks(s))
            .sum()
    }

    /// `stage`'s share of the attributed tail time, `[0, 1]`.
    pub fn share(&self, stage: TailStage) -> f64 {
        let total = self.total_ticks();
        if total == 0 {
            0.0
        } else {
            self.stage_ticks(stage) as f64 / total as f64
        }
    }

    /// The stage holding the largest share of the tail (ties break in
    /// [`TailStage::ALL`] order).
    pub fn dominant_stage(&self) -> TailStage {
        TailStage::ALL
            .into_iter()
            .max_by_key(|s| self.stage_ticks(*s))
            .expect("ALL is non-empty")
    }

    /// The span distribution of `stage` merged across cores.
    pub fn stage_hist(&self, stage: TailStage) -> Histogram {
        let mut h = Histogram::latency();
        for c in &self.per_core {
            h.merge(&c.hists[stage.index()]);
        }
        h
    }

    /// Merge another report in (the threaded runtime produces one per
    /// worker). Keeps the larger threshold; meaningful mainly for fixed
    /// thresholds, where both sides agree anyway.
    pub fn merge(&mut self, other: &TailReport) {
        self.threshold_ticks = self.threshold_ticks.max(other.threshold_ticks);
        self.rolling |= other.rolling;
        self.completions += other.completions;
        self.exemplars += other.exemplars;
        self.sojourn.merge(&other.sojourn);
        if self.per_core.len() < other.per_core.len() {
            self.per_core
                .resize_with(other.per_core.len(), TailCoreTable::new);
        }
        for (mine, theirs) in self.per_core.iter_mut().zip(&other.per_core) {
            mine.merge(theirs);
        }
    }

    /// Write the `tail_*` metric set: threshold and counts, per-stage
    /// tick totals and shares, the merged per-stage span histograms,
    /// the full sojourn histogram, and the per-core table.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        use std::fmt::Write as _;
        reg.set_u64(
            "tail_threshold_ticks",
            if self.threshold_ticks == u64::MAX {
                0
            } else {
                self.threshold_ticks
            },
        );
        reg.set_u64("tail_rolling", u64::from(self.rolling));
        reg.set_u64("tail_completions", self.completions);
        reg.set_u64("tail_exemplars", self.exemplars);
        reg.set_f64(
            "tail_exemplar_share",
            if self.completions == 0 {
                0.0
            } else {
                self.exemplars as f64 / self.completions as f64
            },
        );
        reg.set_str("tail_dominant_stage", self.dominant_stage().as_str());
        let mut ticks = String::from("{");
        for (i, stage) in TailStage::ALL.into_iter().enumerate() {
            if i > 0 {
                ticks.push(',');
            }
            let _ = write!(ticks, "\"{}\":{}", stage.as_str(), self.stage_ticks(stage));
        }
        ticks.push('}');
        reg.set_raw_json("tail_stage_ticks", ticks);
        for stage in TailStage::ALL {
            reg.set_f64(&format!("tail_{}_share", stage.as_str()), self.share(stage));
            reg.set_histogram(
                &format!("tail_{}_hist", stage.as_str()),
                &self.stage_hist(stage),
            );
        }
        reg.set_histogram("tail_sojourn_hist", &self.sojourn);
        let mut cores = Vec::with_capacity(self.per_core.len());
        for (core, cell) in self.per_core.iter().enumerate() {
            let mut s = String::new();
            let _ = write!(s, "{{\"core\":{core},\"exemplars\":{}", cell.exemplars);
            for stage in TailStage::ALL {
                let _ = write!(
                    s,
                    ",\"{}_ticks\":{}",
                    stage.as_str(),
                    cell.ticks[stage.index()]
                );
            }
            s.push('}');
            cores.push(s);
        }
        reg.set_raw_json("tail_per_core", format!("[{}]", cores.join(",")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(queue_wait: u64, nf: u64) -> TailSpans {
        TailSpans {
            queue_wait,
            classify: 10,
            redirect_transit: 0,
            nf,
            tx: 5,
        }
    }

    #[test]
    fn fixed_threshold_captures_only_slow_completions() {
        let mut t = TailTracker::new(2, 1_000);
        t.on_complete(0, spans(10, 100)); // sojourn 125: fast
        t.on_complete(1, spans(5_000, 100)); // 5115: exemplar on core 1
        t.on_complete(1, spans(2_000, 100)); // 2115: exemplar on core 1
        let r = t.report();
        assert_eq!(r.completions, 3);
        assert_eq!(r.exemplars, 2);
        assert_eq!(r.per_core[0].exemplars, 0);
        assert_eq!(r.per_core[1].exemplars, 2);
        assert_eq!(r.stage_ticks(TailStage::QueueWait), 7_000);
        assert_eq!(r.stage_ticks(TailStage::Nf), 200);
        assert_eq!(r.dominant_stage(), TailStage::QueueWait);
    }

    #[test]
    fn stage_ticks_partition_the_exemplars_sojourn() {
        let mut t = TailTracker::new(1, 50);
        let mut expected = 0;
        for i in 0..20 {
            let s = spans(i * 17, i * 31);
            if s.sojourn() > 50 {
                expected += s.sojourn();
            }
            t.on_complete(0, s);
        }
        let r = t.report();
        assert_eq!(r.total_ticks(), expected);
        let shares: f64 = TailStage::ALL.into_iter().map(|s| r.share(s)).sum();
        assert!((shares - 1.0).abs() < 1e-9, "{shares}");
    }

    #[test]
    fn rolling_threshold_warms_up_then_tracks_p99() {
        let mut t = TailTracker::new(1, 0);
        assert_eq!(t.threshold(), u64::MAX);
        // A full recompute window of uniform completions: threshold
        // becomes their p99, later slow packets are captured.
        for _ in 0..TAIL_RECOMPUTE_EVERY {
            t.on_complete(0, spans(0, 85)); // sojourn 100
        }
        assert_eq!(t.report().exemplars, 0, "warmup captures nothing");
        assert!(t.threshold() < u64::MAX);
        t.on_complete(0, spans(100_000, 85));
        assert_eq!(t.report().exemplars, 1);
    }

    #[test]
    fn merge_accumulates_tables_and_histograms() {
        let mut a = TailTracker::new(2, 10);
        let mut b = TailTracker::new(2, 10);
        a.on_complete(0, spans(100, 0));
        b.on_complete(1, spans(0, 300));
        b.on_complete(0, spans(50, 0));
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.completions, 3);
        assert_eq!(r.exemplars, 3);
        assert_eq!(r.per_core[0].exemplars, 2);
        assert_eq!(r.per_core[1].exemplars, 1);
        assert_eq!(r.stage_ticks(TailStage::Nf), 300);
        assert_eq!(r.stage_hist(TailStage::QueueWait).count(), 3);
        assert_eq!(r.sojourn.count(), 3);
    }

    #[test]
    fn export_writes_the_tail_metric_set() {
        let mut t = TailTracker::new(2, 10);
        t.on_complete(1, spans(1_000, 2_000));
        let mut reg = MetricsRegistry::new();
        t.report().export(&mut reg);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("tail_exemplars").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("tail_completions").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("tail_rolling").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("tail_dominant_stage").unwrap().as_str(), Some("nf"));
        assert_eq!(
            doc.get("tail_stage_ticks")
                .unwrap()
                .get("queue_wait")
                .unwrap()
                .as_u64(),
            Some(1_000)
        );
        let cores = doc.get("tail_per_core").unwrap().as_array().unwrap();
        assert_eq!(cores.len(), 2);
        assert_eq!(cores[1].get("nf_ticks").unwrap().as_u64(), Some(2_000));
        assert!(doc.get("tail_sojourn_hist").unwrap().get("count").is_some());
    }

    #[test]
    fn empty_report_exports_zeroes_not_sentinels() {
        let t = TailTracker::new(1, 0);
        let mut reg = MetricsRegistry::new();
        t.report().export(&mut reg);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("tail_threshold_ticks").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("tail_exemplar_share").unwrap().as_f64(), Some(0.0));
    }
}
