//! The on-disk trace format.
//!
//! Line-oriented, self-describing, diff-friendly:
//!
//! * Line 1 — a JSON header: schema tag ([`TRACE_SCHEMA`]), runtime
//!   name, tick rate, core count, event/drop totals, and (when the
//!   capture recorded them) the runtime's aggregate counters for
//!   conservation checking.
//! * Lines 2.. — one event per line as
//!   `seq,ts,core,kind,flow,pkt,aux` CSV (kind by its stable name).
//!
//! [`parse`] is strict: an unknown schema tag, malformed event line, or
//! event-count mismatch against the header is an error, so `trace_report`
//! can fail CI on schema drift.

use crate::event::{EventKind, TraceEvent};
use crate::ring::{ExpectedCounts, Trace, TraceMeta};
use std::fmt::Write as _;

/// Schema identifier written to (and required in) every trace header.
pub const TRACE_SCHEMA: &str = "sprayer-trace/1";

/// Serialize a trace to the line-oriented format.
pub fn write_string(trace: &Trace) -> String {
    let mut s = String::with_capacity(64 + 32 * trace.events.len());
    let _ = write!(
        s,
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"runtime\":\"{}\",\"ticks_per_us\":{},\
         \"num_cores\":{},\"events\":{},\"events_dropped\":{}",
        trace.meta.runtime,
        trace.meta.ticks_per_us,
        trace.meta.num_cores,
        trace.events.len(),
        trace.dropped,
    );
    if let Some(e) = trace.meta.expected {
        let _ = write!(
            s,
            ",\"offered\":{},\"processed\":{},\"forwarded\":{},\"nf_drops\":{},\
             \"nic_cap_drops\":{},\"queue_drops\":{},\"ring_drops\":{},\"redirects\":{}",
            e.offered,
            e.processed,
            e.forwarded,
            e.nf_drops,
            e.nic_cap_drops,
            e.queue_drops,
            e.ring_drops,
            e.redirects,
        );
    }
    s.push_str("}\n");
    for ev in &trace.events {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{}",
            ev.seq,
            ev.ts,
            ev.core,
            ev.kind.as_str(),
            ev.flow,
            ev.pkt,
            ev.aux
        );
    }
    s
}

/// Extract an unsigned integer field from the (flat) JSON header line.
fn header_u64(header: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = header.find(&needle)? + needle.len();
    let rest = &header[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a string field from the (flat) JSON header line.
fn header_str<'a>(header: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = header.find(&needle)? + needle.len();
    let rest = &header[at..];
    Some(&rest[..rest.find('"')?])
}

/// Parse a trace previously produced by [`write_string`].
pub fn parse(input: &str) -> Result<Trace, String> {
    let mut lines = input.lines();
    let header = lines.next().ok_or_else(|| "empty trace file".to_string())?;
    match header_str(header, "schema") {
        Some(TRACE_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "unsupported trace schema {other:?} (want {TRACE_SCHEMA:?})"
            ))
        }
        None => return Err("header has no \"schema\" field".to_string()),
    }
    let runtime = header_str(header, "runtime")
        .ok_or("header missing \"runtime\"")?
        .to_string();
    let ticks_per_us =
        header_u64(header, "ticks_per_us").ok_or("header missing \"ticks_per_us\"")?;
    if ticks_per_us == 0 {
        return Err("ticks_per_us must be nonzero".to_string());
    }
    let num_cores = header_u64(header, "num_cores").ok_or("header missing \"num_cores\"")? as usize;
    let declared_events = header_u64(header, "events").ok_or("header missing \"events\"")?;
    let dropped =
        header_u64(header, "events_dropped").ok_or("header missing \"events_dropped\"")?;
    let expected = header_u64(header, "offered").map(|offered| ExpectedCounts {
        offered,
        processed: header_u64(header, "processed").unwrap_or(0),
        forwarded: header_u64(header, "forwarded").unwrap_or(0),
        nf_drops: header_u64(header, "nf_drops").unwrap_or(0),
        nic_cap_drops: header_u64(header, "nic_cap_drops").unwrap_or(0),
        queue_drops: header_u64(header, "queue_drops").unwrap_or(0),
        ring_drops: header_u64(header, "ring_drops").unwrap_or(0),
        redirects: header_u64(header, "redirects").unwrap_or(0),
    });

    let mut events = Vec::with_capacity(declared_events as usize);
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| format!("line {}: missing {what}", lineno + 2))
        };
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: bad {what} {s:?}", lineno + 2))
        };
        let seq = parse_u64(next("seq")?, "seq")?;
        let ts = parse_u64(next("ts")?, "ts")?;
        let core = parse_u64(next("core")?, "core")? as u16;
        let kind_s = next("kind")?;
        let kind = EventKind::parse(kind_s)
            .ok_or_else(|| format!("line {}: unknown event kind {kind_s:?}", lineno + 2))?;
        let flow = parse_u64(next("flow")?, "flow")?;
        let pkt = parse_u64(next("pkt")?, "pkt")?;
        let aux = parse_u64(next("aux")?, "aux")?;
        events.push(TraceEvent {
            seq,
            ts,
            core,
            kind,
            flow,
            pkt,
            aux,
        });
    }
    if events.len() as u64 != declared_events {
        return Err(format!(
            "header declares {declared_events} events but file has {}",
            events.len()
        ));
    }
    Ok(Trace {
        meta: TraceMeta {
            runtime,
            ticks_per_us,
            num_cores,
            expected,
        },
        events,
        dropped,
    })
}

/// Write a trace to `path`.
pub fn save(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, write_string(trace))
}

/// Load a trace from `path`.
pub fn load(path: &std::path::Path) -> Result<Trace, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(expected: bool) -> Trace {
        let events = vec![
            TraceEvent {
                seq: 0,
                ts: 100,
                core: 0,
                kind: EventKind::IngressEnqueue,
                flow: 42,
                pkt: 0,
                aux: 0,
            },
            TraceEvent {
                seq: 1,
                ts: 250,
                core: 0,
                kind: EventKind::NfDone,
                flow: 42,
                pkt: 0,
                aux: 0,
            },
        ];
        Trace {
            meta: TraceMeta {
                runtime: "sim".into(),
                ticks_per_us: 1_000_000,
                num_cores: 8,
                expected: expected.then_some(ExpectedCounts {
                    offered: 1,
                    processed: 1,
                    forwarded: 1,
                    nf_drops: 0,
                    nic_cap_drops: 0,
                    queue_drops: 0,
                    ring_drops: 0,
                    redirects: 0,
                }),
            },
            events,
            dropped: 3,
        }
    }

    #[test]
    fn round_trips_with_and_without_expected_counts() {
        for expected in [false, true] {
            let t = sample_trace(expected);
            let s = write_string(&t);
            assert!(s.starts_with("{\"schema\":\"sprayer-trace/1\""));
            let back = parse(&s).expect("parse");
            assert_eq!(back.meta, t.meta);
            assert_eq!(back.events, t.events);
            assert_eq!(back.dropped, 3);
        }
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_lines() {
        let t = sample_trace(false);
        let s = write_string(&t);
        let bad = s.replace("sprayer-trace/1", "sprayer-trace/9");
        assert!(parse(&bad)
            .unwrap_err()
            .contains("unsupported trace schema"));
        assert!(parse("not a header\n").unwrap_err().contains("schema"));
        let torn = s.replace("nf_done", "nf_exploded");
        assert!(parse(&torn).unwrap_err().contains("unknown event kind"));
    }

    #[test]
    fn rejects_event_count_mismatch() {
        let t = sample_trace(false);
        let s = write_string(&t);
        let truncated: String = s.lines().take(2).collect::<Vec<_>>().join("\n");
        let err = parse(&truncated).unwrap_err();
        assert!(err.contains("declares 2 events but file has 1"), "{err}");
    }
}
