//! Streaming per-flow reordering-depth estimation.
//!
//! The paper's whole trade is load balance *for* reordering; the
//! offline analyzer ([`crate::analyze`]) measures it exactly but only
//! after the run, from a full trace. [`ReorderSketch`] watches NF
//! completions live: per flow it keeps the largest arrival ordinal
//! completed so far plus a ring of the last `window` completed
//! ordinals — O(window) work and O(window) memory per flow, flow count
//! capped at `max_flows`.
//!
//! Guarantees, cross-validated by the `reorder_model` proptest against
//! the Fenwick analyzer:
//!
//! * the **reordered-packet count is exact** for tracked flows: a
//!   completion is reordered (offline depth > 0) iff its ordinal is
//!   smaller than the largest ordinal the flow completed before it,
//!   which one `u64` per flow decides;
//! * the **depth estimate never exceeds the true depth** (the window
//!   only ever sees a subset of the earlier completions);
//! * the estimate is **exact whenever every inversion spans fewer than
//!   `window` completions of that flow** — in particular whenever
//!   per-packet completion displacement is at most `window / 2`.
//!
//! The sketch timestamps nothing; ordinals are the runtime's global
//! per-packet ingress ids, strictly increasing in arrival order within
//! a flow, exactly what the offline analyzer inverts over.

use crate::hist::Histogram;
use crate::registry::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Log-linear resolution of the depth histogram (matches
/// [`Histogram::latency`]'s default so reports merge).
const DEPTH_HIST_SUB_BITS: u32 = 6;

#[derive(Debug, Clone)]
struct FlowReorder {
    /// Largest arrival ordinal completed so far.
    max_ord: u64,
    /// Completions observed.
    count: u64,
    /// Ring of the last `window` completed ordinals.
    recent: Vec<u64>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
}

impl FlowReorder {
    fn new(window: usize) -> Self {
        FlowReorder {
            max_ord: 0,
            count: 0,
            recent: Vec::with_capacity(window),
            next: 0,
        }
    }
}

/// Bounded online reordering estimator over one stream of NF
/// completions (one per simulator, one per shard in the threaded
/// runtime's [`SharedReorderSketch`]).
#[derive(Debug)]
pub struct ReorderSketch {
    window: usize,
    max_flows: usize,
    flows: HashMap<u64, FlowReorder>,
    depth_hist: Histogram,
    completions: u64,
    reordered: u64,
    untracked: u64,
    per_core: Vec<u64>,
}

impl ReorderSketch {
    /// A sketch keeping the last `window` completions per flow, for up
    /// to `max_flows` flows (completions of further flows are counted
    /// as `untracked` and otherwise ignored).
    pub fn new(window: usize, max_flows: usize) -> Self {
        ReorderSketch {
            window: window.max(1),
            max_flows: max_flows.max(1),
            flows: HashMap::new(),
            depth_hist: Histogram::new(DEPTH_HIST_SUB_BITS),
            completions: 0,
            reordered: 0,
            untracked: 0,
            per_core: Vec::new(),
        }
    }

    /// Record one NF completion of `flow`'s packet with arrival
    /// `ordinal`, observed on `core`. Returns the windowed depth
    /// estimate for this completion.
    pub fn on_complete(&mut self, core: usize, flow: u64, ordinal: u64) -> u64 {
        let tracked = self.flows.len();
        let st = match self.flows.entry(flow) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                if tracked >= self.max_flows {
                    self.untracked += 1;
                    return 0;
                }
                v.insert(FlowReorder::new(self.window))
            }
        };
        self.completions += 1;
        // Everything in the ring completed earlier; count overtakers.
        let depth = st.recent.iter().filter(|&&o| o > ordinal).count() as u64;
        if st.count > 0 && ordinal < st.max_ord {
            self.reordered += 1;
            if core >= self.per_core.len() {
                self.per_core.resize(core + 1, 0);
            }
            self.per_core[core] += 1;
        }
        st.max_ord = st.max_ord.max(ordinal);
        st.count += 1;
        if st.recent.len() < self.window {
            st.recent.push(ordinal);
        } else {
            st.recent[st.next] = ordinal;
        }
        st.next = (st.next + 1) % self.window;
        self.depth_hist.record(depth);
        depth
    }

    /// Completions recorded (tracked flows only).
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Completions whose ordinal was overtaken — exact, window-free.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Snapshot the aggregates into a report.
    pub fn report(&self) -> ReorderReport {
        ReorderReport {
            window: self.window,
            completions: self.completions,
            reordered: self.reordered,
            untracked: self.untracked,
            flows_tracked: self.flows.len() as u64,
            per_core: self.per_core.clone(),
            depth_hist: self.depth_hist.clone(),
        }
    }
}

/// Sharded wrapper for the threaded runtime: workers complete packets
/// concurrently, so flows are sharded over independently locked
/// sketches (a flow always lands in the same shard, which is all the
/// per-flow math needs; cross-flow aggregates merge at report time).
#[derive(Debug)]
pub struct SharedReorderSketch {
    shards: Vec<Mutex<ReorderSketch>>,
    mask: u64,
}

impl SharedReorderSketch {
    /// `shards` is rounded up to a power of two; `window`/`max_flows`
    /// apply per shard.
    pub fn new(window: usize, max_flows: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        SharedReorderSketch {
            shards: (0..n)
                .map(|_| Mutex::new(ReorderSketch::new(window, max_flows)))
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Record one completion (see [`ReorderSketch::on_complete`]).
    pub fn on_complete(&self, core: usize, flow: u64, ordinal: u64) -> u64 {
        // Flow hashes are already splitmix-mixed; low bits shard fine.
        let shard = (flow & self.mask) as usize;
        self.shards[shard].lock().on_complete(core, flow, ordinal)
    }

    /// Merge every shard's aggregates into one report.
    pub fn report(&self) -> ReorderReport {
        let mut out: Option<ReorderReport> = None;
        for shard in &self.shards {
            let r = shard.lock().report();
            match &mut out {
                None => out = Some(r),
                Some(acc) => acc.merge(&r),
            }
        }
        out.expect("at least one shard")
    }
}

/// Aggregated reordering telemetry from one run.
#[derive(Debug, Clone)]
pub struct ReorderReport {
    /// Per-flow window length the estimates used.
    pub window: usize,
    /// Completions recorded (tracked flows).
    pub completions: u64,
    /// Exact reordered-completion count.
    pub reordered: u64,
    /// Completions of flows beyond the tracking cap.
    pub untracked: u64,
    /// Flows currently tracked.
    pub flows_tracked: u64,
    /// Reordered completions observed per core.
    pub per_core: Vec<u64>,
    /// Windowed depth estimate distribution (every completion,
    /// in-order ones at depth 0).
    pub depth_hist: Histogram,
}

impl ReorderReport {
    /// Fold another report in (shard or phase merge).
    pub fn merge(&mut self, other: &ReorderReport) {
        self.completions += other.completions;
        self.reordered += other.reordered;
        self.untracked += other.untracked;
        self.flows_tracked += other.flows_tracked;
        if self.per_core.len() < other.per_core.len() {
            self.per_core.resize(other.per_core.len(), 0);
        }
        for (a, b) in self.per_core.iter_mut().zip(&other.per_core) {
            *a += b;
        }
        self.depth_hist.merge(&other.depth_hist);
    }

    /// Fraction of completions that were reordered.
    pub fn reorder_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.reordered as f64 / self.completions as f64
        }
    }

    /// Write the standard `reorder_*` metric set into `reg`.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        reg.set_u64("reorder_window", self.window as u64);
        reg.set_u64("reorder_completions", self.completions);
        reg.set_u64("reorder_reordered_packets", self.reordered);
        reg.set_f64("reorder_rate", self.reorder_rate());
        reg.set_u64("reorder_untracked_completions", self.untracked);
        reg.set_u64("reorder_flows_tracked", self.flows_tracked);
        reg.set_u64("reorder_depth_p99", self.depth_hist.p99().unwrap_or(0));
        reg.set_u64("reorder_depth_max", self.depth_hist.max().unwrap_or(0));
        reg.set_histogram("reorder_depth_hist", &self.depth_hist);
        let per_core: Vec<String> = self.per_core.iter().map(u64::to_string).collect();
        reg.set_raw_json("reorder_per_core", format!("[{}]", per_core.join(",")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_reports_nothing() {
        let mut s = ReorderSketch::new(8, 16);
        for i in 0..100 {
            assert_eq!(s.on_complete(0, 7, i), 0);
        }
        let r = s.report();
        assert_eq!(r.reordered, 0);
        assert_eq!(r.completions, 100);
        assert_eq!(r.depth_hist.max(), Some(0));
    }

    #[test]
    fn single_overtake_is_counted_with_depth_one() {
        // Completion order 0, 3, 1, 2 — the analyzer's hand-computed
        // case: packets 1 and 2 each overtaken only by 3.
        let mut s = ReorderSketch::new(4, 4);
        assert_eq!(s.on_complete(0, 1, 0), 0);
        assert_eq!(s.on_complete(1, 1, 3), 0);
        assert_eq!(s.on_complete(0, 1, 1), 1);
        assert_eq!(s.on_complete(1, 1, 2), 1);
        let r = s.report();
        assert_eq!(r.reordered, 2);
        assert_eq!(r.per_core, vec![1, 1]);
        assert_eq!(r.depth_hist.max(), Some(1));
    }

    #[test]
    fn window_caps_the_estimate_but_not_the_count() {
        // 9 completes first, then 1..=8 in order: every one of them is
        // reordered (overtaken by 9), but with window 2 the ring soon
        // holds only small earlier ordinals, so estimates drop to 0
        // while the exact count keeps climbing.
        let mut s = ReorderSketch::new(2, 4);
        s.on_complete(0, 5, 9);
        let mut est_sum = 0;
        for i in 1..=8 {
            est_sum += s.on_complete(0, 5, i);
        }
        let r = s.report();
        assert_eq!(r.reordered, 8, "the exact count is window-free");
        assert!(est_sum < 8, "window 2 must under-estimate here");
    }

    #[test]
    fn flows_beyond_the_cap_are_counted_untracked() {
        let mut s = ReorderSketch::new(4, 2);
        s.on_complete(0, 1, 0);
        s.on_complete(0, 2, 1);
        s.on_complete(0, 3, 2); // third flow: over the cap
        s.on_complete(0, 3, 3);
        let r = s.report();
        assert_eq!(r.flows_tracked, 2);
        assert_eq!(r.untracked, 2);
        assert_eq!(r.completions, 2);
    }

    #[test]
    fn sharded_sketch_matches_a_single_sketch() {
        let shared = SharedReorderSketch::new(8, 64, 4);
        let mut single = ReorderSketch::new(8, 64);
        // Deterministic pseudo-random interleaving of 8 flows.
        let mut ords = [0u64; 8];
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let flow = state >> 61;
            let core = (state >> 32) as usize % 3;
            // Occasionally complete "out of order" by skipping ahead.
            let ord = ords[flow as usize] + 1 + (state % 3);
            ords[flow as usize] = ord;
            let a = shared.on_complete(core, flow, ord);
            let b = single.on_complete(core, flow, ord);
            assert_eq!(a, b);
        }
        let (r1, r2) = (shared.report(), single.report());
        assert_eq!(r1.completions, r2.completions);
        assert_eq!(r1.reordered, r2.reordered);
        assert_eq!(r1.per_core, r2.per_core);
        assert_eq!(r1.flows_tracked, r2.flows_tracked);
    }

    #[test]
    fn export_writes_the_reorder_metric_set() {
        let mut s = ReorderSketch::new(32, 64);
        s.on_complete(0, 1, 0);
        s.on_complete(1, 1, 2);
        s.on_complete(0, 1, 1);
        let mut reg = MetricsRegistry::new();
        s.report().export(&mut reg);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("reorder_completions").unwrap().as_u64(), Some(3));
        assert_eq!(
            doc.get("reorder_reordered_packets").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(doc.get("reorder_window").unwrap().as_u64(), Some(32));
        assert_eq!(doc.get("reorder_depth_max").unwrap().as_u64(), Some(1));
        let per_core = doc.get("reorder_per_core").unwrap().as_array().unwrap();
        assert_eq!(per_core[0].as_u64(), Some(1));
        assert!(doc
            .get("reorder_depth_hist")
            .unwrap()
            .get("count")
            .is_some());
    }

    #[test]
    fn merge_accumulates_across_reports() {
        let mut a = ReorderSketch::new(4, 8);
        a.on_complete(0, 1, 1);
        a.on_complete(0, 1, 0);
        let mut b = ReorderSketch::new(4, 8);
        b.on_complete(1, 2, 5);
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.completions, 3);
        assert_eq!(r.reordered, 1);
        assert_eq!(r.flows_tracked, 2);
        assert_eq!(r.per_core, vec![1]);
    }
}
