//! Typed dataplane trace events.
//!
//! One event is 48 bytes; recording one is a bounds-checked `Vec` push
//! into a pre-allocated per-core ring plus (in the threaded runtime) a
//! relaxed `fetch_add` on the shared sequence counter — cheap enough to
//! keep on under load.

use serde::{Deserialize, Serialize};

/// What happened. The packet life cycle is:
///
/// `IngressEnqueue → (RedirectOut → RedirectIn)? → NfStart → NfDone`
///
/// with [`EventKind::Drop`] terminating the path at the NIC, the
/// receive queue, or the inter-core ring, and [`EventKind::Drain`]
/// marking batch boundaries (no packet of its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum EventKind {
    /// Packet admitted by the NIC and pushed onto a core's receive
    /// queue. `core` is the steered queue.
    IngressEnqueue,
    /// A dequeue batch (or, in the simulator, a busy burst) ended on
    /// `core`; `aux` is the batch size. Carries no packet.
    Drain,
    /// A connection packet left `core` for a designated core's ring;
    /// `aux` is the target core.
    RedirectOut,
    /// A redirected descriptor was picked up by its designated `core`;
    /// `aux` is the ring transfer latency in ticks.
    RedirectIn,
    /// The NF began executing on `core`.
    NfStart,
    /// The NF finished on `core`; `aux` is 0 for a Forward verdict and
    /// 1 for an NF drop.
    NfDone,
    /// The packet was lost; `aux` is a [`DropKind`] discriminant.
    Drop,
}

impl EventKind {
    /// All kinds, in discriminant order (indexable by `as usize`).
    pub const ALL: [EventKind; 7] = [
        EventKind::IngressEnqueue,
        EventKind::Drain,
        EventKind::RedirectOut,
        EventKind::RedirectIn,
        EventKind::NfStart,
        EventKind::NfDone,
        EventKind::Drop,
    ];

    /// Stable wire name (used by the trace file format).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::IngressEnqueue => "ingress_enqueue",
            EventKind::Drain => "drain",
            EventKind::RedirectOut => "redirect_out",
            EventKind::RedirectIn => "redirect_in",
            EventKind::NfStart => "nf_start",
            EventKind::NfDone => "nf_done",
            EventKind::Drop => "drop",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl core::fmt::Display for EventKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a dropped packet was lost (the `aux` payload of
/// [`EventKind::Drop`]). Mirrors the three pre-NF drop counters of
/// `MiddleboxStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum DropKind {
    /// Lost in the NIC to the Flow Director rate cap.
    NicCap,
    /// Receive-queue overflow.
    QueueFull,
    /// Inter-core descriptor-ring overflow.
    RingFull,
}

impl DropKind {
    /// Encode for [`TraceEvent::aux`].
    pub fn to_aux(self) -> u64 {
        self as u64
    }

    /// Stable name for rendering and telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            DropKind::NicCap => "nic_cap",
            DropKind::QueueFull => "queue_full",
            DropKind::RingFull => "ring_full",
        }
    }

    /// Decode from [`TraceEvent::aux`].
    pub fn from_aux(aux: u64) -> Option<DropKind> {
        match aux {
            0 => Some(DropKind::NicCap),
            1 => Some(DropKind::QueueFull),
            2 => Some(DropKind::RingFull),
            _ => None,
        }
    }
}

/// One dataplane event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic per-middlebox sequence number: the global order events
    /// were recorded in, across all cores.
    pub seq: u64,
    /// Timestamp in the producing runtime's native ticks (see
    /// [`crate::TraceMeta::ticks_per_us`]).
    pub ts: u64,
    /// Core (worker) the event happened on. For [`EventKind::Drop`]
    /// with [`DropKind::RingFull`] this is the *target* core whose ring
    /// was full; for NIC-level drops it is the queue the packet would
    /// have been steered to.
    pub core: u16,
    /// Event type.
    pub kind: EventKind,
    /// Stable hash of the packet's flow key (direction-insensitive),
    /// or 0 for packets without a parseable five-tuple and for
    /// [`EventKind::Drain`].
    pub flow: u64,
    /// Per-middlebox packet ordinal, assigned in wire arrival order —
    /// the ground truth the reordering analysis compares completion
    /// order against. 0 is a valid id; [`EventKind::Drain`] events
    /// carry `u64::MAX`.
    pub pkt: u64,
    /// Kind-specific payload (see [`EventKind`] variants).
    pub aux: u64,
}

impl TraceEvent {
    /// The `pkt` value used by events that carry no packet.
    pub const NO_PKT: u64 = u64::MAX;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(EventKind::parse("nonsense"), None);
    }

    #[test]
    fn drop_kind_round_trips_through_aux() {
        for d in [DropKind::NicCap, DropKind::QueueFull, DropKind::RingFull] {
            assert_eq!(DropKind::from_aux(d.to_aux()), Some(d));
        }
        assert_eq!(DropKind::from_aux(99), None);
    }
}
