//! Per-stage busy-time attribution — the health plane's flame view.
//!
//! A [`StageProfiler`] splits each core's busy time across the four
//! pipeline stages every packet passes through: **classify** (ingress
//! parse/steer plus batch formation), **redirect** (inter-core ring
//! enqueue/dequeue of connection packets), **nf** (the network
//! function itself), and **tx** (verdict accounting and egress). The
//! unit is runtime-native ticks — model cycles in the simulator, wall
//! nanoseconds in the threaded runtime — carried alongside a
//! `ticks_per_us` scale so exports stay comparable.
//!
//! The simulator attributes its cycle model exactly (each service
//! event's composition is known, so per-core stage ticks sum to
//! `CoreStats::busy_cycles`); the threaded runtime brackets the three
//! phases of each batch with `Instant` reads, so attribution costs a
//! handful of clock reads per *batch*, not per packet. Both are gated
//! on `ObsConfig::profile` and cost nothing when off.

use crate::registry::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};

/// The profiled pipeline stages, in packet order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Ingress parse, classification, and batch formation.
    Classify,
    /// Inter-core ring enqueue/dequeue of redirected packets.
    Redirect,
    /// NF dispatch (scalar or batch handler).
    Nf,
    /// Verdict accounting and egress.
    Tx,
}

/// Number of profiled stages.
pub const STAGE_COUNT: usize = 4;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [Stage::Classify, Stage::Redirect, Stage::Nf, Stage::Tx];

    /// Stable metric-name fragment (`profile_<name>_ticks`).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Classify => "classify",
            Stage::Redirect => "redirect",
            Stage::Nf => "nf",
            Stage::Tx => "tx",
        }
    }

    /// Index into per-core tick arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One core's stage breakdown: accumulated ticks and the number of
/// recorded spans per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Busy ticks per stage (indexed by [`Stage::index`]).
    pub ticks: [u64; STAGE_COUNT],
    /// Recorded spans per stage.
    pub spans: [u64; STAGE_COUNT],
}

impl StageProfile {
    /// Attribute `ticks` to `stage`.
    pub fn record(&mut self, stage: Stage, ticks: u64) {
        self.ticks[stage.index()] += ticks;
        self.spans[stage.index()] += 1;
    }

    /// Fold another core-profile into this one.
    pub fn merge(&mut self, other: &StageProfile) {
        for i in 0..STAGE_COUNT {
            self.ticks[i] += other.ticks[i];
            self.spans[i] += other.spans[i];
        }
    }

    /// Total attributed ticks.
    pub fn total_ticks(&self) -> u64 {
        self.ticks.iter().sum()
    }
}

/// Per-core, per-stage busy-time attribution for one run of one NF.
#[derive(Debug, Clone)]
pub struct StageProfiler {
    nf: String,
    ticks_per_us: u64,
    cores: Vec<StageProfile>,
}

impl StageProfiler {
    /// A profiler for `cores` cores running NF `nf`, with tick unit
    /// `ticks_per_us` (model cycles or wall ns per microsecond).
    pub fn new(nf: &str, ticks_per_us: u64, cores: usize) -> Self {
        StageProfiler {
            nf: nf.to_string(),
            ticks_per_us,
            cores: vec![StageProfile::default(); cores],
        }
    }

    /// Attribute `ticks` on `core` to `stage`, growing the core set on
    /// demand (elastic runs add cores mid-stream).
    pub fn record(&mut self, core: usize, stage: Stage, ticks: u64) {
        if core >= self.cores.len() {
            self.cores.resize(core + 1, StageProfile::default());
        }
        self.cores[core].record(stage, ticks);
    }

    /// Fold a finished core-profile in (the threaded runtime merges one
    /// per worker at join time).
    pub fn merge_core(&mut self, core: usize, profile: &StageProfile) {
        if core >= self.cores.len() {
            self.cores.resize(core + 1, StageProfile::default());
        }
        self.cores[core].merge(profile);
    }

    /// The profiled NF's name.
    pub fn nf(&self) -> &str {
        &self.nf
    }

    /// Ticks per microsecond (unit scale).
    pub fn ticks_per_us(&self) -> u64 {
        self.ticks_per_us
    }

    /// Per-core breakdowns.
    pub fn cores(&self) -> &[StageProfile] {
        &self.cores
    }

    /// Ticks attributed to `stage` across all cores.
    pub fn stage_ticks(&self, stage: Stage) -> u64 {
        self.cores.iter().map(|c| c.ticks[stage.index()]).sum()
    }

    /// Total attributed ticks across all cores and stages.
    pub fn total_ticks(&self) -> u64 {
        self.cores.iter().map(StageProfile::total_ticks).sum()
    }

    /// `stage`'s share of the total attributed time, in `[0, 1]`
    /// (zero when nothing was attributed).
    pub fn share(&self, stage: Stage) -> f64 {
        let total = self.total_ticks();
        if total == 0 {
            0.0
        } else {
            self.stage_ticks(stage) as f64 / total as f64
        }
    }

    /// Flame-style JSON breakdown: totals, per-stage ticks/shares, and
    /// the per-core matrix.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256 + 64 * self.cores.len());
        let _ = write!(
            s,
            "{{\"nf\":\"{}\",\"ticks_per_us\":{},\"total_ticks\":{},\"stages\":{{",
            self.nf,
            self.ticks_per_us,
            self.total_ticks()
        );
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"ticks\":{},\"share\":{}}}",
                stage.as_str(),
                self.stage_ticks(stage),
                finite(self.share(stage))
            );
        }
        s.push_str("},\"cores\":[");
        for (i, core) in self.cores.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{");
            for (j, stage) in Stage::ALL.into_iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{}", stage.as_str(), core.ticks[stage.index()]);
            }
            let _ = write!(s, ",\"total\":{}}}", core.total_ticks());
        }
        s.push_str("]}");
        s
    }

    /// Write the standard `profile_*` metric set into `reg`.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        reg.set_str("profile_nf", &self.nf);
        reg.set_u64("profile_ticks_per_us", self.ticks_per_us);
        reg.set_u64("profile_total_ticks", self.total_ticks());
        for stage in Stage::ALL {
            reg.set_u64(
                &format!("profile_{}_ticks", stage.as_str()),
                self.stage_ticks(stage),
            );
            reg.set_f64(
                &format!("profile_{}_share", stage.as_str()),
                self.share(stage),
            );
        }
        reg.set_raw_json("profile_cores", self.per_core_json());
    }

    fn per_core_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("[");
        for (i, core) in self.cores.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            for (j, stage) in Stage::ALL.into_iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{}", stage.as_str(), core.ticks[stage.index()]);
            }
            s.push('}');
        }
        s.push(']');
        s
    }
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Lock-free live stage counters for external observers (`live_top`'s
/// stage-breakdown pane), mirroring the `LiveSlots` pattern: workers
/// add relaxed deltas per batch, observers snapshot whenever they like.
#[derive(Debug)]
pub struct ProfileSlots {
    cores: Vec<[AtomicU64; STAGE_COUNT]>,
}

impl ProfileSlots {
    /// Slots for `cores` cores, all zero.
    pub fn new(cores: usize) -> Self {
        ProfileSlots {
            cores: (0..cores).map(|_| Default::default()).collect(),
        }
    }

    /// Number of cores covered.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when no cores are covered.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Add `ticks` to `core`'s `stage` counter (relaxed; out-of-range
    /// cores are ignored, matching `LiveSlots`).
    pub fn add(&self, core: usize, stage: Stage, ticks: u64) {
        if let Some(slot) = self.cores.get(core) {
            slot[stage.index()].fetch_add(ticks, Ordering::Relaxed);
        }
    }

    /// Snapshot every core's cumulative stage ticks.
    pub fn snapshot(&self) -> Vec<[u64; STAGE_COUNT]> {
        self.cores
            .iter()
            .map(|slot| {
                let mut out = [0u64; STAGE_COUNT];
                for (i, v) in slot.iter().enumerate() {
                    out[i] = v.load(Ordering::Relaxed);
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_shares_add_up() {
        let mut p = StageProfiler::new("synthetic", 1_000, 2);
        p.record(0, Stage::Classify, 100);
        p.record(0, Stage::Nf, 700);
        p.record(1, Stage::Nf, 100);
        p.record(1, Stage::Tx, 100);
        assert_eq!(p.total_ticks(), 1_000);
        assert_eq!(p.stage_ticks(Stage::Nf), 800);
        assert!((p.share(Stage::Nf) - 0.8).abs() < 1e-12);
        let sum: f64 = Stage::ALL.into_iter().map(|s| p.share(s)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profiler_has_zero_shares() {
        let p = StageProfiler::new("idle", 1_000, 4);
        assert_eq!(p.total_ticks(), 0);
        assert_eq!(p.share(Stage::Nf), 0.0);
    }

    #[test]
    fn recording_grows_the_core_set() {
        let mut p = StageProfiler::new("nf", 1_000_000, 1);
        p.record(5, Stage::Redirect, 42);
        assert_eq!(p.cores().len(), 6);
        assert_eq!(p.cores()[5].ticks[Stage::Redirect.index()], 42);
        assert_eq!(p.cores()[5].spans[Stage::Redirect.index()], 1);
    }

    #[test]
    fn merge_core_accumulates() {
        let mut p = StageProfiler::new("nf", 1_000, 2);
        let mut w = StageProfile::default();
        w.record(Stage::Nf, 10);
        w.record(Stage::Nf, 5);
        w.record(Stage::Tx, 1);
        p.merge_core(1, &w);
        p.merge_core(1, &w);
        assert_eq!(p.cores()[1].ticks[Stage::Nf.index()], 30);
        assert_eq!(p.cores()[1].spans[Stage::Nf.index()], 4);
        assert_eq!(p.stage_ticks(Stage::Tx), 2);
    }

    #[test]
    fn json_has_stable_shape_and_balanced_braces() {
        let mut p = StageProfiler::new("nat", 1_000, 1);
        p.record(0, Stage::Classify, 3);
        let j = p.to_json();
        assert!(j.starts_with("{\"nf\":\"nat\",\"ticks_per_us\":1000"));
        assert!(j.contains("\"classify\":{\"ticks\":3"));
        assert!(j.contains("\"cores\":[{\"classify\":3"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn export_writes_the_profile_metric_set() {
        let mut p = StageProfiler::new("firewall", 1_000, 1);
        p.record(0, Stage::Nf, 900);
        p.record(0, Stage::Classify, 100);
        let mut reg = MetricsRegistry::new();
        p.export(&mut reg);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("profile_nf").unwrap().as_str(), Some("firewall"));
        assert_eq!(doc.get("profile_total_ticks").unwrap().as_u64(), Some(1000));
        assert_eq!(doc.get("profile_nf_ticks").unwrap().as_u64(), Some(900));
        assert_eq!(doc.get("profile_nf_share").unwrap().as_f64(), Some(0.9));
        assert_eq!(doc.get("profile_tx_share").unwrap().as_f64(), Some(0.0));
        let cores = doc.get("profile_cores").unwrap().as_array().unwrap();
        assert_eq!(cores.len(), 1);
        assert_eq!(cores[0].get("classify").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn profile_slots_accumulate_and_ignore_out_of_range() {
        let slots = ProfileSlots::new(2);
        slots.add(0, Stage::Nf, 7);
        slots.add(0, Stage::Nf, 3);
        slots.add(1, Stage::Tx, 5);
        slots.add(9, Stage::Tx, 99); // ignored
        let snap = slots.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0][Stage::Nf.index()], 10);
        assert_eq!(snap[1][Stage::Tx.index()], 5);
        assert_eq!(snap.iter().flatten().sum::<u64>(), 15);
    }
}
