//! A minimal JSON reader for telemetry documents.
//!
//! The registry *writes* JSON by hand ([`crate::MetricsRegistry`]); this
//! module is the matching read path, added for schema v3 so consumers —
//! the `bench_gate` regression gate foremost — can load documents this
//! repo produced (any schema version) without pulling a JSON crate into
//! the vendored dependency set. It is a strict recursive-descent parser
//! for the JSON subset the registry emits: objects, arrays, strings with
//! the registry's escapes, numbers, booleans, null. Numbers are read as
//! `f64`, which is lossless for every counter the telemetry documents
//! hold (< 2⁵³) and exactly what the gate compares.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving field order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Field lookup on an object; `None` on missing field or non-object.
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object fields in document order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((name, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; copy bytes until the next
                    // ASCII-range structural char can appear).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|&b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" 42 ").unwrap(), JsonValue::Num(42.0));
        assert_eq!(JsonValue::parse("-2.5e3").unwrap(), JsonValue::Num(-2500.0));
        assert_eq!(
            JsonValue::parse("\"a\\\"b\\n\"").unwrap(),
            JsonValue::Str("a\"b\n".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"x"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn preserves_object_field_order() {
        let v = JsonValue::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let names: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["z", "a", "m"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            JsonValue::parse("\"\\u00e9\\u0041\"").unwrap(),
            JsonValue::Str("éA".to_string())
        );
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Num(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::Num(3.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn round_trips_a_registry_document() {
        use crate::MetricsRegistry;
        let mut r = MetricsRegistry::new();
        r.set_str("figure", "6a");
        r.set_u64("cycles", 10_000);
        r.set_f64("mpps", 1.5);
        r.set_raw_json("stats", "{\"forwarded\":10,\"drops\":[1,2]}".to_string());
        let v = JsonValue::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("figure").unwrap().as_str(), Some("6a"));
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(10_000));
        assert_eq!(v.get("mpps").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            v.get("stats").unwrap().get("forwarded").unwrap().as_u64(),
            Some(10)
        );
    }
}
