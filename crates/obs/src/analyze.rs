//! Offline trace analysis: conservation, reordering, latency.
//!
//! The reordering metric follows Wu et al.'s diagnostic ("Why Does Flow
//! Director Cause Packet Reordering?"): within a flow, walk packets in
//! NF-completion order and count, for each packet, how many packets
//! that arrived *later* completed *earlier* — the packet's **reordering
//! depth** (the number of inversions it participates in as the late
//! element). RSS dispatch keeps a flow on one core and must show depth
//! 0 everywhere; spraying trades nonzero depth for load balance, which
//! is exactly the paper's Fig. 8–9 tension made measurable.

use crate::event::{DropKind, EventKind};
use crate::ring::Trace;
use std::collections::HashMap;

/// Trace-derived event counts checked against the runtime's own
/// aggregate counters ([`crate::ExpectedCounts`]).
#[derive(Debug, Clone, Default)]
pub struct Conservation {
    /// Packets admitted to a receive queue.
    pub ingress_enqueued: u64,
    /// NF completions.
    pub nf_done: u64,
    /// Of those, Forward verdicts.
    pub forwarded: u64,
    /// Of those, Drop verdicts.
    pub nf_drops: u64,
    /// NIC Flow Director cap drops.
    pub nic_cap_drops: u64,
    /// Receive-queue overflow drops.
    pub queue_drops: u64,
    /// Ring overflow drops.
    pub ring_drops: u64,
    /// Redirect sends / pickups.
    pub redirect_out: u64,
    /// Redirect pickups.
    pub redirect_in: u64,
    /// Events lost to full trace rings. When nonzero, violations are
    /// reported as warnings only — the trace is a prefix sample.
    pub events_dropped: u64,
    /// Human-readable descriptions of every violated identity.
    pub violations: Vec<String>,
}

impl Conservation {
    /// True when every checked identity held (always true for a trace
    /// with `events_dropped > 0`, where checks are advisory).
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-flow reordering summary.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Stable flow hash (from the trace events).
    pub flow: u64,
    /// NF completions observed for this flow.
    pub packets: u64,
    /// Packets with nonzero reordering depth.
    pub reordered: u64,
    /// Largest per-packet depth.
    pub max_depth: u64,
    /// Sum of per-packet depths (total inversions).
    pub total_depth: u64,
}

impl FlowReport {
    /// Fraction of this flow's packets that completed out of order.
    pub fn reorder_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.reordered as f64 / self.packets as f64
        }
    }

    /// Mean depth over reordered packets.
    pub fn mean_depth(&self) -> f64 {
        if self.reordered == 0 {
            0.0
        } else {
            self.total_depth as f64 / self.reordered as f64
        }
    }
}

/// Latency percentiles (µs) computed from exact per-packet samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median, µs.
    pub p50_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<f64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        LatencySummary {
            count: samples.len() as u64,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            p999_us: pick(0.999),
            mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
            max_us: *samples.last().unwrap(),
        }
    }
}

/// Redirect latency on one designated core.
#[derive(Debug, Clone)]
pub struct CoreRedirects {
    /// The designated core that picked the redirects up.
    pub core: u16,
    /// Redirect transfer latency on this core.
    pub latency: LatencySummary,
}

/// End-to-end and component latency derived from event timestamps.
#[derive(Debug, Clone, Default)]
pub struct LatencyBreakdown {
    /// Ingress enqueue → NF done, per processed packet.
    pub sojourn: LatencySummary,
    /// Ingress enqueue → NF start for packets processed where they
    /// arrived.
    pub queue_wait: LatencySummary,
    /// Redirect push → ring pickup, all cores.
    pub redirect: LatencySummary,
    /// Redirect latency broken down by designated core.
    pub per_core_redirect: Vec<CoreRedirects>,
}

/// Everything [`analyze`] computes from one trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Event-count identities vs. the runtime's counters.
    pub conservation: Conservation,
    /// Per-flow reordering, descending by total depth.
    pub flows: Vec<FlowReport>,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
}

impl TraceAnalysis {
    /// Total NF completions with nonzero reordering depth.
    pub fn reordered_packets(&self) -> u64 {
        self.flows.iter().map(|f| f.reordered).sum()
    }

    /// Largest reordering depth across flows.
    pub fn max_depth(&self) -> u64 {
        self.flows.iter().map(|f| f.max_depth).max().unwrap_or(0)
    }
}

/// Fenwick tree (binary indexed tree) over `n` ranks, for counting how
/// many already-seen elements exceed a given rank in O(log n).
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Add one at `rank` (0-based).
    fn add(&mut self, rank: usize) {
        let mut i = rank + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Count of inserted ranks in `0..=rank` (0-based).
    fn prefix(&self, rank: usize) -> u64 {
        let mut i = rank + 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Per-flow reordering from NF completions: for each flow, packets in
/// completion order, depth = number of earlier completions with a
/// larger arrival ordinal.
fn reordering(trace: &Trace) -> Vec<FlowReport> {
    // Completion order per flow. Events are already sorted by seq.
    let mut by_flow: HashMap<u64, Vec<u64>> = HashMap::new();
    for ev in &trace.events {
        if ev.kind == EventKind::NfDone {
            by_flow.entry(ev.flow).or_default().push(ev.pkt);
        }
    }
    let mut flows: Vec<FlowReport> = by_flow
        .into_iter()
        .map(|(flow, completions)| {
            // Rank-compress arrival ordinals so the Fenwick tree is
            // sized by the flow's packet count, not the id space.
            let mut sorted = completions.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let rank: HashMap<u64, usize> =
                sorted.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let mut fen = Fenwick::new(sorted.len());
            let mut report = FlowReport {
                flow,
                packets: completions.len() as u64,
                reordered: 0,
                max_depth: 0,
                total_depth: 0,
            };
            for (j, id) in completions.iter().enumerate() {
                let r = rank[id];
                // Earlier completions with larger arrival ordinal.
                let depth = j as u64 - fen.prefix(r);
                if depth > 0 {
                    report.reordered += 1;
                    report.max_depth = report.max_depth.max(depth);
                    report.total_depth += depth;
                }
                fen.add(r);
            }
            report
        })
        .collect();
    flows.sort_by(|a, b| b.total_depth.cmp(&a.total_depth).then(a.flow.cmp(&b.flow)));
    flows
}

fn conservation(trace: &Trace) -> Conservation {
    let mut c = Conservation {
        events_dropped: trace.dropped,
        ..Conservation::default()
    };
    for ev in &trace.events {
        match ev.kind {
            EventKind::IngressEnqueue => c.ingress_enqueued += 1,
            EventKind::RedirectOut => c.redirect_out += 1,
            EventKind::RedirectIn => c.redirect_in += 1,
            EventKind::NfDone => {
                c.nf_done += 1;
                if ev.aux == 0 {
                    c.forwarded += 1;
                } else {
                    c.nf_drops += 1;
                }
            }
            EventKind::Drop => match DropKind::from_aux(ev.aux) {
                Some(DropKind::NicCap) => c.nic_cap_drops += 1,
                Some(DropKind::QueueFull) => c.queue_drops += 1,
                Some(DropKind::RingFull) => c.ring_drops += 1,
                None => c
                    .violations
                    .push(format!("drop event with unknown aux {}", ev.aux)),
            },
            EventKind::Drain | EventKind::NfStart => {}
        }
    }

    // Internal identity: every enqueued packet is eventually processed
    // or lost on a ring — never duplicated. Holds even for a run that
    // stopped with work in flight (then enqueued > done + ring drops).
    if c.nf_done + c.ring_drops > c.ingress_enqueued {
        c.violations.push(format!(
            "more completions+ring drops ({} + {}) than enqueues ({})",
            c.nf_done, c.ring_drops, c.ingress_enqueued
        ));
    }
    if c.redirect_in > c.redirect_out {
        c.violations.push(format!(
            "more redirect pickups ({}) than sends ({})",
            c.redirect_in, c.redirect_out
        ));
    }

    // External identities against the runtime's own counters. These are
    // exact regardless of in-flight work: both sides count the same
    // instants (admission, NF completion, drop).
    if let Some(e) = trace.meta.expected {
        let checks: [(&str, u64, u64); 6] = [
            (
                "ingress enqueues vs offered - nic/queue drops",
                c.ingress_enqueued,
                e.offered - e.nic_cap_drops - e.queue_drops,
            ),
            ("nf completions vs stats.processed", c.nf_done, e.processed),
            (
                "forward verdicts vs stats.forwarded",
                c.forwarded,
                e.forwarded,
            ),
            ("drop verdicts vs stats.nf_drops", c.nf_drops, e.nf_drops),
            (
                "ring-drop events vs stats.ring_drops",
                c.ring_drops,
                e.ring_drops,
            ),
            (
                "redirect-out events vs stats.redirects",
                c.redirect_out,
                e.redirects,
            ),
        ];
        for (what, got, want) in checks {
            if got != want {
                c.violations
                    .push(format!("{what}: trace {got} != stats {want}"));
            }
        }
    }

    // A lossy trace undercounts by construction: demote to advisory.
    if c.events_dropped > 0 {
        c.violations.clear();
    }
    c
}

fn latency(trace: &Trace) -> LatencyBreakdown {
    let to_us = |ticks: u64| ticks as f64 / trace.meta.ticks_per_us as f64;

    // Pair events by packet ordinal. Ids are unique per packet.
    let mut ingress_ts: HashMap<u64, u64> = HashMap::new();
    let mut redirected: HashMap<u64, u64> = HashMap::new(); // pkt -> out ts
    let mut sojourn = Vec::new();
    let mut queue_wait = Vec::new();
    let mut redirect = Vec::new();
    let mut per_core: HashMap<u16, Vec<f64>> = HashMap::new();

    for ev in &trace.events {
        match ev.kind {
            EventKind::IngressEnqueue => {
                ingress_ts.insert(ev.pkt, ev.ts);
            }
            EventKind::RedirectOut => {
                redirected.insert(ev.pkt, ev.ts);
            }
            EventKind::RedirectIn => {
                if let Some(out_ts) = redirected.get(&ev.pkt) {
                    let d = to_us(ev.ts.saturating_sub(*out_ts));
                    redirect.push(d);
                    per_core.entry(ev.core).or_default().push(d);
                }
            }
            EventKind::NfStart => {
                if !redirected.contains_key(&ev.pkt) {
                    if let Some(t0) = ingress_ts.get(&ev.pkt) {
                        queue_wait.push(to_us(ev.ts.saturating_sub(*t0)));
                    }
                }
            }
            EventKind::NfDone => {
                if let Some(t0) = ingress_ts.get(&ev.pkt) {
                    sojourn.push(to_us(ev.ts.saturating_sub(*t0)));
                }
            }
            EventKind::Drain | EventKind::Drop => {}
        }
    }

    let mut per_core_redirect: Vec<CoreRedirects> = per_core
        .into_iter()
        .map(|(core, samples)| CoreRedirects {
            core,
            latency: LatencySummary::from_samples(samples),
        })
        .collect();
    per_core_redirect.sort_by_key(|c| c.core);

    LatencyBreakdown {
        sojourn: LatencySummary::from_samples(sojourn),
        queue_wait: LatencySummary::from_samples(queue_wait),
        redirect: LatencySummary::from_samples(redirect),
        per_core_redirect,
    }
}

/// Tail attribution recomputed offline from raw event timestamps, the
/// ground truth `fig_tail` checks the online [`crate::TailTracker`]
/// against. Uses the same exemplar rule (`sojourn > threshold`) and the
/// same span boundaries: queue wait ends at `NfStart` for a local
/// packet and at `RedirectOut` (the ring hand-off) for a redirected
/// one; redirect transit is `RedirectIn − RedirectOut`. The rest of the
/// sojourn — what the online table splits into classify/NF/TX — is the
/// [`TailAttribution::residual_ticks`] remainder, since the trace
/// carries no finer-grained events.
#[derive(Debug, Clone, Default)]
pub struct TailAttribution {
    /// The fixed exemplar threshold used, ticks.
    pub threshold_ticks: u64,
    /// NF completions with a paired ingress event.
    pub completions: u64,
    /// Of those, exemplars (`sojourn > threshold`).
    pub exemplars: u64,
    /// Summed sojourn over exemplars, ticks.
    pub sojourn_ticks: u64,
    /// Summed queue wait over exemplars, ticks.
    pub queue_wait_ticks: u64,
    /// Summed redirect transit over exemplars, ticks.
    pub redirect_transit_ticks: u64,
}

impl TailAttribution {
    /// Exemplar ticks not attributable from trace events alone — the
    /// online table's classify + NF + TX total.
    pub fn residual_ticks(&self) -> u64 {
        self.sojourn_ticks
            .saturating_sub(self.queue_wait_ticks + self.redirect_transit_ticks)
    }
}

/// Recompute tail attribution from a trace under a fixed threshold.
///
/// Only meaningful against an online tracker in fixed-threshold mode
/// (`tail_threshold_ticks > 0`): a rolling threshold depends on
/// completion order inside the recompute window, which a prefix-sampled
/// trace cannot replicate.
pub fn tail_attribution(trace: &Trace, threshold_ticks: u64) -> TailAttribution {
    let mut ingress_ts: HashMap<u64, u64> = HashMap::new();
    let mut out_ts: HashMap<u64, u64> = HashMap::new();
    let mut in_ts: HashMap<u64, u64> = HashMap::new();
    let mut start_ts: HashMap<u64, u64> = HashMap::new();
    let mut t = TailAttribution {
        threshold_ticks,
        ..TailAttribution::default()
    };
    for ev in &trace.events {
        match ev.kind {
            EventKind::IngressEnqueue => {
                ingress_ts.insert(ev.pkt, ev.ts);
            }
            EventKind::RedirectOut => {
                out_ts.insert(ev.pkt, ev.ts);
            }
            EventKind::RedirectIn => {
                in_ts.insert(ev.pkt, ev.ts);
            }
            EventKind::NfStart => {
                start_ts.insert(ev.pkt, ev.ts);
            }
            EventKind::NfDone => {
                let Some(&t0) = ingress_ts.get(&ev.pkt) else {
                    continue;
                };
                t.completions += 1;
                let sojourn = ev.ts.saturating_sub(t0);
                if sojourn <= threshold_ticks {
                    continue;
                }
                t.exemplars += 1;
                t.sojourn_ticks += sojourn;
                match (out_ts.get(&ev.pkt), in_ts.get(&ev.pkt)) {
                    (Some(&out), Some(&picked)) => {
                        t.queue_wait_ticks += out.saturating_sub(t0);
                        t.redirect_transit_ticks += picked.saturating_sub(out);
                    }
                    _ => {
                        if let Some(&start) = start_ts.get(&ev.pkt) {
                            t.queue_wait_ticks += start.saturating_sub(t0);
                        }
                    }
                }
            }
            EventKind::Drain | EventKind::Drop => {}
        }
    }
    t
}

/// Analyze a trace: conservation identities, per-flow reordering, and
/// latency breakdown.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    TraceAnalysis {
        conservation: conservation(trace),
        flows: reordering(trace),
        latency: latency(trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::ring::{ExpectedCounts, TraceMeta};

    fn meta(expected: Option<ExpectedCounts>) -> TraceMeta {
        TraceMeta {
            runtime: "sim".into(),
            ticks_per_us: 1_000,
            num_cores: 2,
            expected,
        }
    }

    fn done(seq: u64, flow: u64, pkt: u64) -> TraceEvent {
        TraceEvent {
            seq,
            ts: seq * 100,
            core: 0,
            kind: EventKind::NfDone,
            flow,
            pkt,
            aux: 0,
        }
    }

    /// Hand-built trace of known depth: flow 1 completes in order
    /// 0, 3, 1, 2 (packet 3 overtook 1 and 2), flow 2 in order.
    #[test]
    fn reordering_depth_matches_hand_computation() {
        let events = vec![
            done(0, 1, 0),
            done(1, 1, 3),
            done(2, 2, 0),
            done(3, 1, 1), // one earlier completion (3) arrived later → depth 1
            done(4, 2, 1),
            done(5, 1, 2), // likewise overtaken only by 3 → depth 1
        ];
        let trace = Trace {
            meta: meta(None),
            events,
            dropped: 0,
        };
        let a = analyze(&trace);
        assert_eq!(a.flows.len(), 2);
        let f1 = a.flows.iter().find(|f| f.flow == 1).unwrap();
        assert_eq!(f1.packets, 4);
        assert_eq!(f1.reordered, 2);
        assert_eq!(f1.max_depth, 1);
        assert_eq!(f1.total_depth, 2);
        assert!((f1.reorder_rate() - 0.5).abs() < 1e-12);
        let f2 = a.flows.iter().find(|f| f.flow == 2).unwrap();
        assert_eq!(f2.reordered, 0);
        assert_eq!(f2.max_depth, 0);
        assert_eq!(a.max_depth(), 1);
        assert_eq!(a.reordered_packets(), 2);
    }

    #[test]
    fn deeper_overtake_counts_every_inversion() {
        // Completion order 2, 3, 0, 1: packet 0 was overtaken by {2, 3}
        // (depth 2), packet 1 likewise (depth 2).
        let events = vec![done(0, 9, 2), done(1, 9, 3), done(2, 9, 0), done(3, 9, 1)];
        let trace = Trace {
            meta: meta(None),
            events,
            dropped: 0,
        };
        let a = analyze(&trace);
        let f = &a.flows[0];
        assert_eq!(f.reordered, 2);
        assert_eq!(f.max_depth, 2);
        assert_eq!(f.total_depth, 4);
    }

    #[test]
    fn in_order_flow_has_zero_depth() {
        let events: Vec<TraceEvent> = (0..100).map(|i| done(i, 5, i)).collect();
        let trace = Trace {
            meta: meta(None),
            events,
            dropped: 0,
        };
        let a = analyze(&trace);
        assert_eq!(a.reordered_packets(), 0);
        assert_eq!(a.max_depth(), 0);
    }

    fn ev(seq: u64, kind: EventKind, pkt: u64, aux: u64) -> TraceEvent {
        TraceEvent {
            seq,
            ts: seq * 1_000,
            core: (pkt % 2) as u16,
            kind,
            flow: 7,
            pkt,
            aux,
        }
    }

    #[test]
    fn conservation_passes_on_consistent_trace_and_fails_on_mismatch() {
        let events = vec![
            ev(0, EventKind::IngressEnqueue, 0, 0),
            ev(1, EventKind::IngressEnqueue, 1, 0),
            ev(2, EventKind::Drop, 2, DropKind::NicCap.to_aux()),
            ev(3, EventKind::NfStart, 0, 0),
            ev(4, EventKind::NfDone, 0, 0),
            ev(5, EventKind::RedirectOut, 1, 1),
            ev(6, EventKind::RedirectIn, 1, 0),
            ev(7, EventKind::NfStart, 1, 0),
            ev(8, EventKind::NfDone, 1, 1),
        ];
        let expected = ExpectedCounts {
            offered: 3,
            processed: 2,
            forwarded: 1,
            nf_drops: 1,
            nic_cap_drops: 1,
            queue_drops: 0,
            ring_drops: 0,
            redirects: 1,
        };
        let trace = Trace {
            meta: meta(Some(expected)),
            events: events.clone(),
            dropped: 0,
        };
        let c = analyze(&trace).conservation;
        assert!(c.ok(), "violations: {:?}", c.violations);
        assert_eq!(c.ingress_enqueued, 2);
        assert_eq!(c.nf_done, 2);
        assert_eq!(c.redirect_out, 1);

        // Now claim one more forwarded than the trace shows.
        let mut wrong = expected;
        wrong.forwarded = 2;
        wrong.nf_drops = 0;
        let trace = Trace {
            meta: meta(Some(wrong)),
            events,
            dropped: 0,
        };
        let c = analyze(&trace).conservation;
        assert!(!c.ok());
        assert!(c.violations.iter().any(|v| v.contains("forward")));
    }

    #[test]
    fn lossy_trace_demotes_violations() {
        let events = vec![ev(0, EventKind::NfDone, 0, 0)];
        let expected = ExpectedCounts {
            offered: 100,
            processed: 50,
            forwarded: 50,
            nf_drops: 0,
            nic_cap_drops: 0,
            queue_drops: 0,
            ring_drops: 0,
            redirects: 0,
        };
        let trace = Trace {
            meta: meta(Some(expected)),
            events,
            dropped: 10,
        };
        let c = analyze(&trace).conservation;
        assert!(c.ok(), "lossy traces must not hard-fail conservation");
        assert_eq!(c.events_dropped, 10);
    }

    #[test]
    fn offline_tail_attribution_splits_local_and_redirected_exemplars() {
        let mk = |seq, ts, kind, pkt| TraceEvent {
            seq,
            ts,
            core: 0,
            kind,
            flow: 1,
            pkt,
            aux: 0,
        };
        // Packet 0 (local): enqueue 0, start 2_000, done 3_000.
        // Packet 1 (via ring): enqueue 1_000, out 2_000, in 2_500,
        // done 5_000. Packet 2 (local, fast): enqueue 0, done 100.
        let events = vec![
            mk(0, 0, EventKind::IngressEnqueue, 0),
            mk(1, 0, EventKind::IngressEnqueue, 2),
            mk(2, 1_000, EventKind::IngressEnqueue, 1),
            mk(3, 100, EventKind::NfDone, 2),
            mk(4, 2_000, EventKind::NfStart, 0),
            mk(5, 2_000, EventKind::RedirectOut, 1),
            mk(6, 2_500, EventKind::RedirectIn, 1),
            mk(7, 3_000, EventKind::NfDone, 0),
            mk(8, 5_000, EventKind::NfDone, 1),
        ];
        let trace = Trace {
            meta: meta(None),
            events,
            dropped: 0,
        };
        let t = tail_attribution(&trace, 500);
        assert_eq!(t.completions, 3);
        assert_eq!(t.exemplars, 2, "packet 2 is under the threshold");
        assert_eq!(t.sojourn_ticks, 3_000 + 4_000);
        assert_eq!(t.queue_wait_ticks, 2_000 + 1_000);
        assert_eq!(t.redirect_transit_ticks, 500);
        assert_eq!(t.residual_ticks(), 7_000 - 3_000 - 500);
        // Threshold above every sojourn: nothing is captured.
        let none = tail_attribution(&trace, 10_000);
        assert_eq!(none.completions, 3);
        assert_eq!(none.exemplars, 0);
        assert_eq!(none.sojourn_ticks, 0);
    }

    #[test]
    fn latency_pairs_events_by_packet() {
        // Packet 0: enqueue at 0, start at 2000, done at 3000 ticks
        // (1 tick = 1 ns here → sojourn 3 µs, wait 2 µs).
        // Packet 1: enqueue 1000, redirect out 2000 → in 2500, done 5000.
        let mk = |seq, ts, core, kind, pkt, aux| TraceEvent {
            seq,
            ts,
            core,
            kind,
            flow: 1,
            pkt,
            aux,
        };
        let events = vec![
            mk(0, 0, 0, EventKind::IngressEnqueue, 0, 0),
            mk(1, 1_000, 0, EventKind::IngressEnqueue, 1, 0),
            mk(2, 2_000, 0, EventKind::NfStart, 0, 0),
            mk(3, 2_000, 0, EventKind::RedirectOut, 1, 1),
            mk(4, 2_500, 1, EventKind::RedirectIn, 1, 500),
            mk(5, 3_000, 0, EventKind::NfDone, 0, 0),
            mk(6, 5_000, 1, EventKind::NfDone, 1, 0),
        ];
        let trace = Trace {
            meta: meta(None),
            events,
            dropped: 0,
        };
        let l = analyze(&trace).latency;
        assert_eq!(l.sojourn.count, 2);
        assert!((l.sojourn.max_us - 4.0).abs() < 1e-9);
        assert_eq!(
            l.queue_wait.count, 1,
            "redirected packets have no queue-wait sample"
        );
        assert!((l.queue_wait.p50_us - 2.0).abs() < 1e-9);
        assert_eq!(l.redirect.count, 1);
        assert!((l.redirect.p50_us - 0.5).abs() < 1e-9);
        assert_eq!(l.per_core_redirect.len(), 1);
        assert_eq!(l.per_core_redirect[0].core, 1);
    }
}
