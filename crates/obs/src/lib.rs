//! # sprayer-obs — observability for the Sprayer reproduction
//!
//! The paper's central trade-off — spraying buys load balance at the
//! cost of intra-flow reordering and cross-core state traffic (§3,
//! Fig. 8–9) — is invisible to aggregate counters. This crate is the
//! per-packet layer underneath `MiddleboxStats`:
//!
//! * [`TraceEvent`] / [`TraceRing`] — a typed, bounded, drop-counting
//!   event log. Each threaded-runtime worker owns a ring (the
//!   single-threaded simulator uses one for all cores), so recording is
//!   an unsynchronized write into chunked storage; a single shared
//!   sequence counter (one relaxed `fetch_add` per event in the
//!   threaded runtime, a plain increment in the simulator) gives a
//!   global order to merge on.
//! * [`Histogram`] — an HDR-style log-linear histogram over `u64`
//!   values with merge, exact counts, and bounded-relative-error
//!   percentiles. Also the home of the batch-size bucket math that
//!   `sprayer::stats` re-exports, so the two cannot drift.
//! * [`LatencyProbes`] — the three standard latency histograms
//!   (sojourn, queue wait, redirect) both runtimes populate.
//! * [`TimeSeries`] / [`SampleSet`] — bounded, downsampling per-core
//!   delta buckets recorded at a configurable interval, with derived
//!   imbalance timelines (instantaneous Jain's index, utilization skew,
//!   drop rate); [`LiveSlots`] is the lock-free live-view counterpart.
//! * [`MetricsRegistry`] — an ordered name→value snapshot that
//!   serializes one versioned JSON telemetry document, with a read path
//!   ([`JsonValue`], `MetricsRegistry::parse_document`) accepting every
//!   schema version this repo has emitted.
//! * [`analyze`] / [`trace_io`] — offline replay: per-flow reordering
//!   depth, latency breakdowns, conservation checks against
//!   the runtime's own counters, and a stable on-disk trace format.
//! * The **online health plane**: [`StageProfiler`] (per-core busy-time
//!   attribution across classify/redirect/nf/tx, the `profile_*` metric
//!   set), [`ReorderSketch`] (streaming bounded-memory reordering-depth
//!   estimation, cross-validated against [`analyze`]'s Fenwick
//!   analyzer), the [`HealthBus`] (bounded MPSC stream of typed
//!   [`HealthEvent`]s from both runtimes and the ctl crate), and the
//!   [`slo`] evaluator turning thresholds into [`Alert`] records
//!   (`health_*` metric set).
//! * [`TailTracker`] — exemplar-based tail-latency attribution: slow
//!   completions record per-stage span breakdowns into a per-(stage,
//!   core) histogram table (the `tail_*` metric set), so a p999 comes
//!   with a *where*.
//! * [`FlightRecorder`] — the crash flight recorder: always-on,
//!   fixed-memory keep-newest per-core event rings that freeze on a
//!   critical health event and dump a [`flight`] (`sprayer-flight/1`)
//!   snapshot for the `blackbox` post-mortem analyzer.
//!
//! The crate deliberately depends on nothing but the (vendored) serde
//! façade and `parking_lot`: both `sprayer` (core) and the benches can
//! use it without dependency cycles. Timestamps are opaque `u64`
//! *ticks*; the producing runtime declares its tick rate in
//! [`TraceMeta::ticks_per_us`] (simulator: picoseconds of simulated
//! time; threaded runtime: nanoseconds of wall time since the run
//! started).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod event;
pub mod flight;
pub mod health;
pub mod hist;
pub mod json;
pub mod profile;
pub mod registry;
pub mod reorder;
pub mod ring;
pub mod sampler;
pub mod series;
pub mod slo;
pub mod tail;
pub mod trace_io;

pub use analyze::{
    analyze, tail_attribution, Conservation, CoreRedirects, FlowReport, LatencyBreakdown,
    LatencySummary, TailAttribution, TraceAnalysis,
};
pub use event::{DropKind, EventKind, TraceEvent};
pub use flight::{
    health_kind_code, health_kind_name, is_freeze_trigger, FlightEvent, FlightFreeze, FlightKind,
    FlightRecorder, FlightRing, FlightSnapshot, FLIGHT_SCHEMA,
};
pub use health::{
    health_channel, HealthBus, HealthCollector, HealthEvent, HealthRecord, HealthReport,
};
pub use hist::{
    batch_bucket, Histogram, HistogramSummary, LatencyProbes, BATCH_BUCKET_LO, BATCH_HIST_BUCKETS,
};
pub use json::JsonValue;
pub use profile::{ProfileSlots, Stage, StageProfile, StageProfiler, STAGE_COUNT};
pub use registry::{MetricsRegistry, TELEMETRY_SCHEMA_VERSION};
pub use reorder::{ReorderReport, ReorderSketch, SharedReorderSketch};
pub use ring::{ExpectedCounts, Trace, TraceMeta, TraceRing};
pub use sampler::{LiveCore, LiveSlots, SampleSet};
pub use series::{CoreSample, TimeSeries};
pub use slo::{evaluate, export_health_telemetry, Alert, Severity, SloRules};
pub use tail::{
    TailCoreTable, TailReport, TailSpans, TailStage, TailTracker, TAIL_RECOMPUTE_EVERY,
    TAIL_STAGE_COUNT,
};
