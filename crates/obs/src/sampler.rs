//! Assembled per-core sampling output and live publication slots.
//!
//! [`SampleSet`] is what a runtime hands back after a sampled run: one
//! [`TimeSeries`] per core, aligned to a common bucket interval, plus
//! the tick rate needed to interpret it. On top of the aligned series it
//! derives the paper's imbalance timelines — instantaneous Jain's
//! fairness index over per-core processed counts, utilization skew
//! (max − min busy fraction), and pre-NF drop rate — and serializes the
//! whole thing as one JSON object for embedding in a
//! [`crate::MetricsRegistry`] telemetry document.
//!
//! [`LiveSlots`] is the lock-free side channel for *watching* a threaded
//! run while it executes: a flat array of per-core atomic counters that
//! workers `fetch_add` their batch deltas into (relaxed ordering — the
//! reader wants a cheap, approximately-consistent snapshot, not a
//! linearizable one). The `live_top` dashboard polls
//! [`LiveSlots::snapshot`] and diffs successive snapshots into rates.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::series::{CoreSample, TimeSeries};

/// Jain's fairness index over a slice of per-core loads: `(Σx)² / (n·Σx²)`,
/// 1.0 for perfectly equal shares, → `1/n` when one core takes all load.
/// Empty or all-zero input reports 1.0 (nothing is unfair about silence)
/// — the same convention as `sprayer_sim::stats::jain_fairness_index`,
/// restated here because `sprayer-obs` sits below the sim crate.
fn jain(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if n == 0.0 || sum_sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n * sum_sq)
    }
}

/// The assembled output of a sampled run: per-core bucketed delta series
/// on a common time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSet {
    /// Ticks per microsecond of the recording runtime (simulator:
    /// 1_000_000 — simulated picoseconds; threaded: 1_000 — wall ns).
    pub ticks_per_us: u64,
    /// Bucket width in ticks shared by every series in `cores`.
    pub interval_ticks: u64,
    /// One series per core, index = core id.
    pub cores: Vec<TimeSeries>,
}

impl SampleSet {
    /// Align `cores` to their largest interval (series downsample
    /// independently, so a busy core may be coarser than an idle one)
    /// and package them with the runtime's tick rate.
    pub fn assemble(ticks_per_us: u64, mut cores: Vec<TimeSeries>) -> Self {
        let target = cores.iter().map(TimeSeries::interval).max().unwrap_or(1);
        for s in &mut cores {
            s.downsample_to(target);
        }
        SampleSet {
            ticks_per_us,
            interval_ticks: target,
            cores,
        }
    }

    /// Number of cores sampled.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of buckets in the longest per-core series.
    pub fn num_buckets(&self) -> usize {
        self.cores.iter().map(TimeSeries::len).max().unwrap_or(0)
    }

    /// Bucket width in microseconds.
    pub fn interval_us(&self) -> f64 {
        self.interval_ticks as f64 / self.ticks_per_us as f64
    }

    /// Per-core lifetime totals (sum of every bucket), index = core id.
    pub fn totals(&self) -> Vec<CoreSample> {
        self.cores.iter().map(TimeSeries::total).collect()
    }

    fn per_bucket<F: Fn(&CoreSample) -> u64>(&self, bucket: usize, f: F) -> Vec<f64> {
        self.cores
            .iter()
            .map(|s| s.buckets().get(bucket).map_or(0, &f) as f64)
            .collect()
    }

    /// Instantaneous Jain's fairness index per bucket, computed over
    /// per-core processed counts. 1.0 where no core processed anything.
    pub fn jain_timeline(&self) -> Vec<f64> {
        (0..self.num_buckets())
            .map(|b| jain(&self.per_bucket(b, |s| s.processed)))
            .collect()
    }

    /// Per-bucket utilization skew: max − min busy fraction across
    /// cores, each fraction clamped to 1.0 (batch timing can overrun a
    /// bucket edge in the threaded runtime).
    pub fn util_skew_timeline(&self) -> Vec<f64> {
        let w = self.interval_ticks as f64;
        (0..self.num_buckets())
            .map(|b| {
                let utils: Vec<f64> = self
                    .per_bucket(b, |s| s.busy_ticks)
                    .into_iter()
                    .map(|t| (t / w).min(1.0))
                    .collect();
                let max = utils.iter().cloned().fold(0.0f64, f64::max);
                let min = utils.iter().cloned().fold(1.0f64, f64::min);
                if utils.is_empty() {
                    0.0
                } else {
                    max - min
                }
            })
            .collect()
    }

    /// Per-bucket pre-NF drop rate: drops / (processed + drops) summed
    /// over cores; 0.0 where the bucket saw no traffic.
    pub fn drop_rate_timeline(&self) -> Vec<f64> {
        (0..self.num_buckets())
            .map(|b| {
                let drops: f64 = self.per_bucket(b, CoreSample::pre_nf_drops).iter().sum();
                let processed: f64 = self.per_bucket(b, |s| s.processed).iter().sum();
                let denom = drops + processed;
                if denom == 0.0 {
                    0.0
                } else {
                    drops / denom
                }
            })
            .collect()
    }

    /// Serialize as one JSON object: grid metadata, the three derived
    /// timelines, and the raw per-core field arrays. Field names are
    /// telemetry schema — keep them stable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"ticks_per_us\":{},\"interval_ticks\":{},\"num_cores\":{},\"num_buckets\":{}",
            self.ticks_per_us,
            self.interval_ticks,
            self.num_cores(),
            self.num_buckets()
        );
        write_f64_array(&mut s, "jain", &self.jain_timeline());
        write_f64_array(&mut s, "util_skew", &self.util_skew_timeline());
        write_f64_array(&mut s, "drop_rate", &self.drop_rate_timeline());
        s.push_str(",\"per_core\":[");
        for (i, series) in self.cores.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_core_series(&mut s, series);
        }
        s.push_str("]}");
        s
    }
}

fn write_f64_array(out: &mut String, name: &str, vals: &[f64]) {
    use std::fmt::Write as _;
    let _ = write!(out, ",\"{name}\":[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            let _ = write!(out, "{v:.6}");
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
}

fn write_u64_array(out: &mut String, name: &str, vals: impl Iterator<Item = u64>, first: bool) {
    use std::fmt::Write as _;
    if !first {
        out.push(',');
    }
    let _ = write!(out, "\"{name}\":[");
    for (i, v) in vals.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

fn write_core_series(out: &mut String, series: &TimeSeries) {
    let b = series.buckets();
    out.push('{');
    write_u64_array(out, "processed", b.iter().map(|s| s.processed), true);
    write_u64_array(out, "forwarded", b.iter().map(|s| s.forwarded), false);
    write_u64_array(out, "nf_drops", b.iter().map(|s| s.nf_drops), false);
    write_u64_array(out, "queue_drops", b.iter().map(|s| s.queue_drops), false);
    write_u64_array(out, "ring_drops", b.iter().map(|s| s.ring_drops), false);
    write_u64_array(
        out,
        "nic_cap_drops",
        b.iter().map(|s| s.nic_cap_drops),
        false,
    );
    write_u64_array(
        out,
        "redirected_in",
        b.iter().map(|s| s.redirected_in),
        false,
    );
    write_u64_array(
        out,
        "redirected_out",
        b.iter().map(|s| s.redirected_out),
        false,
    );
    write_u64_array(
        out,
        "rx_occupancy_hwm",
        b.iter().map(|s| s.rx_occupancy_hwm),
        false,
    );
    write_u64_array(
        out,
        "ring_occupancy_hwm",
        b.iter().map(|s| s.ring_occupancy_hwm),
        false,
    );
    write_u64_array(out, "busy_ticks", b.iter().map(|s| s.busy_ticks), false);
    out.push('}');
}

/// Number of [`AtomicU64`] slots [`LiveSlots`] keeps per core.
pub const LIVE_FIELDS: usize = 11;

/// One core's counters in a [`LiveSlots`] snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveCore {
    /// Packets the NF completed.
    pub processed: u64,
    /// Of those, forwarded.
    pub forwarded: u64,
    /// NF-verdict drops.
    pub nf_drops: u64,
    /// Pre-NF drops (queue + ring + NIC cap).
    pub drops: u64,
    /// Redirected descriptors consumed from this core's ring.
    pub redirected_in: u64,
    /// Descriptors pushed toward foreign rings.
    pub redirected_out: u64,
    /// Wall nanoseconds spent busy inside batches.
    pub busy_ns: u64,
    /// Last observed rx-queue depth (gauge, not a counter).
    pub queue_depth: u64,
    /// Last observed flow-table entry count on this core (gauge).
    pub table_occupancy: u64,
    /// High-water mark of `table_occupancy` over the run (gauge,
    /// monotone).
    pub table_hwm: u64,
    /// Flow entries this core's lifecycle evicted so far (counter:
    /// idle expiries + LRU backstop victims, hook-confirmed).
    pub evicted: u64,
}

/// Lock-free per-core counter slots for live observation of a threaded
/// run. Writers are the runtime's workers (one `fetch_add` per field per
/// batch, `Relaxed` — no ordering is needed for a monitoring readout);
/// the reader is a dashboard polling [`LiveSlots::snapshot`].
#[derive(Debug)]
pub struct LiveSlots {
    slots: Vec<[AtomicU64; LIVE_FIELDS]>,
}

impl LiveSlots {
    /// Zeroed slots for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        LiveSlots {
            slots: (0..num_cores)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Number of cores these slots cover.
    pub fn num_cores(&self) -> usize {
        self.slots.len()
    }

    /// Accumulate one batch's deltas for `core`. Out-of-range cores are
    /// ignored (the run may use fewer workers than the slots were sized
    /// for).
    #[inline]
    pub fn add(&self, core: usize, delta: &CoreSample) {
        let Some(s) = self.slots.get(core) else {
            return;
        };
        s[0].fetch_add(delta.processed, Ordering::Relaxed);
        s[1].fetch_add(delta.forwarded, Ordering::Relaxed);
        s[2].fetch_add(delta.nf_drops, Ordering::Relaxed);
        s[3].fetch_add(delta.pre_nf_drops(), Ordering::Relaxed);
        s[4].fetch_add(delta.redirected_in, Ordering::Relaxed);
        s[5].fetch_add(delta.redirected_out, Ordering::Relaxed);
        s[6].fetch_add(delta.busy_ticks, Ordering::Relaxed);
        s[7].store(delta.rx_occupancy_hwm, Ordering::Relaxed);
    }

    /// Publish `core`'s flow-table memory view: current entry count
    /// (gauge), its running high-water mark, and the cumulative
    /// lifecycle eviction count. Separate from [`LiveSlots::add`]
    /// because these are not batch deltas — occupancy is a gauge and
    /// `evicted` is a worker-owned running total.
    #[inline]
    pub fn table(&self, core: usize, occupancy: u64, evicted: u64) {
        let Some(s) = self.slots.get(core) else {
            return;
        };
        s[8].store(occupancy, Ordering::Relaxed);
        s[9].fetch_max(occupancy, Ordering::Relaxed);
        s[10].store(evicted, Ordering::Relaxed);
    }

    /// Read all cores' counters (relaxed loads — approximately
    /// consistent, which is all a live view needs).
    pub fn snapshot(&self) -> Vec<LiveCore> {
        self.slots
            .iter()
            .map(|s| LiveCore {
                processed: s[0].load(Ordering::Relaxed),
                forwarded: s[1].load(Ordering::Relaxed),
                nf_drops: s[2].load(Ordering::Relaxed),
                drops: s[3].load(Ordering::Relaxed),
                redirected_in: s[4].load(Ordering::Relaxed),
                redirected_out: s[5].load(Ordering::Relaxed),
                busy_ns: s[6].load(Ordering::Relaxed),
                queue_depth: s[7].load(Ordering::Relaxed),
                table_occupancy: s[8].load(Ordering::Relaxed),
                table_hwm: s[9].load(Ordering::Relaxed),
                evicted: s[10].load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with(processed: &[u64], interval: u64) -> TimeSeries {
        let mut s = TimeSeries::new(interval, 64);
        for (i, &p) in processed.iter().enumerate() {
            if p > 0 {
                s.record(i as u64 * interval, |b| b.processed += p);
            }
        }
        s
    }

    #[test]
    fn assemble_aligns_intervals() {
        let mut fast = TimeSeries::new(10, 4);
        for t in 0..16 {
            fast.record(t * 10, |b| b.processed += 1);
        }
        let slow = series_with(&[5], 10);
        let set = SampleSet::assemble(1_000, vec![fast.clone(), slow]);
        assert_eq!(set.interval_ticks, fast.interval());
        assert!(set.cores.iter().all(|s| s.interval() == set.interval_ticks));
        assert_eq!(set.totals()[0].processed, 16);
        assert_eq!(set.totals()[1].processed, 5);
    }

    #[test]
    fn jain_timeline_flags_imbalance() {
        let a = series_with(&[10, 10], 100);
        let b = series_with(&[10, 0], 100);
        let set = SampleSet::assemble(1_000, vec![a, b]);
        let jain = set.jain_timeline();
        assert_eq!(jain.len(), 2);
        assert!((jain[0] - 1.0).abs() < 1e-9, "balanced bucket → 1.0");
        assert!((jain[1] - 0.5).abs() < 1e-9, "one-core bucket → 1/n");
    }

    #[test]
    fn jain_of_silence_is_one() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        let set = SampleSet::assemble(1_000, vec![TimeSeries::new(10, 4); 3]);
        assert!(set.jain_timeline().is_empty());
    }

    #[test]
    fn util_skew_and_drop_rate() {
        let mut a = TimeSeries::new(100, 16);
        let mut b = TimeSeries::new(100, 16);
        a.record(0, |s| {
            s.busy_ticks += 100;
            s.processed += 9;
        });
        b.record(0, |s| {
            s.busy_ticks += 25;
            s.queue_drops += 1;
        });
        let set = SampleSet::assemble(1_000, vec![a, b]);
        let skew = set.util_skew_timeline();
        assert!((skew[0] - 0.75).abs() < 1e-9);
        let dr = set.drop_rate_timeline();
        assert!((dr[0] - 0.1).abs() < 1e-9, "1 drop / (9 processed + 1)");
    }

    #[test]
    fn json_has_grid_and_timelines() {
        let set = SampleSet::assemble(1_000, vec![series_with(&[1, 2], 100); 2]);
        let j = set.to_json();
        for key in [
            "\"ticks_per_us\":1000",
            "\"interval_ticks\":100",
            "\"num_cores\":2",
            "\"num_buckets\":2",
            "\"jain\":[",
            "\"util_skew\":[",
            "\"drop_rate\":[",
            "\"per_core\":[{",
            "\"processed\":[1,2]",
            "\"busy_ticks\":[0,0]",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn live_slots_accumulate_and_snapshot() {
        let slots = LiveSlots::new(2);
        let d = CoreSample {
            processed: 5,
            forwarded: 4,
            nf_drops: 1,
            queue_drops: 2,
            busy_ticks: 700,
            rx_occupancy_hwm: 3,
            ..Default::default()
        };
        slots.add(0, &d);
        slots.add(0, &d);
        slots.add(1, &d);
        slots.add(99, &d); // out of range: ignored
        let snap = slots.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].processed, 10);
        assert_eq!(snap[0].forwarded, 8);
        assert_eq!(snap[0].drops, 4);
        assert_eq!(snap[0].busy_ns, 1400);
        assert_eq!(snap[0].queue_depth, 3);
        assert_eq!(snap[1].processed, 5);
    }

    #[test]
    fn table_slots_track_gauge_hwm_and_evictions() {
        let slots = LiveSlots::new(1);
        slots.table(0, 100, 2);
        slots.table(0, 40, 7);
        slots.table(9, 999, 999); // out of range: ignored
        let snap = slots.snapshot();
        assert_eq!(snap[0].table_occupancy, 40, "occupancy is a gauge");
        assert_eq!(snap[0].table_hwm, 100, "hwm latches the peak");
        assert_eq!(snap[0].evicted, 7, "evicted is the latest total");
    }
}
