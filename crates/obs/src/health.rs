//! The structured health-event bus.
//!
//! Both runtimes and the ctl crate emit typed [`HealthEvent`]s into a
//! bounded MPSC channel: a cheap, cloneable [`HealthBus`] on the
//! producing side (never blocks — a full bus counts the loss instead of
//! stalling the dataplane) and a [`HealthCollector`] the run drains at
//! teardown into a [`HealthReport`]. The SLO evaluator
//! ([`crate::slo`]) turns the report plus the run's sampled timelines
//! into alert records in the telemetry document.
//!
//! Timestamps are runtime-native ticks (model picoseconds in the
//! simulator, wall nanoseconds in the threaded runtime); the report
//! carries `ticks_per_us` so readers can rescale.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// A typed health event — the taxonomy the SLO evaluator and the
/// telemetry export understand.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthEvent {
    /// A receive queue or ring shed a burst of packets.
    DropStorm {
        /// Core whose queue shed the packets.
        core: usize,
        /// Packets dropped in the burst.
        drops: u64,
    },
    /// A receive queue crossed its high-water fraction (edge-triggered
    /// with hysteresis: re-armed once the queue drains below half).
    QueueHighWater {
        /// Core whose queue filled.
        core: usize,
        /// Depth at the crossing.
        depth: u64,
        /// Queue capacity.
        capacity: u64,
    },
    /// Sampled Jain fairness fell below the configured floor.
    FairnessDip {
        /// The observed Jain index.
        jain: f64,
    },
    /// The watchdog fenced a stalled worker.
    WatchdogFence {
        /// The fenced core.
        core: usize,
        /// How long the worker had been silent, ticks.
        stalled_ticks: u64,
    },
    /// A worker died (NF panic or injected crash).
    WorkerDeath {
        /// The dead core.
        core: usize,
        /// Captured panic message or fault description.
        message: String,
    },
    /// An elastic or recovery transition ran.
    ReconfigPhase {
        /// Transition epoch.
        epoch: u64,
        /// Phase name (`"rescale"`, `"recover"`, …).
        phase: &'static str,
        /// Active cores after the transition.
        cores: usize,
    },
    /// Load collapsed onto one core (adversarial traffic defeating the
    /// spray hash, detected from per-bucket core shares).
    AdversarialCollapse {
        /// The overloaded core.
        core: usize,
        /// Its share of the bucket's processed packets, `[0, 1]`.
        share: f64,
    },
    /// The control plane injected a fault (chaos schedule firing).
    FaultInjected {
        /// Fault kind (`"crash"`, `"stall"`, `"adversarial"`).
        kind: &'static str,
        /// Target core (or `usize::MAX` for traffic-level faults).
        core: usize,
    },
}

impl HealthEvent {
    /// Stable kind name for counting and alert mapping.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthEvent::DropStorm { .. } => "drop_storm",
            HealthEvent::QueueHighWater { .. } => "queue_high_water",
            HealthEvent::FairnessDip { .. } => "fairness_dip",
            HealthEvent::WatchdogFence { .. } => "watchdog_fence",
            HealthEvent::WorkerDeath { .. } => "worker_death",
            HealthEvent::ReconfigPhase { .. } => "reconfig_phase",
            HealthEvent::AdversarialCollapse { .. } => "adversarial_collapse",
            HealthEvent::FaultInjected { .. } => "fault_injected",
        }
    }

    /// The core the event concerns, when it has one.
    pub fn core(&self) -> Option<usize> {
        match *self {
            HealthEvent::DropStorm { core, .. }
            | HealthEvent::QueueHighWater { core, .. }
            | HealthEvent::WatchdogFence { core, .. }
            | HealthEvent::WorkerDeath { core, .. }
            | HealthEvent::AdversarialCollapse { core, .. } => Some(core),
            HealthEvent::FaultInjected { core, .. } if core != usize::MAX => Some(core),
            _ => None,
        }
    }
}

/// One timestamped event on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRecord {
    /// Emission time, runtime-native ticks.
    pub ts: u64,
    /// The event.
    pub event: HealthEvent,
}

impl HealthRecord {
    /// One JSON object (`{"ts":…,"kind":"…",…}`) with kind-specific
    /// detail fields.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"ts\":{},\"kind\":\"{}\"", self.ts, self.event.kind());
        match &self.event {
            HealthEvent::DropStorm { core, drops } => {
                let _ = write!(s, ",\"core\":{core},\"drops\":{drops}");
            }
            HealthEvent::QueueHighWater {
                core,
                depth,
                capacity,
            } => {
                let _ = write!(
                    s,
                    ",\"core\":{core},\"depth\":{depth},\"capacity\":{capacity}"
                );
            }
            HealthEvent::FairnessDip { jain } => {
                let _ = write!(
                    s,
                    ",\"jain\":{}",
                    if jain.is_finite() { *jain } else { 0.0 }
                );
            }
            HealthEvent::WatchdogFence {
                core,
                stalled_ticks,
            } => {
                let _ = write!(s, ",\"core\":{core},\"stalled_ticks\":{stalled_ticks}");
            }
            HealthEvent::WorkerDeath { core, message } => {
                let _ = write!(s, ",\"core\":{core},\"message\":\"");
                for c in message.chars() {
                    match c {
                        '"' => s.push_str("\\\""),
                        '\\' => s.push_str("\\\\"),
                        '\n' => s.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(s, "\\u{:04x}", c as u32);
                        }
                        c => s.push(c),
                    }
                }
                s.push('"');
            }
            HealthEvent::ReconfigPhase {
                epoch,
                phase,
                cores,
            } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"phase\":\"{phase}\",\"cores\":{cores}"
                );
            }
            HealthEvent::AdversarialCollapse { core, share } => {
                let _ = write!(
                    s,
                    ",\"core\":{core},\"share\":{}",
                    if share.is_finite() { *share } else { 0.0 }
                );
            }
            HealthEvent::FaultInjected { kind, core } => {
                let _ = write!(s, ",\"fault\":\"{kind}\"");
                if *core != usize::MAX {
                    let _ = write!(s, ",\"core\":{core}");
                }
            }
        }
        s.push('}');
        s
    }
}

/// Producer side of the bus: cloneable, never blocks. When the bounded
/// channel is full the event is counted in `dropped` and discarded —
/// health telemetry must never stall the dataplane.
#[derive(Debug, Clone)]
pub struct HealthBus {
    tx: SyncSender<HealthRecord>,
    dropped: Arc<AtomicU64>,
}

impl HealthBus {
    /// Emit `event` at `ts` (runtime-native ticks).
    pub fn emit(&self, ts: u64, event: HealthEvent) {
        if let Err(TrySendError::Full(_)) = self.tx.try_send(HealthRecord { ts, event }) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        // A disconnected collector means teardown already ran; late
        // events are irrelevant, not losses.
    }

    /// Events lost to a full bus so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Consumer side of the bus.
#[derive(Debug)]
pub struct HealthCollector {
    rx: Receiver<HealthRecord>,
    dropped: Arc<AtomicU64>,
}

impl HealthCollector {
    /// Drain every event currently on the bus, in emission order per
    /// producer (cross-producer order follows channel arrival).
    pub fn drain(&self) -> Vec<HealthRecord> {
        let mut out = Vec::new();
        while let Ok(rec) = self.rx.try_recv() {
            out.push(rec);
        }
        out
    }

    /// Events lost to a full bus so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain and package everything into a [`HealthReport`].
    pub fn collect(self, ticks_per_us: u64) -> HealthReport {
        let records = self.drain();
        HealthReport {
            ticks_per_us,
            dropped: self.dropped(),
            records,
        }
    }
}

/// A bounded health bus: producers clone the [`HealthBus`], the run
/// keeps the [`HealthCollector`].
pub fn health_channel(capacity: usize) -> (HealthBus, HealthCollector) {
    let (tx, rx) = sync_channel(capacity.max(1));
    let dropped = Arc::new(AtomicU64::new(0));
    (
        HealthBus {
            tx,
            dropped: dropped.clone(),
        },
        HealthCollector { rx, dropped },
    )
}

/// Everything one run's bus carried, ready for SLO evaluation and
/// telemetry export.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Tick unit of every record's `ts`.
    pub ticks_per_us: u64,
    /// Events lost to a full bus.
    pub dropped: u64,
    /// Delivered events, in arrival order.
    pub records: Vec<HealthRecord>,
}

impl HealthReport {
    /// Event counts per kind, deterministically ordered.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for rec in &self.records {
            *out.entry(rec.event.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Merge another report in (the threaded runtime produces one per
    /// phase on elastic runs).
    pub fn merge(&mut self, other: HealthReport) {
        if self.ticks_per_us == 0 {
            self.ticks_per_us = other.ticks_per_us;
        }
        self.dropped += other.dropped;
        self.records.extend(other.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_drain_preserves_order_and_payload() {
        let (bus, col) = health_channel(16);
        bus.emit(
            10,
            HealthEvent::QueueHighWater {
                core: 2,
                depth: 400,
                capacity: 512,
            },
        );
        bus.emit(
            20,
            HealthEvent::WorkerDeath {
                core: 1,
                message: "nf panic: \"boom\"".into(),
            },
        );
        let recs = col.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, 10);
        assert_eq!(recs[0].event.kind(), "queue_high_water");
        assert_eq!(recs[1].event.core(), Some(1));
        assert_eq!(col.dropped(), 0);
    }

    #[test]
    fn full_bus_counts_losses_instead_of_blocking() {
        let (bus, col) = health_channel(2);
        for i in 0..5 {
            bus.emit(i, HealthEvent::FairnessDip { jain: 0.4 });
        }
        assert_eq!(bus.dropped(), 3);
        let report = col.collect(1_000);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.dropped, 3);
    }

    #[test]
    fn emitting_after_collector_drop_is_silent() {
        let (bus, col) = health_channel(4);
        drop(col);
        bus.emit(1, HealthEvent::FairnessDip { jain: 0.1 });
        assert_eq!(bus.dropped(), 0, "disconnect is teardown, not loss");
    }

    #[test]
    fn report_counts_group_by_kind() {
        let (bus, col) = health_channel(16);
        bus.emit(1, HealthEvent::DropStorm { core: 0, drops: 9 });
        bus.emit(2, HealthEvent::DropStorm { core: 1, drops: 3 });
        bus.emit(
            3,
            HealthEvent::ReconfigPhase {
                epoch: 1,
                phase: "rescale",
                cores: 4,
            },
        );
        let report = col.collect(1_000_000);
        let counts = report.counts();
        assert_eq!(counts.get("drop_storm"), Some(&2));
        assert_eq!(counts.get("reconfig_phase"), Some(&1));
        assert_eq!(report.ticks_per_us, 1_000_000);
    }

    #[test]
    fn records_serialize_with_kind_specific_fields() {
        let rec = HealthRecord {
            ts: 77,
            event: HealthEvent::WatchdogFence {
                core: 3,
                stalled_ticks: 120_000,
            },
        };
        assert_eq!(
            rec.to_json(),
            "{\"ts\":77,\"kind\":\"watchdog_fence\",\"core\":3,\"stalled_ticks\":120000}"
        );
        let rec = HealthRecord {
            ts: 1,
            event: HealthEvent::WorkerDeath {
                core: 0,
                message: "a\"b".into(),
            },
        };
        assert!(rec.to_json().contains("\\\"b"));
        let rec = HealthRecord {
            ts: 5,
            event: HealthEvent::FaultInjected {
                kind: "adversarial",
                core: usize::MAX,
            },
        };
        let j = rec.to_json();
        assert!(j.contains("\"fault\":\"adversarial\""));
        assert!(!j.contains("\"core\""));
    }

    #[test]
    fn merge_accumulates_records_and_losses() {
        let mut a = HealthReport {
            ticks_per_us: 0,
            dropped: 1,
            records: vec![],
        };
        let b = HealthReport {
            ticks_per_us: 1_000,
            dropped: 2,
            records: vec![HealthRecord {
                ts: 9,
                event: HealthEvent::FairnessDip { jain: 0.2 },
            }],
        };
        a.merge(b);
        assert_eq!(a.ticks_per_us, 1_000);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.records.len(), 1);
    }
}
