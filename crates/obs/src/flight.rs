//! The crash flight recorder.
//!
//! An always-on, fixed-memory, per-core ring of compact recent events —
//! batch boundaries with queue depths, redirects, drops, health events.
//! Unlike [`crate::TraceRing`] (keep-*oldest*, built for complete
//! offline replay), a [`FlightRing`] keeps the *newest* events,
//! overwriting the oldest in place: what matters after a crash is the
//! last few milliseconds, not the first.
//!
//! When the health plane emits a critical event (worker death, watchdog
//! fence, adversarial collapse, drop storm — see [`is_freeze_trigger`])
//! the recorder **freezes**: a [`FlightKind::Freeze`] marker is stamped
//! into the affected core's ring and all further recording becomes a
//! no-op, preserving the pre-crash window. The frozen state dumps as a
//! versioned [`FLIGHT_SCHEMA`] snapshot (same line-oriented idiom as
//! `trace_io`: one flat JSON header, then one CSV event per line) that
//! the `blackbox` bin parses and renders post-mortem.

use crate::registry::MetricsRegistry;
use std::fmt::Write as _;

/// Schema identifier written to (and required in) every flight dump.
pub const FLIGHT_SCHEMA: &str = "sprayer-flight/1";

/// Health-event kind names, indexed by the code carried in
/// [`FlightKind::Health`] / [`FlightKind::Freeze`] events' `a` field.
/// Order matches `HealthEvent::kind` and is part of the dump format.
pub const HEALTH_KIND_NAMES: [&str; 8] = [
    "drop_storm",
    "queue_high_water",
    "fairness_dip",
    "watchdog_fence",
    "worker_death",
    "reconfig_phase",
    "adversarial_collapse",
    "fault_injected",
];

/// The compact code for a health-event kind name (see
/// [`HEALTH_KIND_NAMES`]); unknown names map to the array length.
pub fn health_kind_code(kind: &str) -> u64 {
    HEALTH_KIND_NAMES
        .iter()
        .position(|&n| n == kind)
        .unwrap_or(HEALTH_KIND_NAMES.len()) as u64
}

/// Inverse of [`health_kind_code`].
pub fn health_kind_name(code: u64) -> Option<&'static str> {
    HEALTH_KIND_NAMES.get(code as usize).copied()
}

/// Whether a health-event kind freezes the flight recorder: the
/// critical conditions after which the recent window is the evidence.
pub fn is_freeze_trigger(kind: &str) -> bool {
    matches!(
        kind,
        "worker_death" | "watchdog_fence" | "adversarial_collapse" | "drop_storm"
    )
}

/// What a flight event records. Payload fields `a`/`b` are
/// kind-specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A dequeue batch completed; `a` = batch size, `b` = queue depth
    /// after the batch.
    Batch,
    /// A packet left this core for a designated core's ring; `a` =
    /// target core.
    RedirectOut,
    /// A redirected descriptor was picked up here; `a` = ring transfer
    /// latency in ticks.
    RedirectIn,
    /// A packet was lost; `a` = `DropKind` discriminant.
    Drop,
    /// A health event was emitted; `a` = health kind code
    /// ([`health_kind_code`]), `b` = core it concerned.
    Health,
    /// The recorder froze here; `a` = triggering health kind code,
    /// `b` = core it concerned. Always the last event in its ring.
    Freeze,
}

impl FlightKind {
    /// All kinds.
    pub const ALL: [FlightKind; 6] = [
        FlightKind::Batch,
        FlightKind::RedirectOut,
        FlightKind::RedirectIn,
        FlightKind::Drop,
        FlightKind::Health,
        FlightKind::Freeze,
    ];

    /// Stable wire name (used by the dump format).
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Batch => "batch",
            FlightKind::RedirectOut => "redirect_out",
            FlightKind::RedirectIn => "redirect_in",
            FlightKind::Drop => "drop",
            FlightKind::Health => "health",
            FlightKind::Freeze => "freeze",
        }
    }

    /// Inverse of [`FlightKind::as_str`].
    pub fn parse(s: &str) -> Option<FlightKind> {
        FlightKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// One flight-recorder event: 32 bytes, recorded with a plain store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Timestamp in the producing runtime's native ticks.
    pub ts: u64,
    /// Event type.
    pub kind: FlightKind,
    /// Kind-specific payload (see [`FlightKind`] variants).
    pub a: u64,
    /// Kind-specific payload (see [`FlightKind`] variants).
    pub b: u64,
}

/// A fixed-capacity keep-newest event ring: pushing past capacity
/// overwrites the oldest event in place. Memory is bounded at
/// construction; a saturated ring always holds the `capacity` most
/// recent events.
#[derive(Debug, Clone)]
pub struct FlightRing {
    capacity: usize,
    buf: Vec<FlightEvent>,
    start: usize,
    total: u64,
}

impl FlightRing {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRing {
            capacity,
            buf: Vec::with_capacity(capacity),
            start: 0,
            total: 0,
        }
    }

    /// Record one event, overwriting the oldest if full.
    #[inline]
    pub fn push(&mut self, ev: FlightEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever recorded (held + overwritten).
    pub fn recorded(&self) -> u64 {
        self.total
    }

    /// Events overwritten by newer ones.
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The held events, oldest first.
    pub fn events_in_order(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.start..]);
        out.extend_from_slice(&self.buf[..self.start]);
        out
    }

    /// Fold another ring's contents into this one, preserving
    /// keep-newest semantics: the other ring's held events are replayed
    /// oldest-first (overwriting this ring's oldest when full) and its
    /// already-overwritten count carries over, so `recorded` /
    /// `overwritten` stay exact. The threaded runtime uses this to
    /// accumulate one ring per worker across phase barriers.
    pub fn absorb(&mut self, other: &FlightRing) {
        self.total += other.overwritten();
        for ev in other.events_in_order() {
            self.push(ev);
        }
    }
}

/// Why (and where) a recorder froze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightFreeze {
    /// When the trigger fired, native ticks.
    pub ts: u64,
    /// The triggering health-event kind name.
    pub kind: String,
    /// The core the trigger concerned.
    pub core: u16,
}

/// The simulator-side recorder: one ring per core plus the freeze
/// latch. (The threaded runtime gives each worker its own
/// [`FlightRing`] and a shared atomic freeze flag, then assembles a
/// [`FlightSnapshot`] at join.)
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    rings: Vec<FlightRing>,
    frozen: Option<FlightFreeze>,
}

impl FlightRecorder {
    /// A recorder over `num_cores` cores, `capacity` events per core.
    pub fn new(num_cores: usize, capacity: usize) -> Self {
        FlightRecorder {
            rings: (0..num_cores).map(|_| FlightRing::new(capacity)).collect(),
            frozen: None,
        }
    }

    /// True once a critical event latched the recorder.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Record one event on `core`. A no-op once frozen — the pre-crash
    /// window must survive unmolested.
    #[inline]
    pub fn record(&mut self, core: usize, ev: FlightEvent) {
        if self.frozen.is_some() {
            return;
        }
        if let Some(ring) = self.rings.get_mut(core) {
            ring.push(ev);
        }
    }

    /// Freeze on a critical health event. First trigger wins; the
    /// affected core's ring gets a [`FlightKind::Freeze`] marker as its
    /// final event.
    pub fn freeze(&mut self, ts: u64, kind: &str, core: u16) {
        if self.frozen.is_some() {
            return;
        }
        if let Some(ring) = self.rings.get_mut(core as usize) {
            ring.push(FlightEvent {
                ts,
                kind: FlightKind::Freeze,
                a: health_kind_code(kind),
                b: u64::from(core),
            });
        }
        self.frozen = Some(FlightFreeze {
            ts,
            kind: kind.to_string(),
            core,
        });
    }

    /// Package the rings into a snapshot.
    pub fn snapshot(&self, runtime: &str, ticks_per_us: u64) -> FlightSnapshot {
        FlightSnapshot {
            runtime: runtime.to_string(),
            ticks_per_us,
            frozen: self.frozen.clone(),
            per_core: self.rings.iter().map(|r| r.events_in_order()).collect(),
            recorded: self.rings.iter().map(|r| r.recorded()).sum(),
            overwritten: self.rings.iter().map(|r| r.overwritten()).sum(),
        }
    }
}

/// One run's flight-recorder state, ready to dump, parse, and render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Producing runtime's name (`sim` / `threads`).
    pub runtime: String,
    /// Ticks per microsecond of the producing runtime.
    pub ticks_per_us: u64,
    /// The freeze trigger, if the run crashed.
    pub frozen: Option<FlightFreeze>,
    /// Retained events per core, oldest first.
    pub per_core: Vec<Vec<FlightEvent>>,
    /// Events ever recorded across cores (held + overwritten).
    pub recorded: u64,
    /// Events overwritten by newer ones across cores.
    pub overwritten: u64,
}

impl FlightSnapshot {
    /// Assemble from per-worker rings (threaded runtime) plus the
    /// shared freeze record.
    pub fn assemble(
        runtime: &str,
        ticks_per_us: u64,
        frozen: Option<FlightFreeze>,
        rings: &[FlightRing],
    ) -> FlightSnapshot {
        FlightSnapshot {
            runtime: runtime.to_string(),
            ticks_per_us,
            frozen,
            per_core: rings.iter().map(|r| r.events_in_order()).collect(),
            recorded: rings.iter().map(|r| r.recorded()).sum(),
            overwritten: rings.iter().map(|r| r.overwritten()).sum(),
        }
    }

    /// Retained events across all cores.
    pub fn len(&self) -> usize {
        self.per_core.iter().map(|c| c.len()).sum()
    }

    /// True if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write the `flight_*` registry metric set.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        reg.set_u64("flight_frozen", u64::from(self.frozen.is_some()));
        reg.set_u64("flight_events", self.len() as u64);
        reg.set_u64("flight_recorded", self.recorded);
        reg.set_u64("flight_overwritten", self.overwritten);
        if let Some(f) = &self.frozen {
            reg.set_str("flight_freeze_kind", &f.kind);
            reg.set_u64("flight_freeze_ts", f.ts);
            reg.set_u64("flight_freeze_core", u64::from(f.core));
        }
    }
}

/// Serialize a snapshot to the line-oriented dump format: a flat JSON
/// header, then one `core,ts,kind,a,b` CSV line per event (cores in
/// order, each core's events oldest first).
pub fn write_string(snap: &FlightSnapshot) -> String {
    let mut s = String::with_capacity(64 + 24 * snap.len());
    let _ = write!(
        s,
        "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"runtime\":\"{}\",\"ticks_per_us\":{},\
         \"num_cores\":{},\"events\":{},\"recorded\":{},\"overwritten\":{}",
        snap.runtime,
        snap.ticks_per_us,
        snap.per_core.len(),
        snap.len(),
        snap.recorded,
        snap.overwritten,
    );
    if let Some(f) = &snap.frozen {
        let _ = write!(
            s,
            ",\"freeze_ts\":{},\"freeze_kind\":\"{}\",\"freeze_core\":{}",
            f.ts, f.kind, f.core
        );
    }
    s.push_str("}\n");
    for (core, events) in snap.per_core.iter().enumerate() {
        for ev in events {
            let _ = writeln!(s, "{core},{},{},{},{}", ev.ts, ev.kind.as_str(), ev.a, ev.b);
        }
    }
    s
}

/// Extract an unsigned integer field from the (flat) JSON header line.
fn header_u64(header: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = header.find(&needle)? + needle.len();
    let rest = &header[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a string field from the (flat) JSON header line.
fn header_str<'a>(header: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = header.find(&needle)? + needle.len();
    let rest = &header[at..];
    Some(&rest[..rest.find('"')?])
}

/// Parse a dump previously produced by [`write_string`]. Strict: an
/// unknown schema tag, malformed line, out-of-range core, or
/// event-count mismatch against the header is an error.
pub fn parse(input: &str) -> Result<FlightSnapshot, String> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| "empty flight dump".to_string())?;
    match header_str(header, "schema") {
        Some(FLIGHT_SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "unsupported flight schema {other:?} (want {FLIGHT_SCHEMA:?})"
            ))
        }
        None => return Err("header has no \"schema\" field".to_string()),
    }
    let runtime = header_str(header, "runtime")
        .ok_or("header missing \"runtime\"")?
        .to_string();
    let ticks_per_us =
        header_u64(header, "ticks_per_us").ok_or("header missing \"ticks_per_us\"")?;
    if ticks_per_us == 0 {
        return Err("ticks_per_us must be nonzero".to_string());
    }
    let num_cores = header_u64(header, "num_cores").ok_or("header missing \"num_cores\"")? as usize;
    let declared_events = header_u64(header, "events").ok_or("header missing \"events\"")?;
    let recorded = header_u64(header, "recorded").ok_or("header missing \"recorded\"")?;
    let overwritten = header_u64(header, "overwritten").ok_or("header missing \"overwritten\"")?;
    let frozen = header_u64(header, "freeze_ts").map(|ts| {
        Ok::<_, String>(FlightFreeze {
            ts,
            kind: header_str(header, "freeze_kind")
                .ok_or("header has freeze_ts but no freeze_kind")?
                .to_string(),
            core: header_u64(header, "freeze_core")
                .ok_or("header has freeze_ts but no freeze_core")? as u16,
        })
    });
    let frozen = match frozen {
        None => None,
        Some(Ok(f)) => Some(f),
        Some(Err(e)) => return Err(e),
    };

    let mut per_core: Vec<Vec<FlightEvent>> = vec![Vec::new(); num_cores];
    let mut total = 0u64;
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| format!("line {}: missing {what}", lineno + 2))
        };
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("line {}: bad {what} {s:?}", lineno + 2))
        };
        let core = parse_u64(next("core")?, "core")? as usize;
        let ts = parse_u64(next("ts")?, "ts")?;
        let kind_s = next("kind")?;
        let kind = FlightKind::parse(kind_s)
            .ok_or_else(|| format!("line {}: unknown flight kind {kind_s:?}", lineno + 2))?;
        let a = parse_u64(next("a")?, "a")?;
        let b = parse_u64(next("b")?, "b")?;
        if core >= num_cores {
            return Err(format!(
                "line {}: core {core} out of range (num_cores {num_cores})",
                lineno + 2
            ));
        }
        per_core[core].push(FlightEvent { ts, kind, a, b });
        total += 1;
    }
    if total != declared_events {
        return Err(format!(
            "header declares {declared_events} events but file has {total}"
        ));
    }
    Ok(FlightSnapshot {
        runtime,
        ticks_per_us,
        frozen,
        per_core,
        recorded,
        overwritten,
    })
}

/// Write a snapshot to `path`.
pub fn save(snap: &FlightSnapshot, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, write_string(snap))
}

/// Load a snapshot from `path`.
pub fn load(path: &std::path::Path) -> Result<FlightSnapshot, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthEvent;

    fn ev(ts: u64, kind: FlightKind, a: u64, b: u64) -> FlightEvent {
        FlightEvent { ts, kind, a, b }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut r = FlightRing::new(3);
        for i in 0..5u64 {
            r.push(ev(i, FlightKind::Batch, i, 0));
        }
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.overwritten(), 2);
        let ts: Vec<u64> = r.events_in_order().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest two overwritten, order kept");
    }

    #[test]
    fn absorb_replays_held_events_and_carries_the_loss_count() {
        let mut acc = FlightRing::new(3);
        acc.push(ev(0, FlightKind::Batch, 1, 0));
        let mut phase = FlightRing::new(3);
        for i in 0..5u64 {
            phase.push(ev(10 + i, FlightKind::Batch, i, 0));
        }
        acc.absorb(&phase);
        // Keep-newest across the merge: the accumulator's old event and
        // the phase's own two overwritten events are all gone.
        let ts: Vec<u64> = acc.events_in_order().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![12, 13, 14]);
        assert_eq!(acc.recorded(), 6, "1 + all 5 the phase ever recorded");
        assert_eq!(acc.overwritten(), 3);
    }

    #[test]
    fn recorder_freezes_first_wins_and_stops_recording() {
        let mut rec = FlightRecorder::new(2, 8);
        rec.record(0, ev(10, FlightKind::Batch, 4, 1));
        rec.freeze(20, "worker_death", 1);
        assert!(rec.is_frozen());
        rec.record(0, ev(30, FlightKind::Batch, 4, 1)); // ignored
        rec.freeze(40, "drop_storm", 0); // ignored: first wins
        let snap = rec.snapshot("sim", 1_000_000);
        let f = snap.frozen.as_ref().unwrap();
        assert_eq!((f.ts, f.kind.as_str(), f.core), (20, "worker_death", 1));
        assert_eq!(snap.per_core[0].len(), 1, "post-freeze events dropped");
        // The freeze marker is the affected core's final event.
        let last = snap.per_core[1].last().unwrap();
        assert_eq!(last.kind, FlightKind::Freeze);
        assert_eq!(last.a, health_kind_code("worker_death"));
    }

    #[test]
    fn health_kind_codes_match_the_health_event_names() {
        // The code table must track HealthEvent::kind exactly.
        let events = [
            HealthEvent::DropStorm { core: 0, drops: 1 },
            HealthEvent::QueueHighWater {
                core: 0,
                depth: 1,
                capacity: 2,
            },
            HealthEvent::FairnessDip { jain: 0.1 },
            HealthEvent::WatchdogFence {
                core: 0,
                stalled_ticks: 1,
            },
            HealthEvent::WorkerDeath {
                core: 0,
                message: String::new(),
            },
            HealthEvent::ReconfigPhase {
                epoch: 0,
                phase: "rescale",
                cores: 1,
            },
            HealthEvent::AdversarialCollapse {
                core: 0,
                share: 0.9,
            },
            HealthEvent::FaultInjected {
                kind: "crash",
                core: 0,
            },
        ];
        for e in &events {
            let code = health_kind_code(e.kind());
            assert_eq!(health_kind_name(code), Some(e.kind()));
        }
        assert_eq!(health_kind_code("nonsense"), HEALTH_KIND_NAMES.len() as u64);
        assert_eq!(health_kind_name(99), None);
    }

    #[test]
    fn freeze_triggers_are_the_critical_kinds() {
        for kind in [
            "worker_death",
            "watchdog_fence",
            "adversarial_collapse",
            "drop_storm",
        ] {
            assert!(is_freeze_trigger(kind), "{kind}");
        }
        for kind in [
            "queue_high_water",
            "fairness_dip",
            "reconfig_phase",
            "fault_injected",
        ] {
            assert!(!is_freeze_trigger(kind), "{kind}");
        }
    }

    fn sample_snapshot(frozen: bool) -> FlightSnapshot {
        let mut rec = FlightRecorder::new(2, 4);
        rec.record(0, ev(100, FlightKind::Batch, 8, 3));
        rec.record(1, ev(110, FlightKind::RedirectOut, 0, 0));
        rec.record(0, ev(120, FlightKind::RedirectIn, 250, 0));
        rec.record(1, ev(130, FlightKind::Drop, 1, 0));
        rec.record(0, ev(140, FlightKind::Health, 1, 0));
        if frozen {
            rec.freeze(150, "drop_storm", 1);
        }
        rec.snapshot("sim", 1_000_000)
    }

    #[test]
    fn dump_round_trips_with_and_without_freeze() {
        for frozen in [false, true] {
            let snap = sample_snapshot(frozen);
            let s = write_string(&snap);
            assert!(s.starts_with("{\"schema\":\"sprayer-flight/1\""));
            let back = parse(&s).expect("parse");
            assert_eq!(back, snap);
        }
    }

    #[test]
    fn parse_rejects_wrong_schema_and_malformed_lines() {
        let s = write_string(&sample_snapshot(true));
        let bad = s.replace("sprayer-flight/1", "sprayer-flight/9");
        assert!(parse(&bad)
            .unwrap_err()
            .contains("unsupported flight schema"));
        assert!(parse("junk\n").unwrap_err().contains("schema"));
        let torn = s.replace("redirect_in", "redirect_gone");
        assert!(parse(&torn).unwrap_err().contains("unknown flight kind"));
        let oob = s.replace("\"num_cores\":2", "\"num_cores\":1");
        assert!(parse(&oob).unwrap_err().contains("out of range"));
    }

    #[test]
    fn parse_rejects_event_count_mismatch() {
        let s = write_string(&sample_snapshot(false));
        let truncated: String = s.lines().take(3).collect::<Vec<_>>().join("\n");
        let err = parse(&truncated).unwrap_err();
        assert!(err.contains("events but file has"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let snap = sample_snapshot(true);
        let dir = std::env::temp_dir().join("sprayer-flight-test");
        let path = dir.join("dump.flight");
        save(&snap, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_writes_the_flight_metric_set() {
        let mut reg = MetricsRegistry::new();
        sample_snapshot(true).export(&mut reg);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("flight_frozen").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("flight_events").unwrap().as_u64(), Some(6));
        assert_eq!(doc.get("flight_recorded").unwrap().as_u64(), Some(6));
        assert_eq!(doc.get("flight_overwritten").unwrap().as_u64(), Some(0));
        assert_eq!(
            doc.get("flight_freeze_kind").unwrap().as_str(),
            Some("drop_storm")
        );
        let mut reg = MetricsRegistry::new();
        sample_snapshot(false).export(&mut reg);
        let (_, doc) = MetricsRegistry::parse_document(&reg.to_json()).unwrap();
        assert_eq!(doc.get("flight_frozen").unwrap().as_u64(), Some(0));
        assert!(doc.get("flight_freeze_kind").is_none());
    }
}
