//! The online reorder sketch vs the offline Fenwick analyzer.
//!
//! The sketch ([`sprayer_obs::ReorderSketch`]) estimates per-flow
//! reordering depth in O(1) per completion with a bounded window; the
//! trace analyzer ([`sprayer_obs::analyze`]) computes the exact depths
//! offline with a Fenwick tree over the full completion history. The
//! documented agreement bound: depth estimates are **exact while every
//! inversion spans fewer completions than the window**, and are never
//! over-estimates; the reordered-completion *count* is exact for any
//! window (it needs only the per-flow running maximum, which the sketch
//! keeps unbounded).
//!
//! The generator produces bounded-displacement-`d` shuffles (each
//! packet completes within `d` positions of its arrival rank), for
//! which every inversion spans at most `2d - 1` completions — so a
//! window of `2d` must reproduce the analyzer bit-for-bit, while an
//! arbitrary permutation under a tiny window must still match on the
//! count and never exceed the exact depths.

use proptest::collection::vec;
use proptest::prelude::*;
use sprayer_obs::{analyze, EventKind, ReorderSketch, Trace, TraceEvent, TraceMeta};

/// Per-flow ordinal space offset: keeps global arrival ordinals unique
/// while leaving per-flow order intact (both sides compare per flow).
const FLOW_STRIDE: u64 = 1 << 20;

/// Completion order of one flow: indices `0..n` stably sorted by
/// `rank + jitter` with `jitter <= d`, which displaces every element by
/// at most `d` positions.
fn bounded_shuffle(jitters: &[u16], d: u64) -> Vec<u64> {
    let mut order: Vec<u64> = (0..jitters.len() as u64).collect();
    order.sort_by_key(|&k| k + u64::from(jitters[k as usize]) % (d + 1));
    order
}

/// Interleave per-flow completion orders round-robin into one global
/// completion stream of `(flow_id, arrival_ordinal)`.
fn interleave(flows: &[Vec<u64>]) -> Vec<(u64, u64)> {
    let mut stream = Vec::new();
    let mut pos = vec![0usize; flows.len()];
    loop {
        let mut advanced = false;
        for (f, order) in flows.iter().enumerate() {
            if pos[f] < order.len() {
                let flow_id = f as u64 + 1;
                stream.push((flow_id, flow_id * FLOW_STRIDE + order[pos[f]]));
                pos[f] += 1;
                advanced = true;
            }
        }
        if !advanced {
            return stream;
        }
    }
}

/// A synthetic trace whose `NfDone` events replay `stream` in order.
fn trace_of(stream: &[(u64, u64)]) -> Trace {
    let events = stream
        .iter()
        .enumerate()
        .map(|(i, &(flow, ordinal))| TraceEvent {
            seq: i as u64,
            ts: i as u64,
            core: 0,
            kind: EventKind::NfDone,
            flow,
            pkt: ordinal,
            aux: 0,
        })
        .collect();
    Trace {
        meta: TraceMeta {
            runtime: "synthetic".to_string(),
            ticks_per_us: 1_000,
            num_cores: 1,
            expected: None,
        },
        events,
        dropped: 0,
    }
}

/// Feed the stream through a sketch with the given window.
fn sketch_of(stream: &[(u64, u64)], window: usize) -> sprayer_obs::ReorderReport {
    let mut sketch = ReorderSketch::new(window, 64);
    for &(flow, ordinal) in stream {
        sketch.on_complete(0, flow, ordinal);
    }
    sketch.report()
}

proptest! {
    /// Window `2d` over a displacement-`d` shuffle: the sketch and the
    /// analyzer agree exactly — reordered count, total depth, max depth.
    #[test]
    fn sketch_is_exact_when_the_window_covers_every_inversion(
        d in 0u64..8,
        flow_jitters in vec(vec(any::<u16>(), 1..60), 1..6),
    ) {
        let orders: Vec<Vec<u64>> = flow_jitters
            .iter()
            .map(|j| bounded_shuffle(j, d))
            .collect();
        let stream = interleave(&orders);
        let window = (2 * d).max(1) as usize;
        let online = sketch_of(&stream, window);
        let offline = analyze(&trace_of(&stream));

        prop_assert_eq!(online.completions, stream.len() as u64);
        prop_assert_eq!(online.untracked, 0);
        prop_assert_eq!(online.reordered, offline.reordered_packets());
        let offline_total: u64 = offline.flows.iter().map(|f| f.total_depth).sum();
        prop_assert_eq!(online.depth_hist.sum(), u128::from(offline_total));
        prop_assert_eq!(
            online.depth_hist.max().unwrap_or(0),
            offline.max_depth()
        );
    }

    /// An arbitrary permutation under a deliberately tiny window: the
    /// reordered count is still exact, and the windowed depths are
    /// lower bounds on the analyzer's — never over-estimates.
    #[test]
    fn tiny_window_keeps_the_count_exact_and_underestimates_depth(
        flow_keys in vec(vec(any::<u16>(), 1..80), 1..4),
    ) {
        let orders: Vec<Vec<u64>> = flow_keys
            .iter()
            .map(|keys| {
                let mut order: Vec<u64> = (0..keys.len() as u64).collect();
                order.sort_by_key(|&k| keys[k as usize]);
                order
            })
            .collect();
        let stream = interleave(&orders);
        let online = sketch_of(&stream, 2);
        let offline = analyze(&trace_of(&stream));

        prop_assert_eq!(online.reordered, offline.reordered_packets());
        let offline_total: u64 = offline.flows.iter().map(|f| f.total_depth).sum();
        prop_assert!(online.depth_hist.sum() <= u128::from(offline_total));
        prop_assert!(online.depth_hist.max().unwrap_or(0) <= offline.max_depth());
    }
}
