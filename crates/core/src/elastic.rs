//! Elastic reconfiguration primitives shared by both runtimes.
//!
//! An elastic middlebox changes its worker-core count while flows are
//! live. Each reconfiguration is an *epoch transition* executed in four
//! steps — quiesce → remap → migrate → resume:
//!
//! 1. **quiesce** — in-flight work is pulled off the cores (the
//!    simulator re-queues it; the threaded runtime joins its workers at
//!    a phase barrier);
//! 2. **remap** — the [`crate::coremap::CoreMap`] advances one epoch
//!    ([`crate::coremap::CoreMap::rescaled`]) and the NIC is
//!    reprogrammed for the new queue count. Under Sprayer the designated
//!    mapping is a rendezvous hash over a set that never grows: a
//!    scale-up pins every existing assignment (zero migration — the
//!    joiners take sprayed data-plane work immediately) and a
//!    scale-down moves exactly the leavers' flows; under RSS the
//!    indirection table is rebuilt and every flow whose queue changed
//!    moves;
//! 3. **migrate** — every flow whose designated core changed is exported
//!    from the old table and imported into the new one, running the NF's
//!    [`crate::api::NetworkFunction::freeze_flow`] /
//!    [`crate::api::NetworkFunction::adopt_flow`] hooks;
//! 4. **resume** — cores restart; the pause is charged as *downtime*
//!    proportional to the number of migrated flows.
//!
//! A [`ReconfigReport`] records what one transition did and what it
//! cost. The `sprayer-ctl` crate turns a schedule of transitions into a
//! [`ReconfigReport`] series and registry telemetry.

use crate::config::DispatchMode;
use serde::{Deserialize, Serialize};

/// Outcome and cost of one elastic reconfiguration (epoch transition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// The epoch the transition moved *to*.
    pub epoch: u64,
    /// Dispatch mode of the middlebox (determines the remap policy).
    pub mode: DispatchMode,
    /// Active cores before the transition.
    pub from_cores: usize,
    /// Active cores after the transition.
    pub to_cores: usize,
    /// Flows whose designated core changed (export + import executed).
    pub migrated_flows: u64,
    /// Flows that stayed on their designated core.
    pub retained_flows: u64,
    /// In-flight packets pulled off the cores and re-admitted through
    /// the new steering (counted in the conservation invariant: each is
    /// eventually processed or dropped, never lost).
    pub migrated_packets: u64,
    /// Length of the processing pause, nanoseconds (simulated time in
    /// the simulator, wall time in the threaded runtime).
    pub downtime_ns: u64,
    /// When the transition started, nanoseconds since run start.
    pub at_ns: u64,
}

impl ReconfigReport {
    /// Fraction of pre-transition flows that had to move.
    pub fn migrated_fraction(&self) -> f64 {
        let total = self.migrated_flows + self.retained_flows;
        if total == 0 {
            0.0
        } else {
            self.migrated_flows as f64 / total as f64
        }
    }

    /// One JSON object (integers and one string, hand-rolled like
    /// [`crate::stats::MiddleboxStats::to_json`]) for registry datapoint
    /// arrays.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"epoch\":{},\"mode\":\"{}\",\"from_cores\":{},\"to_cores\":{},\
             \"migrated_flows\":{},\"retained_flows\":{},\"migrated_packets\":{},\
             \"downtime_ns\":{},\"at_ns\":{}}}",
            self.epoch,
            self.mode,
            self.from_cores,
            self.to_cores,
            self.migrated_flows,
            self.retained_flows,
            self.migrated_packets,
            self.downtime_ns,
            self.at_ns,
        )
    }
}

/// Outcome and cost of one *unplanned* recovery: a core failed, the
/// failure was detected, and the survivors took over its flows.
///
/// The key asymmetry [`crate::runtime_sim::MiddleboxSim::recover`]
/// measures: under Sprayer only the dead core's designated flows remap
/// — and because their state lived *only* there (write-partitioned
/// tables), they are counted as [`RecoveryReport::flows_lost`], not
/// migrated. Under RSS the rebuilt indirection table remaps surviving
/// flows broadly, so recovery pays a real migration bill
/// ([`RecoveryReport::migrated_flows`]) *on top of* losing the dead
/// core's state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The epoch the recovery moved *to*.
    pub epoch: u64,
    /// Dispatch mode of the middlebox (determines the remap policy).
    pub mode: DispatchMode,
    /// The core that failed.
    pub failed_core: usize,
    /// Active (surviving) cores before the recovery.
    pub from_active: usize,
    /// Active cores after the recovery.
    pub to_active: usize,
    /// Surviving flows whose designated core changed (state exported
    /// and imported through the NF hooks).
    pub migrated_flows: u64,
    /// Flows that stayed on their surviving designated core.
    pub retained_flows: u64,
    /// Flows whose state lived only on the failed core: their entries
    /// are gone and the connection must be re-established.
    pub flows_lost: u64,
    /// Packets stranded on the failed core (queued, ringed, or steered
    /// to it before detection) — folded into
    /// [`crate::stats::MiddleboxStats::lost_packets`].
    pub packets_lost: u64,
    /// Failure-to-detection latency, nanoseconds.
    pub detection_latency_ns: u64,
    /// Length of the recovery pause, nanoseconds.
    pub downtime_ns: u64,
    /// When the recovery started, nanoseconds since run start.
    pub at_ns: u64,
}

impl RecoveryReport {
    /// One JSON object for registry datapoint arrays (hand-rolled like
    /// [`ReconfigReport::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"epoch\":{},\"mode\":\"{}\",\"failed_core\":{},\"from_active\":{},\
             \"to_active\":{},\"migrated_flows\":{},\"retained_flows\":{},\
             \"flows_lost\":{},\"packets_lost\":{},\"detection_latency_ns\":{},\
             \"downtime_ns\":{},\"at_ns\":{}}}",
            self.epoch,
            self.mode,
            self.failed_core,
            self.from_active,
            self.to_active,
            self.migrated_flows,
            self.retained_flows,
            self.flows_lost,
            self.packets_lost,
            self.detection_latency_ns,
            self.downtime_ns,
            self.at_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrated_fraction_handles_empty_tables() {
        let r = ReconfigReport {
            epoch: 1,
            mode: DispatchMode::Sprayer,
            from_cores: 2,
            to_cores: 4,
            migrated_flows: 0,
            retained_flows: 0,
            migrated_packets: 0,
            downtime_ns: 0,
            at_ns: 0,
        };
        assert_eq!(r.migrated_fraction(), 0.0);
        let r = ReconfigReport {
            migrated_flows: 1,
            retained_flows: 3,
            ..r
        };
        assert!((r.migrated_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn json_includes_every_field() {
        let r = ReconfigReport {
            epoch: 2,
            mode: DispatchMode::Rss,
            from_cores: 4,
            to_cores: 2,
            migrated_flows: 11,
            retained_flows: 7,
            migrated_packets: 3,
            downtime_ns: 12_500,
            at_ns: 1_000_000,
        };
        let j = r.to_json();
        for needle in [
            "\"epoch\":2",
            "\"mode\":\"RSS\"",
            "\"from_cores\":4",
            "\"to_cores\":2",
            "\"migrated_flows\":11",
            "\"retained_flows\":7",
            "\"migrated_packets\":3",
            "\"downtime_ns\":12500",
            "\"at_ns\":1000000",
        ] {
            assert!(j.contains(needle), "{j} missing {needle}");
        }
    }

    #[test]
    fn recovery_json_includes_every_field() {
        let r = RecoveryReport {
            epoch: 3,
            mode: DispatchMode::Sprayer,
            failed_core: 1,
            from_active: 4,
            to_active: 3,
            migrated_flows: 0,
            retained_flows: 90,
            flows_lost: 27,
            packets_lost: 5,
            detection_latency_ns: 50_000,
            downtime_ns: 20_000,
            at_ns: 2_000_000,
        };
        let j = r.to_json();
        for needle in [
            "\"epoch\":3",
            "\"mode\":\"Sprayer\"",
            "\"failed_core\":1",
            "\"from_active\":4",
            "\"to_active\":3",
            "\"migrated_flows\":0",
            "\"retained_flows\":90",
            "\"flows_lost\":27",
            "\"packets_lost\":5",
            "\"detection_latency_ns\":50000",
            "\"downtime_ns\":20000",
            "\"at_ns\":2000000",
        ] {
            assert!(j.contains(needle), "{j} missing {needle}");
        }
    }
}
