//! Open-addressing flow table: the storage engine under
//! [`crate::tables`].
//!
//! The per-core flow tables used to be `std::collections::HashMap`s.
//! That cost the hot path twice: SipHash on every lookup (the key
//! already carries a pinned [`FlowKey::stable_hash`], recomputing a
//! keyed hash is pure overhead), and `RandomState`-dependent iteration
//! order, which made migration traversals and regenerated telemetry
//! documents nondeterministic across processes.
//!
//! [`FlowTable`] replaces it with linear-probing open addressing:
//!
//! * **power-of-two slot counts** — the probe position is
//!   `stable_hash & mask`, no division;
//! * **inline entries** — key and state live in the slot array itself
//!   (one cache line for small state), no per-entry allocation;
//! * **tombstones** — removals leave a marker so probe chains stay
//!   intact; rehashes (growth) clear them;
//! * **deterministic iteration** — [`FlowTable::iter`] and
//!   [`FlowTable::drain`] walk slots in index order, a pure function of
//!   the operation history, identical on every machine and run.
//!
//! The table grows itself (doubling at ~3/4 occupancy); the *logical*
//! flow-table capacity the paper's NF configs specify is enforced above
//! this layer by [`crate::tables`], which rejects inserts past the
//! configured flow budget.
//!
//! # Flow lifecycle support
//!
//! Every live slot carries a *touch stamp*: the table's lazy clock
//! value at the entry's last write (insert, replace, or
//! [`FlowTable::get_mut`]). The runtime advances the clock with
//! [`FlowTable::set_clock`] before dispatching a batch — one store, no
//! per-packet time syscall — and the stamps feed two reclaim paths:
//!
//! * [`FlowTable::collect_idle`] — keys whose stamp is at or below a
//!   deadline (idle-timeout aging);
//! * [`FlowTable::lru_victim`] — an approximate-LRU victim chosen by a
//!   deterministic clock-hand sample of [`LRU_PROBES`] live slots
//!   (ties break toward the lower stamp, then the lower slot index),
//!   so the bounded-memory backstop costs O(probes), not O(table).
//!
//! Reads deliberately do *not* touch: under spraying, foreign cores
//! read a designated core's table without write access, so only writes
//! can stamp — and a flow that is read but never written is, for state
//! purposes, idle.

use sprayer_net::FlowKey;

/// Minimum slot-array size (power of two).
const MIN_SLOTS: usize = 16;

/// Live slots sampled per [`FlowTable::lru_victim`] call.
const LRU_PROBES: usize = 16;

#[derive(Debug, Clone)]
enum Slot<S> {
    /// Never occupied: a probe chain may stop here.
    Empty,
    /// Previously occupied: probe chains continue through it, inserts
    /// may reuse it.
    Tombstone,
    /// A live entry, stored inline, with its last write-touch stamp.
    Full(FlowKey, S, u64),
}

/// A linear-probing open-addressing hash table keyed by [`FlowKey`],
/// hashed with the pinned [`FlowKey::stable_hash`].
#[derive(Debug, Clone)]
pub struct FlowTable<S> {
    slots: Vec<Slot<S>>,
    mask: u64,
    len: usize,
    tombstones: usize,
    /// Lazy clock: stamps applied to write-touched entries. Advanced by
    /// the runtime ([`FlowTable::set_clock`]), never by the table.
    clock: u64,
    /// Clock hand for the LRU victim sampler (wraps over slot indices).
    hand: usize,
}

impl<S> Default for FlowTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> FlowTable<S> {
    /// An empty table at the minimum slot count.
    pub fn new() -> Self {
        Self::with_slots(MIN_SLOTS)
    }

    /// An empty table pre-sized so `hint` entries fit without growth.
    pub fn with_capacity_hint(hint: usize) -> Self {
        let want = hint
            .saturating_mul(4)
            .div_ceil(3)
            .next_power_of_two()
            .max(MIN_SLOTS);
        Self::with_slots(want)
    }

    fn with_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        FlowTable {
            slots: (0..slots).map(|_| Slot::Empty).collect(),
            mask: (slots - 1) as u64,
            len: 0,
            tombstones: 0,
            clock: 0,
            hand: 0,
        }
    }

    /// Advance the lazy clock: subsequent write-touches stamp `now`.
    /// Monotone by contract (an older value is ignored).
    pub fn set_clock(&mut self, now: u64) {
        self.clock = self.clock.max(now);
    }

    /// The lazy clock's current value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array size (diagnostics; always a power of two).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Find `key`'s slot index, or `None` if absent.
    fn find(&self, key: &FlowKey) -> Option<usize> {
        let mut i = (key.stable_hash() & self.mask) as usize;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(k, _, _) if k == key => return Some(i),
                _ => i = (i + 1) & self.mask as usize,
            }
        }
    }

    /// Shared reference to `key`'s state.
    pub fn get(&self, key: &FlowKey) -> Option<&S> {
        match self.find(key) {
            Some(i) => match &self.slots[i] {
                Slot::Full(_, s, _) => Some(s),
                _ => unreachable!("find returns Full slots"),
            },
            None => None,
        }
    }

    /// Mutable reference to `key`'s state. A write-touch: the entry's
    /// stamp advances to the current clock.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut S> {
        let clock = self.clock;
        match self.find(key) {
            Some(i) => match &mut self.slots[i] {
                Slot::Full(_, s, stamp) => {
                    *stamp = clock;
                    Some(s)
                }
                _ => unreachable!("find returns Full slots"),
            },
            None => None,
        }
    }

    /// The clock value at `key`'s last write-touch.
    pub fn last_touch(&self, key: &FlowKey) -> Option<u64> {
        match self.find(key) {
            Some(i) => match &self.slots[i] {
                Slot::Full(_, _, stamp) => Some(*stamp),
                _ => unreachable!("find returns Full slots"),
            },
            None => None,
        }
    }

    /// True if `key` has a live entry.
    pub fn contains_key(&self, key: &FlowKey) -> bool {
        self.find(key).is_some()
    }

    /// Insert or replace; returns the previous state if the key was
    /// present (the `HashMap::insert` contract).
    pub fn insert(&mut self, key: FlowKey, state: S) -> Option<S> {
        // Grow before probing when occupancy (live + tombstones) would
        // pass 3/4 — keeps probe chains short and bounds the scan.
        if (self.len + self.tombstones + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = (key.stable_hash() & self.mask) as usize;
        let mut first_tombstone: Option<usize> = None;
        loop {
            match &mut self.slots[i] {
                Slot::Full(k, s, stamp) if *k == key => {
                    *stamp = self.clock;
                    return Some(std::mem::replace(s, state));
                }
                Slot::Full(..) => {}
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                }
                Slot::Empty => {
                    let target = match first_tombstone {
                        Some(t) => {
                            self.tombstones -= 1;
                            t
                        }
                        None => i,
                    };
                    self.slots[target] = Slot::Full(key, state, self.clock);
                    self.len += 1;
                    return None;
                }
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// Remove `key`'s entry, returning its state.
    pub fn remove(&mut self, key: &FlowKey) -> Option<S> {
        let i = self.find(key)?;
        match std::mem::replace(&mut self.slots[i], Slot::Tombstone) {
            Slot::Full(_, s, _) => {
                self.len -= 1;
                self.tombstones += 1;
                Some(s)
            }
            _ => unreachable!("find returns Full slots"),
        }
    }

    /// Keys whose last write-touch is at or below `deadline`, in slot
    /// order (deterministic). The idle-timeout sweep: the caller
    /// computes `deadline = clock - timeout` and removes the survivors
    /// it actually wants gone.
    pub fn collect_idle(&self, deadline: u64) -> Vec<FlowKey> {
        self.slots
            .iter()
            .filter_map(|slot| match slot {
                Slot::Full(k, _, stamp) if *stamp <= deadline => Some(*k),
                _ => None,
            })
            .collect()
    }

    /// Approximate-LRU victim: deterministically sample up to
    /// [`LRU_PROBES`] live slots from the clock hand and return the key
    /// with the oldest stamp (ties break toward the lower slot index).
    /// Advances the hand so repeated calls cycle the whole table.
    pub fn lru_victim(&mut self) -> Option<FlowKey> {
        if self.len == 0 {
            return None;
        }
        let n = self.slots.len();
        let mut best: Option<(u64, usize, FlowKey)> = None;
        let mut sampled = 0usize;
        let mut scanned = 0usize;
        let mut i = self.hand % n;
        while sampled < LRU_PROBES && scanned < n {
            if let Slot::Full(k, _, stamp) = &self.slots[i] {
                sampled += 1;
                let candidate = (*stamp, i, *k);
                best = match best {
                    Some(b) if (b.0, b.1) <= (candidate.0, candidate.1) => Some(b),
                    _ => Some(candidate),
                };
            }
            i = (i + 1) % n;
            scanned += 1;
        }
        self.hand = i;
        best.map(|(_, _, k)| k)
    }

    /// Double the slot array (or compact tombstones away) and rehash.
    fn grow(&mut self) {
        // If tombstones dominate, rehashing at the same size suffices;
        // otherwise double. Either way tombstones vanish.
        let new_slots = if self.len * 2 >= self.slots.len() {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_slots).map(|_| Slot::Empty).collect(),
        );
        self.mask = (new_slots - 1) as u64;
        self.tombstones = 0;
        self.hand = 0;
        for slot in old {
            if let Slot::Full(key, state, stamp) = slot {
                let mut i = (key.stable_hash() & self.mask) as usize;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & self.mask as usize;
                }
                self.slots[i] = Slot::Full(key, state, stamp);
            }
        }
    }

    /// Iterate live entries in slot order — deterministic for a given
    /// operation history, independent of process or machine.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &S)> {
        self.slots.iter().filter_map(|slot| match slot {
            Slot::Full(k, s, _) => Some((k, s)),
            _ => None,
        })
    }

    /// Remove and yield every live entry in slot order, leaving the
    /// table empty at the minimum size.
    pub fn drain(&mut self) -> impl Iterator<Item = (FlowKey, S)> {
        let old = std::mem::take(self);
        old.into_iter()
    }
}

impl<S> IntoIterator for FlowTable<S> {
    type Item = (FlowKey, S);
    type IntoIter = IntoIter<S>;

    fn into_iter(self) -> IntoIter<S> {
        IntoIter {
            slots: self.slots.into_iter(),
        }
    }
}

/// Owning slot-order iterator over a [`FlowTable`].
#[derive(Debug)]
pub struct IntoIter<S> {
    slots: std::vec::IntoIter<Slot<S>>,
}

impl<S> Iterator for IntoIter<S> {
    type Item = (FlowKey, S);

    fn next(&mut self) -> Option<(FlowKey, S)> {
        for slot in self.slots.by_ref() {
            if let Slot::Full(k, s, _) = slot {
                return Some((k, s));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer_net::FiveTuple;

    fn key(i: u32) -> FlowKey {
        FiveTuple::tcp(0x0a00_0000 + i, 1000, 0xc0a8_0001, 443).key()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: FlowTable<u32> = FlowTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(key(1), 10), None);
        assert_eq!(t.insert(key(2), 20), None);
        assert_eq!(t.insert(key(1), 11), Some(10), "replace returns old");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&key(1)), Some(&11));
        assert_eq!(t.get(&key(3)), None);
        assert!(t.contains_key(&key(2)));
        assert_eq!(t.remove(&key(1)), Some(11));
        assert_eq!(t.remove(&key(1)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t: FlowTable<u32> = FlowTable::new();
        t.insert(key(7), 1);
        *t.get_mut(&key(7)).unwrap() += 41;
        assert_eq!(t.get(&key(7)), Some(&42));
        assert_eq!(t.get_mut(&key(8)), None);
    }

    #[test]
    fn grows_past_initial_size_and_keeps_every_entry() {
        let mut t: FlowTable<u32> = FlowTable::new();
        let n = 10_000u32;
        for i in 0..n {
            assert_eq!(t.insert(key(i), i), None, "key {i}");
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.slot_count().is_power_of_two());
        for i in 0..n {
            assert_eq!(t.get(&key(i)), Some(&i), "key {i}");
        }
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        // Insert colliding-ish keys, delete interior ones, and verify
        // lookups still find everything on the far side of the holes.
        let mut t: FlowTable<u32> = FlowTable::new();
        for i in 0..64u32 {
            t.insert(key(i), i);
        }
        for i in (0..64u32).step_by(2) {
            assert_eq!(t.remove(&key(i)), Some(i));
        }
        for i in 0..64u32 {
            if i % 2 == 0 {
                assert_eq!(t.get(&key(i)), None);
            } else {
                assert_eq!(t.get(&key(i)), Some(&i));
            }
        }
        // Reinsert into the holes.
        for i in (0..64u32).step_by(2) {
            assert_eq!(t.insert(key(i), i + 100), None);
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.get(&key(0)), Some(&100));
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        // Repeated insert/remove of the same working set must not grow
        // the table without bound (tombstone rehash compacts).
        let mut t: FlowTable<u32> = FlowTable::new();
        for round in 0..200u32 {
            for i in 0..32u32 {
                t.insert(key(i), round);
            }
            for i in 0..32u32 {
                t.remove(&key(i));
            }
        }
        assert!(t.is_empty());
        assert!(
            t.slot_count() <= 256,
            "churn must not balloon the slot array: {}",
            t.slot_count()
        );
    }

    #[test]
    fn iteration_order_is_deterministic_and_slot_ordered() {
        let build = || {
            let mut t: FlowTable<u32> = FlowTable::new();
            for i in 0..100u32 {
                t.insert(key(i), i);
            }
            for i in (0..100u32).step_by(3) {
                t.remove(&key(i));
            }
            t
        };
        let a: Vec<_> = build().iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = build().iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b, "identical histories iterate identically");
        let drained: Vec<_> = build().into_iter().collect();
        assert_eq!(a, drained, "borrowing and owning iteration agree");
    }

    #[test]
    fn drain_empties_and_yields_everything() {
        let mut t: FlowTable<u32> = FlowTable::new();
        for i in 0..50u32 {
            t.insert(key(i), i);
        }
        let mut got: Vec<u32> = t.drain().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert!(t.is_empty());
        assert_eq!(t.slot_count(), MIN_SLOTS);
        // The drained table is fully reusable.
        t.insert(key(1), 1);
        assert_eq!(t.get(&key(1)), Some(&1));
    }

    #[test]
    fn capacity_hint_presizes() {
        let t: FlowTable<u32> = FlowTable::with_capacity_hint(1000);
        assert!(t.slot_count() >= 1024 + 512, "hint must leave probe slack");
    }

    #[test]
    fn write_touches_stamp_the_clock_and_reads_do_not() {
        let mut t: FlowTable<u32> = FlowTable::new();
        t.insert(key(1), 1);
        assert_eq!(t.last_touch(&key(1)), Some(0));
        t.set_clock(10);
        assert_eq!(t.get(&key(1)), Some(&1), "read…");
        assert_eq!(t.last_touch(&key(1)), Some(0), "…does not touch");
        *t.get_mut(&key(1)).unwrap() += 1;
        assert_eq!(t.last_touch(&key(1)), Some(10), "get_mut touches");
        t.set_clock(20);
        t.insert(key(1), 5);
        assert_eq!(t.last_touch(&key(1)), Some(20), "replace touches");
        t.set_clock(5);
        assert_eq!(t.clock(), 20, "the clock never runs backwards");
    }

    #[test]
    fn collect_idle_finds_exactly_the_expired_entries() {
        let mut t: FlowTable<u32> = FlowTable::new();
        for i in 0..8u32 {
            t.set_clock(u64::from(i) * 10);
            t.insert(key(i), i);
        }
        // deadline 30: entries stamped 0,10,20,30 are idle.
        let idle = t.collect_idle(30);
        assert_eq!(idle.len(), 4);
        for k in &idle {
            assert!(t.last_touch(k).unwrap() <= 30);
        }
        // A touch rescues an entry from the next sweep.
        t.set_clock(100);
        *t.get_mut(&key(0)).unwrap() = 99;
        assert!(!t.collect_idle(30).contains(&key(0)));
    }

    #[test]
    fn lru_victim_prefers_the_oldest_stamp_and_cycles() {
        let mut t: FlowTable<u32> = FlowTable::new();
        for i in 0..8u32 {
            t.set_clock(u64::from(i) * 10);
            t.insert(key(i), i);
        }
        // Repeated victim+remove drains the table oldest-first within
        // each sample window; with 8 entries and 16 probes the sample
        // covers the whole table, so eviction order is exact LRU.
        let mut order = Vec::new();
        while let Some(victim) = t.lru_victim() {
            order.push(t.last_touch(&victim).unwrap());
            t.remove(&victim);
        }
        assert_eq!(order.len(), 8);
        assert!(order.windows(2).all(|w| w[0] <= w[1]), "stamps {order:?}");
        assert!(t.lru_victim().is_none(), "empty table has no victim");
    }

    #[test]
    fn lru_victim_is_deterministic() {
        let build = || {
            let mut t: FlowTable<u32> = FlowTable::new();
            for i in 0..200u32 {
                t.set_clock(u64::from(i));
                t.insert(key(i), i);
            }
            let mut picks = Vec::new();
            for _ in 0..20 {
                let v = t.lru_victim().unwrap();
                picks.push(v);
                t.remove(&v);
            }
            picks
        };
        assert_eq!(build(), build(), "identical histories pick identically");
    }

    #[test]
    fn grow_preserves_stamps() {
        let mut t: FlowTable<u32> = FlowTable::new();
        for i in 0..1000u32 {
            t.set_clock(u64::from(i));
            t.insert(key(i), i);
        }
        for i in 0..1000u32 {
            assert_eq!(t.last_touch(&key(i)), Some(u64::from(i)), "key {i}");
        }
    }
}
