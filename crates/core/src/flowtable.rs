//! Open-addressing flow table: the storage engine under
//! [`crate::tables`].
//!
//! The per-core flow tables used to be `std::collections::HashMap`s.
//! That cost the hot path twice: SipHash on every lookup (the key
//! already carries a pinned [`FlowKey::stable_hash`], recomputing a
//! keyed hash is pure overhead), and `RandomState`-dependent iteration
//! order, which made migration traversals and regenerated telemetry
//! documents nondeterministic across processes.
//!
//! [`FlowTable`] replaces it with linear-probing open addressing:
//!
//! * **power-of-two slot counts** — the probe position is
//!   `stable_hash & mask`, no division;
//! * **inline entries** — key and state live in the slot array itself
//!   (one cache line for small state), no per-entry allocation;
//! * **tombstones** — removals leave a marker so probe chains stay
//!   intact; rehashes (growth) clear them;
//! * **deterministic iteration** — [`FlowTable::iter`] and
//!   [`FlowTable::drain`] walk slots in index order, a pure function of
//!   the operation history, identical on every machine and run.
//!
//! The table grows itself (doubling at ~3/4 occupancy); the *logical*
//! flow-table capacity the paper's NF configs specify is enforced above
//! this layer by [`crate::tables`], which rejects inserts past the
//! configured flow budget.

use sprayer_net::FlowKey;

/// Minimum slot-array size (power of two).
const MIN_SLOTS: usize = 16;

#[derive(Debug, Clone)]
enum Slot<S> {
    /// Never occupied: a probe chain may stop here.
    Empty,
    /// Previously occupied: probe chains continue through it, inserts
    /// may reuse it.
    Tombstone,
    /// A live entry, stored inline.
    Full(FlowKey, S),
}

/// A linear-probing open-addressing hash table keyed by [`FlowKey`],
/// hashed with the pinned [`FlowKey::stable_hash`].
#[derive(Debug, Clone)]
pub struct FlowTable<S> {
    slots: Vec<Slot<S>>,
    mask: u64,
    len: usize,
    tombstones: usize,
}

impl<S> Default for FlowTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> FlowTable<S> {
    /// An empty table at the minimum slot count.
    pub fn new() -> Self {
        Self::with_slots(MIN_SLOTS)
    }

    /// An empty table pre-sized so `hint` entries fit without growth.
    pub fn with_capacity_hint(hint: usize) -> Self {
        let want = hint
            .saturating_mul(4)
            .div_ceil(3)
            .next_power_of_two()
            .max(MIN_SLOTS);
        Self::with_slots(want)
    }

    fn with_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        FlowTable {
            slots: (0..slots).map(|_| Slot::Empty).collect(),
            mask: (slots - 1) as u64,
            len: 0,
            tombstones: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array size (diagnostics; always a power of two).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Find `key`'s slot index, or `None` if absent.
    fn find(&self, key: &FlowKey) -> Option<usize> {
        let mut i = (key.stable_hash() & self.mask) as usize;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(k, _) if k == key => return Some(i),
                _ => i = (i + 1) & self.mask as usize,
            }
        }
    }

    /// Shared reference to `key`'s state.
    pub fn get(&self, key: &FlowKey) -> Option<&S> {
        match self.find(key) {
            Some(i) => match &self.slots[i] {
                Slot::Full(_, s) => Some(s),
                _ => unreachable!("find returns Full slots"),
            },
            None => None,
        }
    }

    /// Mutable reference to `key`'s state.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut S> {
        match self.find(key) {
            Some(i) => match &mut self.slots[i] {
                Slot::Full(_, s) => Some(s),
                _ => unreachable!("find returns Full slots"),
            },
            None => None,
        }
    }

    /// True if `key` has a live entry.
    pub fn contains_key(&self, key: &FlowKey) -> bool {
        self.find(key).is_some()
    }

    /// Insert or replace; returns the previous state if the key was
    /// present (the `HashMap::insert` contract).
    pub fn insert(&mut self, key: FlowKey, state: S) -> Option<S> {
        // Grow before probing when occupancy (live + tombstones) would
        // pass 3/4 — keeps probe chains short and bounds the scan.
        if (self.len + self.tombstones + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = (key.stable_hash() & self.mask) as usize;
        let mut first_tombstone: Option<usize> = None;
        loop {
            match &mut self.slots[i] {
                Slot::Full(k, s) if *k == key => {
                    return Some(std::mem::replace(s, state));
                }
                Slot::Full(..) => {}
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                }
                Slot::Empty => {
                    let target = match first_tombstone {
                        Some(t) => {
                            self.tombstones -= 1;
                            t
                        }
                        None => i,
                    };
                    self.slots[target] = Slot::Full(key, state);
                    self.len += 1;
                    return None;
                }
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// Remove `key`'s entry, returning its state.
    pub fn remove(&mut self, key: &FlowKey) -> Option<S> {
        let i = self.find(key)?;
        match std::mem::replace(&mut self.slots[i], Slot::Tombstone) {
            Slot::Full(_, s) => {
                self.len -= 1;
                self.tombstones += 1;
                Some(s)
            }
            _ => unreachable!("find returns Full slots"),
        }
    }

    /// Double the slot array (or compact tombstones away) and rehash.
    fn grow(&mut self) {
        // If tombstones dominate, rehashing at the same size suffices;
        // otherwise double. Either way tombstones vanish.
        let new_slots = if self.len * 2 >= self.slots.len() {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_slots).map(|_| Slot::Empty).collect(),
        );
        self.mask = (new_slots - 1) as u64;
        self.tombstones = 0;
        for slot in old {
            if let Slot::Full(key, state) = slot {
                let mut i = (key.stable_hash() & self.mask) as usize;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & self.mask as usize;
                }
                self.slots[i] = Slot::Full(key, state);
            }
        }
    }

    /// Iterate live entries in slot order — deterministic for a given
    /// operation history, independent of process or machine.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &S)> {
        self.slots.iter().filter_map(|slot| match slot {
            Slot::Full(k, s) => Some((k, s)),
            _ => None,
        })
    }

    /// Remove and yield every live entry in slot order, leaving the
    /// table empty at the minimum size.
    pub fn drain(&mut self) -> impl Iterator<Item = (FlowKey, S)> {
        let old = std::mem::take(self);
        old.into_iter()
    }
}

impl<S> IntoIterator for FlowTable<S> {
    type Item = (FlowKey, S);
    type IntoIter = IntoIter<S>;

    fn into_iter(self) -> IntoIter<S> {
        IntoIter {
            slots: self.slots.into_iter(),
        }
    }
}

/// Owning slot-order iterator over a [`FlowTable`].
#[derive(Debug)]
pub struct IntoIter<S> {
    slots: std::vec::IntoIter<Slot<S>>,
}

impl<S> Iterator for IntoIter<S> {
    type Item = (FlowKey, S);

    fn next(&mut self) -> Option<(FlowKey, S)> {
        for slot in self.slots.by_ref() {
            if let Slot::Full(k, s) = slot {
                return Some((k, s));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprayer_net::FiveTuple;

    fn key(i: u32) -> FlowKey {
        FiveTuple::tcp(0x0a00_0000 + i, 1000, 0xc0a8_0001, 443).key()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: FlowTable<u32> = FlowTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(key(1), 10), None);
        assert_eq!(t.insert(key(2), 20), None);
        assert_eq!(t.insert(key(1), 11), Some(10), "replace returns old");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&key(1)), Some(&11));
        assert_eq!(t.get(&key(3)), None);
        assert!(t.contains_key(&key(2)));
        assert_eq!(t.remove(&key(1)), Some(11));
        assert_eq!(t.remove(&key(1)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t: FlowTable<u32> = FlowTable::new();
        t.insert(key(7), 1);
        *t.get_mut(&key(7)).unwrap() += 41;
        assert_eq!(t.get(&key(7)), Some(&42));
        assert_eq!(t.get_mut(&key(8)), None);
    }

    #[test]
    fn grows_past_initial_size_and_keeps_every_entry() {
        let mut t: FlowTable<u32> = FlowTable::new();
        let n = 10_000u32;
        for i in 0..n {
            assert_eq!(t.insert(key(i), i), None, "key {i}");
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.slot_count().is_power_of_two());
        for i in 0..n {
            assert_eq!(t.get(&key(i)), Some(&i), "key {i}");
        }
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        // Insert colliding-ish keys, delete interior ones, and verify
        // lookups still find everything on the far side of the holes.
        let mut t: FlowTable<u32> = FlowTable::new();
        for i in 0..64u32 {
            t.insert(key(i), i);
        }
        for i in (0..64u32).step_by(2) {
            assert_eq!(t.remove(&key(i)), Some(i));
        }
        for i in 0..64u32 {
            if i % 2 == 0 {
                assert_eq!(t.get(&key(i)), None);
            } else {
                assert_eq!(t.get(&key(i)), Some(&i));
            }
        }
        // Reinsert into the holes.
        for i in (0..64u32).step_by(2) {
            assert_eq!(t.insert(key(i), i + 100), None);
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.get(&key(0)), Some(&100));
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        // Repeated insert/remove of the same working set must not grow
        // the table without bound (tombstone rehash compacts).
        let mut t: FlowTable<u32> = FlowTable::new();
        for round in 0..200u32 {
            for i in 0..32u32 {
                t.insert(key(i), round);
            }
            for i in 0..32u32 {
                t.remove(&key(i));
            }
        }
        assert!(t.is_empty());
        assert!(
            t.slot_count() <= 256,
            "churn must not balloon the slot array: {}",
            t.slot_count()
        );
    }

    #[test]
    fn iteration_order_is_deterministic_and_slot_ordered() {
        let build = || {
            let mut t: FlowTable<u32> = FlowTable::new();
            for i in 0..100u32 {
                t.insert(key(i), i);
            }
            for i in (0..100u32).step_by(3) {
                t.remove(&key(i));
            }
            t
        };
        let a: Vec<_> = build().iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = build().iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b, "identical histories iterate identically");
        let drained: Vec<_> = build().into_iter().collect();
        assert_eq!(a, drained, "borrowing and owning iteration agree");
    }

    #[test]
    fn drain_empties_and_yields_everything() {
        let mut t: FlowTable<u32> = FlowTable::new();
        for i in 0..50u32 {
            t.insert(key(i), i);
        }
        let mut got: Vec<u32> = t.drain().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert!(t.is_empty());
        assert_eq!(t.slot_count(), MIN_SLOTS);
        // The drained table is fully reusable.
        t.insert(key(1), 1);
        assert_eq!(t.get(&key(1)), Some(&1));
    }

    #[test]
    fn capacity_hint_presizes() {
        let t: FlowTable<u32> = FlowTable::with_capacity_hint(1000);
        assert!(t.slot_count() >= 1024 + 512, "hint must leave probe slack");
    }
}
