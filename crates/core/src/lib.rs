//! # Sprayer — packet spraying for software middleboxes
//!
//! A Rust reproduction of *"A Case for Spraying Packets in Software
//! Middleboxes"* (Sadok, Campista, Costa — HotNets-XVII, 2018).
//!
//! Software middleboxes conventionally assign packets to CPU cores at
//! *flow* granularity (RSS). That wastes cores when few flows are
//! concurrently active — the common case, per the paper's trace study —
//! and hash collisions make it unfair. Sprayer instead **sprays packets
//! over all cores at packet granularity**, and tames the resulting
//! flow-state problem with one observation: most NFs only *write* flow
//! state when connections start or finish. So:
//!
//! * every flow has a deterministic **designated core** (symmetric hash
//!   of the five-tuple — both directions map to the same core);
//! * **connection packets** (SYN/FIN/RST) are redirected to the
//!   designated core via descriptor rings; only that core ever writes the
//!   flow's state (**write partition**);
//! * **regular packets** are processed wherever the NIC sprayed them,
//!   reading any core's flow table through [`api::FlowStateApi::get_flow`].
//!
//! ## Crate layout
//!
//! | module | role |
//! |---|---|
//! | [`api`] | the flow-state API of the paper's Table 2 + the [`api::NetworkFunction`] programming model (§3.4), batch-native via [`api::NetworkFunction::handle_batch`] |
//! | [`engine`] | the shared per-packet pipeline (classify once, redirect decision, batch NF invocation) both runtimes drive |
//! | [`coremap`] | designated-core mapping, mode-aware (RSS vs. spray) |
//! | [`flowtable`] | the open-addressing flow-table primitive (power-of-two slots, pinned hash, deterministic iteration) |
//! | [`tables`] | flow-table backends: single-threaded (for the deterministic simulator) and shared (for real threads) — both enforcing write partition by construction |
//! | [`elastic`] | elastic reconfiguration: epoch transitions, flow-state migration accounting ([`elastic::ReconfigReport`]) |
//! | [`config`] | middlebox model parameters (cores, clock, cycle costs) |
//! | [`scr`] | State-Compute Replication: the per-core state-update log and replay plane behind the third dispatch mode, [`config::DispatchMode::Scr`] |
//! | [`runtime_sim`] | the deterministic discrete-event middlebox used by every experiment |
//! | [`runtime_threads`] | a real `std::thread` runtime over crossbeam rings, functionally equivalent |
//! | [`stats`] | per-core and aggregate runtime statistics |
//!
//! Optional per-packet event tracing and latency histograms live in the
//! `sprayer-obs` crate and are switched on per run via
//! [`config::ObsConfig`] (off — and zero-cost — by default).
//!
//! ## Quick start
//!
//! ```
//! use sprayer::api::{NetworkFunction, NfDescriptor, Verdict, FlowStateApi};
//! use sprayer::config::{DispatchMode, MiddleboxConfig};
//! use sprayer::runtime_sim::MiddleboxSim;
//! use sprayer_net::{FiveTuple, PacketBuilder, TcpFlags, Packet};
//! use sprayer_sim::Time;
//!
//! /// Counts packets per flow: state is written only at SYN time.
//! struct Counter;
//! impl NetworkFunction for Counter {
//!     type Flow = u64;
//!     fn descriptor(&self) -> NfDescriptor {
//!         NfDescriptor::named("counter")
//!     }
//!     fn connection_packets(
//!         &self,
//!         pkt: &mut Packet,
//!         ctx: &mut dyn FlowStateApi<u64>,
//!     ) -> Verdict {
//!         if let Some(t) = pkt.tuple() {
//!             ctx.insert_local_flow(t.key(), 0);
//!         }
//!         Verdict::Forward
//!     }
//!     fn regular_packets(
//!         &self,
//!         pkt: &mut Packet,
//!         ctx: &mut dyn FlowStateApi<u64>,
//!     ) -> Verdict {
//!         // Regular packets may land on any core; flow state is readable
//!         // from all of them.
//!         match pkt.tuple().and_then(|t| ctx.get_flow(&t.key())) {
//!             Some(_) => Verdict::Forward,
//!             None => Verdict::Drop,
//!         }
//!     }
//! }
//!
//! let config = MiddleboxConfig::paper_testbed(DispatchMode::Sprayer);
//! let mut mb = MiddleboxSim::new(config, Counter);
//! let flow = FiveTuple::tcp(0x0a000001, 40000, 0x0a000002, 443);
//! let syn = PacketBuilder::new().tcp(flow, 0, 0, TcpFlags::SYN, b"");
//! mb.ingress(Time::ZERO, syn);
//! mb.run_until(Time::from_ms(1));
//! assert_eq!(mb.stats().forwarded, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod coremap;
pub mod elastic;
pub mod engine;
pub mod flowtable;
pub mod runtime_sim;
pub mod runtime_threads;
pub mod scr;
pub mod stats;
pub mod tables;

pub use api::{
    Access, FlowStateApi, InsertOutcome, NetworkFunction, NfDescriptor, Scope, StateDecl, Verdict,
    VerdictSink,
};
pub use config::{DispatchMode, MiddleboxConfig, ObsConfig};
pub use coremap::CoreMap;
pub use elastic::{ReconfigReport, RecoveryReport};
pub use engine::{Engine, PacketClass};
pub use flowtable::FlowTable;
pub use runtime_sim::MiddleboxSim;
pub use runtime_threads::{ThreadedMiddlebox, WorkerFailure};
pub use scr::{ScrPlane, SharedScrPlane, StateUpdate, UpdateOp};
pub use stats::MiddleboxStats;
pub use tables::{FailoverStats, MigrationStats};
